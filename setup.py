"""Setup shim for offline editable installs (no `wheel` package needed).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` in environments
without network access to build backends.
"""

from setuptools import setup

setup()
