"""Dilation anatomy: where does code growth come from, block by block?

Reproduces the Figure 5 analysis interactively for one benchmark: static
and dynamic cumulative dilation distributions across target processors,
rendered as ASCII curves, with the uniform text-dilation assumption's
validity summarized at the end.

Run:  python examples/dilation_study.py [benchmark]
"""

import sys

import numpy as np

from repro.experiments.pipeline import ExperimentPipeline
from repro.machine.presets import TARGET_PROCESSORS
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark

WIDTH = 56  # characters per ASCII curve row


def ascii_curve(thresholds, values, label):
    rows = [f"  {label}"]
    for threshold, value in zip(thresholds, values):
        bar = "#" * int(round(value * WIDTH))
        rows.append(f"  d<={threshold:4.1f} |{bar:<{WIDTH}}| {value:5.1%}")
    return "\n".join(rows)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "085.gcc"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; pick from {BENCHMARK_NAMES}")
    workload = load_benchmark(name, scale=0.5)
    pipeline = ExperimentPipeline(workload, max_visits=20_000)
    events = pipeline.reference_artifacts().events
    weights = {
        key: int(count)
        for key, count in zip(
            events.blocks, events.visit_frequencies().tolist()
        )
    }

    thresholds = np.arange(0.5, 5.01, 0.5)
    for processor in TARGET_PROCESSORS:
        info = pipeline.dilation_info(processor)
        print(f"\n=== {name} on {processor.name} "
              f"(text dilation d = {info.text_dilation:.2f}) ===")
        static = info.static_distribution(thresholds)
        dynamic = info.dynamic_distribution(weights, thresholds)
        print(ascii_curve(thresholds, static, "static (all blocks)"))
        print(ascii_curve(thresholds, dynamic, "dynamic (execution-weighted)"))

        # How uniform is dilation really?
        spread = float(np.std(info.block_dilations))
        within = float(
            np.mean(
                np.abs(info.block_dilations - info.text_dilation) < 0.5
            )
        )
        print(
            f"  block dilation spread (std): {spread:.2f}; "
            f"{within:.0%} of blocks within +-0.5 of the text dilation"
        )


if __name__ == "__main__":
    main()
