"""Automatic design-space exploration (the Figure 2 flow).

Plays the role of the paper's embedded-system designer: given one
application and a parameterized processor + memory design space, find the
cost/performance-optimal systems.  Every non-reference processor's cache
behaviour comes from the dilation model — the reference processor is the
only one whose traces are ever simulated.

Run:  python examples/design_space_exploration.py
"""

import time

from repro.experiments.pipeline import ExperimentPipeline
from repro.explore.spacewalker import Spacewalker
from repro.explore.spec import (
    CacheDesignSpace,
    ProcessorDesignSpace,
    SystemDesignSpace,
)
from repro.workloads.suite import load_benchmark


def main() -> None:
    workload = load_benchmark("pgpdecode", scale=0.4)
    pipeline = ExperimentPipeline(workload, max_visits=20_000)

    space = SystemDesignSpace(
        processors=ProcessorDesignSpace(
            int_units=(1, 2, 4),
            float_units=(1,),
            memory_units=(1, 2),
            branch_units=(1,),
        ),
        icache=CacheDesignSpace(
            sizes_kb=(1, 2, 4, 8, 16), assocs=(1, 2), line_sizes=(16, 32)
        ),
        dcache=CacheDesignSpace(
            sizes_kb=(1, 2, 4, 8), assocs=(1, 2), line_sizes=(16, 32)
        ),
        unified=CacheDesignSpace(
            sizes_kb=(16, 32, 64), assocs=(2, 4), line_sizes=(64,)
        ),
    )
    print(
        f"Raw design space: {space.total_designs()} systems "
        f"({len(space.processors)} processors x "
        f"{len(space.icache)}/{len(space.dcache)}/{len(space.unified)} "
        "I/D/U caches)"
    )

    started = time.perf_counter()
    pareto = Spacewalker(space, pipeline).walk()
    elapsed = time.perf_counter() - started

    evaluator = pipeline.memory_evaluator()
    print(
        f"Explored in {elapsed:.1f}s using only "
        f"{evaluator.simulation_passes} reference-trace simulation passes"
    )
    print(f"\nPareto frontier ({len(pareto)} designs):")
    print(f"{'cost':>9}  {'cycles':>13}  processor  caches (I / D / U)")
    for point in pareto.frontier():
        memory = point.design.memory
        print(
            f"{point.cost:>9.2f}  {point.time:>13.0f}  "
            f"{point.design.processor:>9}  "
            f"{memory.icache.describe()} / {memory.dcache.describe()} / "
            f"{memory.unified.describe()}"
        )


if __name__ == "__main__":
    main()
