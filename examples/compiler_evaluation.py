"""Evaluating a compiler/architecture trade-off with the dilation model.

Section 1 of the paper: "code specialization techniques, such as inlining
or loop unrolling may improve processor performance, but at the expense
of instruction cache performance.  The evaluation approach described in
this report can also be used in these situations to quantify the impact
on memory hierarchy performance in a simulation-efficient manner."

This example compares a speculation-free 8-wide machine against the same
machine with aggressive speculation: speculation shortens schedules
(processor win) but duplicates hoisted loads into predecessors, growing
code (dilation) and data traffic.  The memory-side cost is quantified
*without simulating the speculating machine's traces* — only its measured
dilation and the shared reference simulations are used.

Run:  python examples/compiler_evaluation.py
"""

from repro import CacheConfig
from repro.core.hierarchy_eval import MissPenalties, evaluate_system
from repro.experiments.pipeline import ExperimentPipeline
from repro.machine.processor import make_processor
from repro.workloads.suite import load_benchmark


def main() -> None:
    workload = load_benchmark("ghostscript", scale=0.35)
    # Feature flags must match the reference (Section 4.1 step 1), so use
    # a speculation-free reference for the speculation-free variant and a
    # speculating reference for the speculating variant.
    variants = {
        "no-speculation": (
            make_processor(1, 1, 1, 1, has_speculation=False),
            make_processor(3, 2, 2, 1, has_speculation=False),
        ),
        "speculation": (
            make_processor(1, 1, 1, 1, has_speculation=True),
            make_processor(3, 2, 2, 1, has_speculation=True),
        ),
    }

    icache = CacheConfig.from_size(4 * 1024, 1, 32)
    dcache = CacheConfig.from_size(4 * 1024, 1, 32)
    ucache = CacheConfig.from_size(32 * 1024, 2, 64)
    penalties = MissPenalties(l1_miss=8, l2_miss=40)

    print(f"Workload: {workload.program.name};  target machine: 3221")
    header = (
        f"{'variant':<16}{'dilation':>9}{'cycles':>12}"
        f"{'IC stalls':>12}{'DC stalls':>12}{'UC stalls':>12}{'total':>13}"
    )
    print(header)

    totals = {}
    for label, (reference, target) in variants.items():
        pipeline = ExperimentPipeline(
            workload, reference=reference, max_visits=20_000
        )
        dilation = pipeline.dilation(target)
        ic = pipeline.estimated_misses(dilation, "icache", [icache])[icache]
        dc = pipeline.estimated_misses(dilation, "dcache", [dcache])[dcache]
        uc = pipeline.estimated_misses(dilation, "unified", [ucache])[ucache]
        art = pipeline.artifacts(target)
        evaluation = evaluate_system(
            art.compiled, art.events, ic, dc, uc, penalties
        )
        totals[label] = evaluation.total_cycles
        print(
            f"{label:<16}{dilation:>9.2f}{evaluation.processor_cycles:>12}"
            f"{evaluation.icache_stalls:>12.0f}"
            f"{evaluation.dcache_stalls:>12.0f}"
            f"{evaluation.unified_stalls:>12.0f}"
            f"{evaluation.total_cycles:>13.0f}"
        )

    delta = totals["speculation"] / totals["no-speculation"] - 1.0
    print(
        f"\nSpeculation changes total execution time by {delta:+.1%} on "
        "this hierarchy — a processor-only evaluation would have missed "
        "the memory-side cost entirely."
    )


if __name__ == "__main__":
    main()
