"""Quickstart: the whole pipeline on one small workload.

Walks the paper's flow end to end:

1. generate a workload (program + data streams);
2. compile, assemble and link it for the narrow reference processor and
   a wide target processor;
3. measure the text dilation between the two binaries;
4. emulate once per processor and generate address traces;
5. simulate the paper's cache configurations on the reference trace;
6. use the dilation model to *estimate* the wide processor's cache
   misses — and compare against actually simulating its trace.

Run:  python examples/quickstart.py
"""

from repro import P1111, P6332, CacheConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.workloads.suite import load_benchmark


def main() -> None:
    # A scaled-down epic keeps this script snappy (~seconds).
    workload = load_benchmark("epic", scale=0.4)
    print(f"Workload: {workload.program}")

    pipeline = ExperimentPipeline(workload, max_visits=20_000)

    # --- compilation + linking happen lazily inside the pipeline -------
    ref = pipeline.reference_artifacts()
    wide = pipeline.artifacts(P6332)
    print(
        f"Text size: {ref.binary.text_size} B on {P1111.name}, "
        f"{wide.binary.text_size} B on {P6332.name}"
    )

    dilation = pipeline.dilation(P6332)
    print(f"Text dilation d = {dilation:.2f}")

    # --- the three miss measurements -----------------------------------
    # The paper's small configuration (Section 6): 1KB direct-mapped L1I,
    # 16KB 2-way unified.
    icache = CacheConfig.from_size(1024, 1, 32)
    ucache = CacheConfig.from_size(16 * 1024, 2, 64)

    print(f"\n{'cache':<28}{'actual':>10}{'dilated':>10}{'estimated':>11}")
    for role, config in (("icache", icache), ("unified", ucache)):
        actual = pipeline.actual_misses(P6332, role, [config])[config]
        dilated = pipeline.dilated_misses(dilation, role, [config])[config]
        estimated = pipeline.estimated_misses(dilation, role, [config])[
            config
        ]
        print(
            f"{role + ' ' + config.describe():<28}"
            f"{actual:>10}{dilated:>10}{estimated:>11.0f}"
        )

    print(
        "\n'actual' simulated the wide processor's own trace;\n"
        "'dilated' simulated the reference trace stretched by d;\n"
        "'estimated' used only reference simulations + the AHH model\n"
        "(the paper's production path: no wide-processor simulation)."
    )


if __name__ == "__main__":
    main()
