"""Accelerator trade-off study: completing the Figure-1 design space.

The paper's design space includes "an optional hardware accelerator in
the form of a non-programmable systolic array" next to the VLIW core.
This example asks the designer's question: for a float-heavy media
workload, is silicon better spent on a wider VLIW or on a systolic
array bolted to the narrow one?

Processor-side cycles use the same schedule-length × profile estimation
as the paper (Section 3.2); memory-side stalls come from the dilation
model, so the wide machine is charged for its code growth.

Run:  python examples/accelerator_tradeoff.py
"""

from repro import CacheConfig
from repro.core.hierarchy_eval import MissPenalties, evaluate_system
from repro.experiments.pipeline import ExperimentPipeline
from repro.isa.operations import OpClass
from repro.machine.accelerator import (
    SystolicArray,
    accelerated_cycles,
    accelerator_cost,
)
from repro.machine.cost import processor_cost
from repro.machine.presets import P1111, P3221
from repro.workloads.suite import load_benchmark


def main() -> None:
    workload = load_benchmark("mipmap", scale=0.4)
    pipeline = ExperimentPipeline(workload, max_visits=20_000)

    # A generously sized hierarchy keeps the processor on the critical
    # path, so the compute-side trade-off is visible; shrink the caches
    # to watch memory stalls swallow both upgrades.
    icache = CacheConfig.from_size(16 * 1024, 2, 32)
    dcache = CacheConfig.from_size(16 * 1024, 2, 32)
    ucache = CacheConfig.from_size(128 * 1024, 4, 64)
    penalties = MissPenalties(l1_miss=6, l2_miss=30)

    def memory_stalls(processor):
        d = pipeline.dilation(processor)
        ic = pipeline.estimated_misses(d, "icache", [icache])[icache]
        dc = pipeline.estimated_misses(d, "dcache", [dcache])[dcache]
        uc = pipeline.estimated_misses(d, "unified", [ucache])[ucache]
        return (
            ic * penalties.l1_miss
            + dc * penalties.l1_miss
            + uc * penalties.l2_miss
        )

    array = SystolicArray(
        "fp8x8",
        OpClass.FLOAT,
        rows=8,
        cols=8,
        initiation_interval=1,
        offload_fraction=0.7,
    )

    narrow_art = pipeline.artifacts(P1111)
    wide_art = pipeline.artifacts(P3221)

    designs = {
        "1111 (narrow)": (
            processor_cost(P1111),
            pipeline.processor_cycles(P1111),
            memory_stalls(P1111),
        ),
        "3221 (wide VLIW)": (
            processor_cost(P3221),
            pipeline.processor_cycles(P3221),
            memory_stalls(P3221),
        ),
        f"1111 + {array.name}": (
            processor_cost(P1111) + accelerator_cost(array),
            accelerated_cycles(narrow_art.compiled, narrow_art.events, array),
            memory_stalls(P1111),
        ),
        f"3221 + {array.name}": (
            processor_cost(P3221) + accelerator_cost(array),
            accelerated_cycles(wide_art.compiled, wide_art.events, array),
            memory_stalls(P3221),
        ),
    }

    print(f"Workload: {workload.program.name} (float-heavy)\n")
    print(
        f"{'design':<22}{'cost':>9}{'cpu cycles':>13}"
        f"{'mem stalls':>13}{'total':>13}"
    )
    for name, (cost, cpu, mem) in designs.items():
        print(f"{name:<22}{cost:>9.2f}{cpu:>13.0f}{mem:>13.0f}{cpu + mem:>13.0f}")

    designs = {
        name: (cost, cpu + mem) for name, (cost, cpu, mem) in designs.items()
    }
    base_cost, base_cycles = designs["1111 (narrow)"]
    print("\nSpeedup per added cost unit vs the narrow baseline:")
    for name, (cost, cycles) in designs.items():
        if name == "1111 (narrow)":
            continue
        speedup = base_cycles / cycles
        efficiency = (speedup - 1.0) / max(cost - base_cost, 1e-9)
        print(f"  {name:<22} speedup {speedup:5.2f}x  "
              f"efficiency {efficiency:+.4f}/cost-unit")
    print(
        "\nThe accelerated narrow core avoids the wide machine's code "
        "dilation (and its cache cost) while winning back the float "
        "cycles — the embedded-systems trade the paper's Figure 1 is "
        "drawn around."
    )


if __name__ == "__main__":
    main()
