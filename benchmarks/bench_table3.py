"""Table 3: text dilation for all benchmarks and processors.

Paper claims verified here:

* dilation grows monotonically with issue width for every benchmark;
* dilation grows much more slowly than issue width (paper: the 14-wide
  6332 dilates only 2.47-3.25x);
* 2111/3221/4221 land at or below ~2.5 while 6332 exceeds it — the
  boundary the paper uses to argue "models that accurately estimate
  performance up to a dilation of 2.5 are sufficient" for mid machines.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.runner import run_table3
from repro.workloads.suite import BENCHMARK_NAMES


@pytest.mark.benchmark(group="tables")
def test_table3(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: run_table3(benchmarks=BENCHMARK_NAMES, settings=settings),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    save_result(results_dir, "table3", text)
    print("\n" + text)

    for bench, row in result.data.items():
        assert row["1111"] == 1.0
        assert row["1111"] < row["2111"] < row["3221"] <= row["4221"] <= row["6332"]
        # Dilation grows far sublinearly in issue width (14/4 = 3.5x).
        assert row["6332"] < 3.5
        # Paper band (Table 3): 2111 in [1.2, 1.5]; 6332 in [2.3, 3.4].
        assert 1.1 < row["2111"] < 1.6
        assert 2.2 < row["6332"] < 3.4
