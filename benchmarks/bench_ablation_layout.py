"""Ablation: profile-guided code layout (Section 3.3's linker policy).

"Branch profile information is used ... to place blocks of instructions
or entire functions that frequently execute in sequence near each other.
The goal is to increase spatial locality and instruction cache
performance."

Measures reference-processor instruction-cache misses with the default
program-order layout versus the profile-guided layout, on the paper's
small and large instruction caches.
"""

import pytest

from benchmarks.conftest import save_result
from repro.cache.cheetah import simulate_many
from repro.cache.config import CacheConfig
from repro.experiments.runner import get_pipeline
from repro.iformat.assembler import assemble
from repro.iformat.layout import layout_program, profile_from_events
from repro.iformat.linker import link
from repro.trace.generator import TraceGenerator

CONFIGS = [
    CacheConfig.from_size(1024, 1, 32),
    CacheConfig.from_size(16 * 1024, 2, 32),
]
BENCHES = ("085.gcc", "ghostscript", "epic")


def run_comparison(settings):
    rows = []
    improvements = []
    for bench in BENCHES:
        pipeline = get_pipeline(bench, settings)
        ref = pipeline.reference_artifacts()
        assembled = assemble(ref.compiled)
        packet = ref.processor.issue_width * 4

        profile = profile_from_events(ref.events)
        guided_binary = link(
            pipeline.workload.program,
            assembled,
            packet_bytes=packet,
            processor_name=f"{ref.processor.name}+pgl",
            layout=layout_program(pipeline.workload.program, profile),
        )
        guided_trace = TraceGenerator(
            guided_binary, ref.events
        ).instruction_trace()
        baseline_trace = ref.instruction_trace

        base = simulate_many(
            CONFIGS, baseline_trace.starts, baseline_trace.sizes
        )
        guided = simulate_many(
            CONFIGS, guided_trace.starts, guided_trace.sizes
        )
        for config in CONFIGS:
            b, g = base[config].misses, guided[config].misses
            delta = (b - g) / b if b else 0.0
            improvements.append(delta)
            rows.append(
                f"{bench:>12} {config}: program-order={b:>8} "
                f"profile-guided={g:>8} improvement={delta:+.1%}"
            )
    mean_improvement = sum(improvements) / len(improvements)
    rows.append(f"mean improvement: {mean_improvement:+.1%}")
    return mean_improvement, improvements, "\n".join(rows)


@pytest.mark.benchmark(group="ablations")
def test_ablation_profile_guided_layout(benchmark, settings, results_dir):
    mean_improvement, improvements, text = benchmark.pedantic(
        lambda: run_comparison(settings), rounds=1, iterations=1
    )
    save_result(results_dir, "ablation_layout", text)
    print("\n" + text)
    # The guided layout helps on average (spatial locality of hot
    # chains); individual small direct-mapped points may wobble either
    # way (conflict-pattern sensitivity, as in Table 2's discussion).
    assert mean_improvement > -0.02
    assert max(improvements) > 0.0
