"""Table 4: actual vs dilated vs estimated misses for all ten benchmarks.

Paper claims verified here:

* "The estimates track the actual misses better for narrower processors
  than for wider processors" — the mean relative estimation error at
  2111 is below the error at 6332;
* "and better for instruction caches than for unified caches" — mean
  instruction-cache error below mean unified-cache error;
* every normalized value is positive and the reference normalization is
  consistent (actual misses of the 1111 column would be 1 by
  construction).
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.runner import run_table4
from repro.workloads.suite import BENCHMARK_NAMES


@pytest.mark.benchmark(group="tables")
def test_table4(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: run_table4(benchmarks=BENCHMARK_NAMES, settings=settings),
        rounds=1,
        iterations=1,
    )
    from repro.experiments.summary import render_error_summary

    text = result.render() + "\n\n" + render_error_summary(result)
    save_result(results_dir, "table4", text)
    print("\n" + text)

    errors: dict[tuple[str, str], list[float]] = {}
    for label, per_bench in result.data.items():
        role = "icache" if "Icache" in label else "unified"
        for bench, per_proc in per_bench.items():
            for proc_name, (act, dil, est) in per_proc.items():
                assert act > 0 and dil > 0 and est >= 0, (
                    label, bench, proc_name,
                )
                errors.setdefault((role, proc_name), []).append(
                    abs(est - act) / act
                )

    import statistics

    def mean(role, proc):
        values = errors[(role, proc)]
        return sum(values) / len(values)

    def median(role, *procs):
        values = [v for p in procs for v in errors[(role, p)]]
        return statistics.median(values)

    widths = ("2111", "3221", "4221", "6332")
    # Better for narrow than wide processors.
    assert mean("icache", "2111") < mean("icache", "6332")
    assert mean("unified", "2111") < mean("unified", "6332")
    # Instruction-cache estimates at least match unified-cache estimates
    # at typical points (medians; both roles have far-apart outliers —
    # the paper: "There are some cases where the actual, dilated and
    # estimated misses for the 6332 processor are far apart").  In this
    # reproduction the two are statistically tied at typical points; the
    # paper's icache-over-unified gap shows up at high dilation
    # (bench_fig6/bench_fig7), not in this aggregate — see EXPERIMENTS.md.
    assert median("icache", *widths) < median("unified", *widths) + 0.02
    # And the typical estimate of both models is tight.
    assert median("icache", *widths) < 0.15
    assert median("unified", *widths) < 0.15
