"""Cheetah engine speedup: vectorized single-pass vs the seed `_touch` path.

Times the vectorized :class:`repro.cache.cheetah.CheetahSimulator` against
the preserved seed implementation (:mod:`repro.cache._legacy`) on the
epic unified reference trace — the same workload ``bench_micro`` uses —
across two paper-realistic sweep grids, and verifies that every miss
count on the grid is bit-identical between the two engines, with
spot-checks against the stateful :class:`CacheSimulator` ground truth.

The primary grid (64 B lines, 3 set counts, 8-way histograms) is the
configuration the memory evaluator runs during design-space exploration;
the acceptance gate asserts a >= 5x speedup there.  A third section
times the *whole-design-space* kernel
(:class:`repro.cache.designspace.DesignSpaceSimulator`) on the full
multi-line-size grid against cold per-line-size passes and against the
seed path, and a fourth isolates the counting floor: one fused
cross-size stack-distance dispatch against per-problem kernel calls
over the identical prepared counting problems.  Results are written to
``benchmarks/results/BENCH_cheetah.json``.

Runs two ways:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_cheetah_perf.py``
* ``python benchmarks/bench_cheetah_perf.py [--smoke] [--json PATH]``

``--smoke`` does a single timing rep and skips the slow ground-truth
oracle — used by CI to produce the JSON artifact without gating on
runner timing noise.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: python benchmarks/bench_...
    _root = Path(__file__).resolve().parent.parent
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, RESULTS_DIR
from repro.cache._legacy import LegacyCheetahSimulator
from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.linestream import clear_line_stream_cache
from repro.cache.simulator import CacheSimulator
from repro.experiments.runner import get_pipeline

MIN_SPEEDUP = 5.0

#: Floor for the stack-distance kernel vs the scalar survivor loop on the
#: survivor-heavy grids below (same expansion/pre-pass work on both sides,
#: so this isolates the interpreter-loop replacement).
MIN_KERNEL_SPEEDUP = 3.0

#: Floors for the whole-design-space kernel on the full multi-line-size
#: grid: shared expansion/fingerprint/derivation vs independent
#: per-line-size vectorized passes (cold, as pre-PR sweeps paid them),
#: and vs the seed `_touch` path.  The per-size stack-distance counting
#: floor is common to both sides and dominates on epic (fine stream is
#: only ~391k lines, so near-linear radix sorts leave little to
#: amortize); measured headroom is ~1.1-1.3x depending on machine
#: state, ratcheted with margin.  The seed ratio has measured 8.1-12.2x
#: across idle runs (best-of-3 seed ~1.3s, one-sort 0.15-0.18s), so its
#: floor is the worst-case pairing of those extremes with margin, not
#: the best case.
MIN_DESIGN_SPACE_SPEEDUP = 1.05
MIN_DESIGN_SPACE_SEED_SPEEDUP = 7.0

#: Floor for the fused cross-size counting dispatch vs per-problem
#: kernel calls on the fused-counting grid below (short sampled trace,
#: wide set ladder — the under-``FUSE_MAX_REFS`` regime the ``auto``
#: cost model actually fuses).  Fusion replaces one dispatch per
#: (line size, set count) with a single scan/expansion pass plus one
#: segmented linking sort over the concatenation; measured 1.37-1.44x
#: across idle runs, so the floor is the worst observed run with
#: margin.
MIN_FUSED_COUNTING_SPEEDUP = 1.15

#: Floor for the chunked-trace streaming sweep vs the in-memory one-sort
#: kernel on the streaming grid below.  The metric is a ratio with the
#: in-memory time on top (``in_memory_seconds / chunked_seconds``), so
#: *higher is better* and a value of 0.5 means streaming costs 2x.  The
#: chunked path trades the shared whole-design-space sort for bounded
#: memory (per-line-size passes over 64 Ki-range chunks); measured
#: 0.45-0.62 across idle runs, ratcheted against the worst with margin.
MIN_STREAMING_OVERHEAD = 0.30

#: Floor for interval-sampling accuracy: ``1 - max relative miss error``
#: of the sampled sweep against the exact sweep over the sampling grid
#: (capacity-bound caches up to 64 KiB — the paper's embedded domain).
#: The acceptance criterion is measured error <= 5%.  Caches whose
#: capacity rivals the sampled window footprint are excluded: their
#: misses are dominated by cold-start state no per-window warm-up can
#: reconstruct, which is a documented limitation of interval sampling,
#: not a regression.  Measured max error ~3.2% with the plan below.
MIN_SAMPLING_ACCURACY = 0.95

#: The "full design space" grid: every line size the paper's exploration
#: touches, crossed with the primary set-count ladder.
DESIGN_SPACE_GRID = {
    "line_sizes": [16, 32, 64, 128],
    "set_counts": [64, 256, 1024],
    "max_assoc": 8,
}

#: (line_size, set_counts, max_assoc, ground-truth spot checks, primary?)
GRIDS = [
    {
        "line_size": 64,
        "set_counts": [64, 256, 1024],
        "max_assoc": 8,
        "oracle_points": [(64, 1), (256, 2), (1024, 8)],
        "primary": True,
    },
    {
        "line_size": 16,
        "set_counts": [256, 1024, 4096],
        "max_assoc": 8,
        "oracle_points": [(256, 1), (4096, 4)],
        "primary": False,
    },
]


#: Survivor-heavy synthetic grids for the kernel-vs-scalar comparison.
#: The epic trace is dominated by immediate repeats, which both engines
#: collapse before any per-reference work; these traces are built so most
#: references *survive* the pre-passes and exercise the per-reference
#: engines.  The dense power-of-two set ladder mirrors what real design
#: spaces produce (sets = size / (assoc * line) over a size x assoc grid).
KERNEL_GRIDS = [
    {
        "name": "uniform-16K-lines",
        "line_size": 64,
        "set_counts": [64, 128, 256, 512, 1024],
        "max_assoc": 8,
    },
    {
        "name": "sequential-8K-sweep",
        "line_size": 64,
        "set_counts": [64, 128, 256, 512, 1024],
        "max_assoc": 8,
    },
]


def kernel_trace(name: str) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic survivor-heavy range traces for the kernel grids."""
    if name == "uniform-16K-lines":
        rng = np.random.default_rng(20240806)
        starts = rng.integers(0, 16_384 * 64, 60_000)
        sizes = rng.integers(1, 257, 60_000)
        return starts, sizes
    if name == "sequential-8K-sweep":
        starts = np.tile(np.arange(0, 8_192 * 64, 64), 12)
        sizes = np.full(len(starts), 64)
        return starts, sizes
    raise ValueError(f"unknown kernel trace {name!r}")


def load_unified_trace():
    pipeline = get_pipeline("epic", BENCH_SETTINGS)
    return pipeline.reference_artifacts().unified_trace


def _best_time(run, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _assoc_grid(max_assoc: int) -> list[int]:
    return [assoc for assoc in (1, 2, 4, 8, 16) if assoc <= max_assoc]


def run_grid(trace, grid: dict, *, reps: int, oracle: bool) -> dict:
    starts, sizes = trace.starts, trace.sizes
    line_size = grid["line_size"]
    set_counts = grid["set_counts"]
    max_assoc = grid["max_assoc"]

    def run_legacy():
        sim = LegacyCheetahSimulator(line_size, set_counts, max_assoc=max_assoc)
        sim.simulate(starts, sizes)
        return sim

    def run_vectorized():
        # Cold: drop the memoized expansion so every rep pays the full
        # trace -> line-stream cost, like the legacy path does.
        clear_line_stream_cache()
        sim = CheetahSimulator(line_size, set_counts, max_assoc=max_assoc)
        sim.simulate(starts, sizes)
        return sim

    legacy_seconds = _best_time(run_legacy, reps)
    vectorized_seconds = _best_time(run_vectorized, reps)

    legacy = run_legacy()
    vectorized = run_vectorized()
    assert vectorized.accesses == legacy.accesses
    points = 0
    for nsets in set_counts:
        for assoc in _assoc_grid(max_assoc):
            got = vectorized.misses(nsets, assoc)
            want = legacy.misses(nsets, assoc)
            assert got == want, (
                f"miss mismatch at sets={nsets} assoc={assoc} "
                f"line={line_size}: vectorized={got} legacy={want}"
            )
            points += 1

    oracle_points = []
    if oracle:
        for nsets, assoc in grid["oracle_points"]:
            direct = CacheSimulator(CacheConfig(nsets, assoc, line_size))
            for start, size in zip(starts.tolist(), sizes.tolist()):
                direct.access_range(start, size)
            got = vectorized.misses(nsets, assoc)
            assert got == direct.misses, (
                f"ground-truth mismatch at sets={nsets} assoc={assoc} "
                f"line={line_size}: vectorized={got} direct={direct.misses}"
            )
            assert vectorized.accesses == direct.accesses
            oracle_points.append([nsets, assoc])

    accesses = vectorized.accesses
    return {
        "line_size": line_size,
        "set_counts": set_counts,
        "max_assoc": max_assoc,
        "primary": grid["primary"],
        "line_accesses": accesses,
        "legacy_seconds": round(legacy_seconds, 6),
        "vectorized_seconds": round(vectorized_seconds, 6),
        "speedup": round(legacy_seconds / vectorized_seconds, 2),
        "accesses_per_second_before": round(accesses / legacy_seconds),
        "accesses_per_second_after": round(accesses / vectorized_seconds),
        "grid_points_checked": points,
        "bit_identical": True,
        "ground_truth_points": oracle_points,
    }


def run_kernel_grid(grid: dict, *, reps: int) -> dict:
    """Time engine="scalar" vs engine="kernel" on one survivor-heavy grid.

    Both runs share the memoized line-stream expansion (it is engine
    independent), so the comparison isolates the per-reference engine:
    the PR 1 scalar survivor loop against the vectorized stack-distance
    kernel.
    """
    starts, sizes = kernel_trace(grid["name"])
    line_size = grid["line_size"]
    set_counts = grid["set_counts"]
    max_assoc = grid["max_assoc"]

    def run(engine: str) -> CheetahSimulator:
        sim = CheetahSimulator(
            line_size, set_counts, max_assoc=max_assoc, engine=engine
        )
        sim.simulate(starts, sizes)
        return sim

    # Warm the shared expansion memo so neither engine pays it.
    run("kernel")
    scalar_seconds = _best_time(lambda: run("scalar"), reps)
    kernel_seconds = _best_time(lambda: run("kernel"), reps)

    scalar = run("scalar")
    kernel = run("kernel")
    assert kernel.accesses == scalar.accesses
    points = 0
    for nsets in set_counts:
        for assoc in _assoc_grid(max_assoc):
            got = kernel.misses(nsets, assoc)
            want = scalar.misses(nsets, assoc)
            assert got == want, (
                f"miss mismatch at sets={nsets} assoc={assoc} "
                f"line={line_size}: kernel={got} scalar={want}"
            )
            points += 1

    accesses = kernel.accesses
    return {
        "name": grid["name"],
        "line_size": line_size,
        "set_counts": set_counts,
        "max_assoc": max_assoc,
        "trace_ranges": len(starts),
        "line_accesses": accesses,
        "scalar_seconds": round(scalar_seconds, 6),
        "kernel_seconds": round(kernel_seconds, 6),
        "kernel_speedup": round(scalar_seconds / kernel_seconds, 2),
        "grid_points_checked": points,
        "bit_identical": True,
    }


def run_design_space(trace, *, reps: int, seed_baseline: bool) -> dict:
    """Time the whole-design-space kernel against per-line-size sweeps.

    Three contenders on the same multi-line-size grid:

    * ``DesignSpaceSimulator`` — one expansion + one trace fingerprint,
      every coarser line size derived, per-tower plan picked by its
      cost model (the path ``sweep_design_space`` now takes);
    * per-line-size vectorized passes, line-stream cache cleared before
      *each* line size — cold per group, which is honestly what pre-PR
      sweeps paid (the memo then keyed on ``(trace, line_size)``, so no
      cross-line-size sharing existed);
    * the seed ``_touch`` path (one ``LegacyCheetahSimulator`` per line
      size), timed once — it is the slow baseline being ratcheted.

    Every (line size, sets, assoc) grid point is asserted bit-identical
    across all contenders.
    """
    from repro.cache.designspace import DesignSpaceSimulator

    starts, sizes = trace.starts, trace.sizes
    line_sizes = DESIGN_SPACE_GRID["line_sizes"]
    set_counts = DESIGN_SPACE_GRID["set_counts"]
    max_assoc = DESIGN_SPACE_GRID["max_assoc"]
    spec = {ls: (set_counts, max_assoc) for ls in line_sizes}

    def run_designspace() -> DesignSpaceSimulator:
        clear_line_stream_cache()
        space = DesignSpaceSimulator(spec)
        space.simulate(starts, sizes)
        return space

    def run_per_line() -> dict[int, CheetahSimulator]:
        sims = {}
        for line_size in line_sizes:
            clear_line_stream_cache()
            sim = CheetahSimulator(line_size, set_counts, max_assoc)
            sim.simulate(starts, sizes)
            sims[line_size] = sim
        return sims

    # Fairness: every compared path is best-of-at-least-3, matching the
    # seed baseline below — a single sample makes a ratcheted ratio a
    # coin flip on a noisy runner.
    best_reps = max(reps, 3)
    designspace_seconds = _best_time(run_designspace, best_reps)
    per_line_seconds = _best_time(run_per_line, best_reps)

    space = run_designspace()
    per_line = run_per_line()
    clear_line_stream_cache()

    points = 0
    for line_size in line_sizes:
        for nsets in set_counts:
            for assoc in _assoc_grid(max_assoc):
                got = space.misses(line_size, nsets, assoc)
                want = per_line[line_size].misses(nsets, assoc)
                assert got == want, (
                    f"miss mismatch at line={line_size} sets={nsets} "
                    f"assoc={assoc}: designspace={got} per-line={want}"
                )
                points += 1

    report = {
        "line_sizes": line_sizes,
        "set_counts": set_counts,
        "max_assoc": max_assoc,
        "grid_points_checked": points,
        "bit_identical": True,
        "design_space_seconds": round(designspace_seconds, 6),
        "per_line_seconds": round(per_line_seconds, 6),
        "design_space_speedup": round(
            per_line_seconds / designspace_seconds, 2
        ),
    }

    if seed_baseline:
        def run_seed():
            sims = {}
            for line_size in line_sizes:
                sim = LegacyCheetahSimulator(
                    line_size, set_counts, max_assoc=max_assoc
                )
                sim.simulate(starts, sizes)
                sims[line_size] = sim
            return sims

        # Best-of-3 rather than best-of-`reps`: a seed pass costs ~2s,
        # and a single sample makes the ratcheted ratio a coin flip.
        seed_seconds = float("inf")
        seed = None
        for _ in range(3):
            seed_start = time.perf_counter()
            candidate = run_seed()
            elapsed = time.perf_counter() - seed_start
            if elapsed < seed_seconds:
                seed_seconds = elapsed
                seed = candidate
        for line_size in line_sizes:
            for nsets in set_counts:
                for assoc in _assoc_grid(max_assoc):
                    got = space.misses(line_size, nsets, assoc)
                    want = seed[line_size].misses(nsets, assoc)
                    assert got == want, (
                        f"seed mismatch at line={line_size} sets={nsets} "
                        f"assoc={assoc}: designspace={got} seed={want}"
                    )
        report["seed_seconds"] = round(seed_seconds, 6)
        report["design_space_seed_speedup"] = round(
            seed_seconds / designspace_seconds, 2
        )

    return report


#: The fused-counting grid: the regime the fused dispatch targets — a
#: short sampled trace (an epic prefix, the shape interactive estimates
#: run on) crossed with a *wide* set-count ladder, so the tower yields
#: many small counting problems whose concatenation stays under
#: ``FUSE_MAX_REFS`` (the ``auto`` cost-model ceiling).  Above that
#: ceiling per-size dispatch wins on cache residency and ``auto``
#: doesn't fuse, so benchmarking there would time a forced
#: configuration production never picks.
FUSED_COUNTING_GRID = {
    "trace_ranges": 16_000,
    "line_sizes": [16, 32, 64, 128],
    "set_counts": [16, 64, 256, 1024],
    "max_assoc": 8,
}


def run_fused_counting(trace, *, reps: int) -> dict:
    """Fused cross-size counting dispatch vs per-size dispatch.

    Both sides count the *same* prepared problems (one
    ``prepare_consume`` staging per line size, shared), so the timing
    isolates exactly what fusion changes: N :func:`stack_distances`
    calls against one :func:`stack_distances_fused` call over their
    concatenation.  Every distance array is asserted bit-identical.
    """
    from repro.cache.linestream import line_stream
    from repro.cache.stackdist import (
        CountProblem,
        stack_distances,
        stack_distances_fused,
    )

    n_ranges = FUSED_COUNTING_GRID["trace_ranges"]
    line_sizes = FUSED_COUNTING_GRID["line_sizes"]
    set_counts = FUSED_COUNTING_GRID["set_counts"]
    max_assoc = FUSED_COUNTING_GRID["max_assoc"]
    starts = trace.starts[:n_ranges]
    sizes = trace.sizes[:n_ranges]

    clear_line_stream_cache()
    problems = []
    for line_size in line_sizes:
        stream = line_stream(starts, sizes, line_size)
        sim = CheetahSimulator(
            line_size, set_counts, max_assoc, engine="kernel"
        )
        for prep in sim.prepare_consume(stream):
            problems.append(
                CountProblem(
                    prep.part,
                    prep.seg_lens,
                    prep.fam.max_assoc,
                    vmax=prep.vmax,
                    links=prep.links,
                )
            )
    clear_line_stream_cache()
    refs = sum(len(p.part) for p in problems)

    def per_size():
        return [
            stack_distances(
                p.part, p.seg_lens, p.max_assoc, vmax=p.vmax, links=p.links
            )
            for p in problems
        ]

    def fused():
        return stack_distances_fused(problems)[0]

    expect = per_size()
    got = fused()
    for (want, _), (dist, _) in zip(expect, got):
        assert np.array_equal(dist, want), "fused distances diverged"

    best_reps = max(reps, 3)
    per_size_seconds = _best_time(per_size, best_reps)
    fused_seconds = _best_time(fused, best_reps)

    return {
        "trace_ranges": int(len(starts)),
        "line_sizes": line_sizes,
        "set_counts": set_counts,
        "max_assoc": max_assoc,
        "problems": len(problems),
        "counted_refs": refs,
        "bit_identical": True,
        "per_size_seconds": round(per_size_seconds, 6),
        "fused_seconds": round(fused_seconds, 6),
        "fused_counting_speedup": round(
            per_size_seconds / fused_seconds, 2
        ),
    }


#: Streaming comparison grid: the design-space line sizes crossed with
#: the primary set ladder at the assoc extremes — enough passes that the
#: per-chunk state-carry overhead shows, small enough to time best-of-N.
STREAMING_GRID = {
    "line_sizes": [16, 32, 64, 128],
    "set_counts": [64, 256, 1024],
    "assocs": [1, 8],
    "chunk_ranges": 65_536,
}

#: Interval-sampling accuracy setup: 16 uniform windows of 8000 ranges
#: with 4000 warm-up ranges each, gated over capacity-bound embedded
#: cache sizes (<= 64 KiB).  Larger caches retain state across the gaps
#: between windows, which no per-window warm-up reconstructs — their
#: sampled estimates are excluded from the gate (and reported so the
#: limitation stays visible).
SAMPLING_PLAN = {
    "intervals": 16,
    "interval_ranges": 8_000,
    "warmup_ranges": 4_000,
    "mode": "uniform",
}
SAMPLING_GRID = {
    "line_sizes": [16, 64],
    "set_counts": [64, 256, 1024],
    "assocs": [1, 2, 4, 8],
    "max_capacity_bytes": 64 * 1024,
}


def run_streaming(trace, *, reps: int) -> dict:
    """Chunked streaming sweep vs the in-memory one-sort kernel.

    Writes the epic trace to a chunked store once, then times
    ``sweep_design_space`` fed the in-memory arrays (whole-design-space
    kernel) against the same sweep fed the :class:`ChunkedTrace`
    (chunk-at-a-time per line size, bounded working set).  Every grid
    point is asserted bit-identical — streaming changes memory behaviour,
    never results.
    """
    import tempfile

    from repro.cache.sweep import sweep_design_space
    from repro.trace.chunkstore import write_chunked

    starts, sizes = trace.starts, trace.sizes
    configs = [
        CacheConfig(nsets, assoc, line_size)
        for line_size in STREAMING_GRID["line_sizes"]
        for nsets in STREAMING_GRID["set_counts"]
        for assoc in STREAMING_GRID["assocs"]
    ]
    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as td:
        ctrace = write_chunked(
            Path(td) / "epic.rct",
            starts,
            sizes,
            chunk_ranges=STREAMING_GRID["chunk_ranges"],
        )

        def run_in_memory():
            clear_line_stream_cache()
            return sweep_design_space(configs, (starts, sizes))

        def run_chunked():
            clear_line_stream_cache()
            return sweep_design_space(configs, ctrace)

        best_reps = max(reps, 3)
        in_memory_seconds = _best_time(run_in_memory, best_reps)
        chunked_seconds = _best_time(run_chunked, best_reps)

        exact = run_in_memory()
        streamed = run_chunked()
        clear_line_stream_cache()
        for config in configs:
            assert streamed[config].misses == exact[config].misses, (
                f"streaming mismatch at {config}: "
                f"{streamed[config].misses} != {exact[config].misses}"
            )
        chunks = ctrace.n_chunks
        ctrace.close()

    return {
        "line_sizes": STREAMING_GRID["line_sizes"],
        "set_counts": STREAMING_GRID["set_counts"],
        "assocs": STREAMING_GRID["assocs"],
        "chunk_ranges": STREAMING_GRID["chunk_ranges"],
        "chunks": chunks,
        "grid_points_checked": len(configs),
        "bit_identical": True,
        "in_memory_seconds": round(in_memory_seconds, 6),
        "chunked_seconds": round(chunked_seconds, 6),
        "streaming_overhead": round(
            in_memory_seconds / chunked_seconds, 3
        ),
    }


def run_sampling(trace) -> dict:
    """Interval-sampled sweep accuracy against the exact sweep.

    Deterministic (fixed window placement, no randomness): the sampled
    estimate and hence the accuracy are reproducible bit-for-bit, so the
    metric ratchets cleanly.  Configs above the capacity gate are still
    measured and reported (``excluded``) but do not enter the metric.
    """
    from repro.cache.sweep import sampled_sweep_design_space, sweep_design_space
    from repro.trace.sampling import SamplePlan

    starts, sizes = trace.starts, trace.sizes
    plan = SamplePlan.from_spec(SAMPLING_PLAN)
    cap = SAMPLING_GRID["max_capacity_bytes"]
    configs = [
        CacheConfig(nsets, assoc, line_size)
        for line_size in SAMPLING_GRID["line_sizes"]
        for nsets in SAMPLING_GRID["set_counts"]
        for assoc in SAMPLING_GRID["assocs"]
    ]
    exact = sweep_design_space(configs, (starts, sizes))
    sampled = sampled_sweep_design_space(configs, (starts, sizes), plan)

    gated, excluded = [], []
    for config in configs:
        true = exact[config].misses
        est = sampled[config]
        error = abs(est.misses - true) / true if true else 0.0
        doc = {
            "sets": config.sets,
            "assoc": config.assoc,
            "line_size": config.line_size,
            "capacity_bytes": config.sets * config.assoc * config.line_size,
            "exact_misses": true,
            "sampled_misses": est.misses,
            "relative_error": round(error, 5),
            "reported_error": (
                round(est.error, 5) if est.error is not None else None
            ),
        }
        if doc["capacity_bytes"] <= cap:
            gated.append(doc)
        else:
            excluded.append(doc)

    max_error = max(doc["relative_error"] for doc in gated)
    fraction = sampled[configs[0]].sampled_fraction
    return {
        "plan": SAMPLING_PLAN,
        "max_capacity_bytes": cap,
        "sampled_fraction": round(fraction, 4),
        "gated_configs": len(gated),
        "excluded_configs": len(excluded),
        "max_relative_error": round(max_error, 5),
        "mean_relative_error": round(
            sum(d["relative_error"] for d in gated) / len(gated), 5
        ),
        "sampling_accuracy": round(1.0 - max_error, 4),
        "configs": gated,
        "excluded": excluded,
    }


def run_benchmark(*, reps: int = 5, oracle: bool = True) -> dict:
    trace = load_unified_trace()
    grids = [run_grid(trace, grid, reps=reps, oracle=oracle) for grid in GRIDS]
    primary = next(g for g in grids if g["primary"])
    kernel_grids = [run_kernel_grid(g, reps=reps) for g in KERNEL_GRIDS]
    design_space = run_design_space(trace, reps=reps, seed_baseline=oracle)
    fused_counting = run_fused_counting(trace, reps=reps)
    streaming = run_streaming(trace, reps=reps)
    sampling = run_sampling(trace)
    return {
        "workload": "epic",
        "trace_ranges": len(trace.starts),
        "timing_reps": reps,
        "min_required_speedup": MIN_SPEEDUP,
        "primary_speedup": primary["speedup"],
        "grids": grids,
        "min_required_kernel_speedup": MIN_KERNEL_SPEEDUP,
        "kernel_speedup": min(g["kernel_speedup"] for g in kernel_grids),
        "kernel_grids": kernel_grids,
        "min_required_design_space_speedup": MIN_DESIGN_SPACE_SPEEDUP,
        "min_required_design_space_seed_speedup": (
            MIN_DESIGN_SPACE_SEED_SPEEDUP
        ),
        "design_space_speedup": design_space["design_space_speedup"],
        "design_space_seed_speedup": design_space.get(
            "design_space_seed_speedup"
        ),
        "design_space": design_space,
        "min_required_fused_counting_speedup": MIN_FUSED_COUNTING_SPEEDUP,
        "fused_counting_speedup": fused_counting["fused_counting_speedup"],
        "fused_counting": fused_counting,
        "min_required_streaming_overhead": MIN_STREAMING_OVERHEAD,
        "streaming_overhead": streaming["streaming_overhead"],
        "streaming": streaming,
        "min_required_sampling_accuracy": MIN_SAMPLING_ACCURACY,
        "sampling_accuracy": sampling["sampling_accuracy"],
        "sampling": sampling,
    }


def write_report(report: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")


def render(report: dict) -> str:
    lines = [
        f"cheetah engine benchmark — workload={report['workload']} "
        f"({report['trace_ranges']} trace ranges, "
        f"best of {report['timing_reps']})"
    ]
    for grid in report["grids"]:
        tag = "primary" if grid["primary"] else "secondary"
        lines.append(
            f"  [{tag}] line={grid['line_size']}B sets={grid['set_counts']} "
            f"assoc<= {grid['max_assoc']}: "
            f"{grid['legacy_seconds']:.3f}s -> "
            f"{grid['vectorized_seconds']:.3f}s "
            f"({grid['speedup']:.1f}x, "
            f"{grid['accesses_per_second_before']:,} -> "
            f"{grid['accesses_per_second_after']:,} accesses/s, "
            f"{grid['grid_points_checked']} grid points bit-identical)"
        )
    for grid in report.get("kernel_grids", []):
        lines.append(
            f"  [kernel:{grid['name']}] line={grid['line_size']}B "
            f"sets={grid['set_counts']}: scalar {grid['scalar_seconds']:.3f}s "
            f"-> kernel {grid['kernel_seconds']:.3f}s "
            f"({grid['kernel_speedup']:.1f}x, "
            f"{grid['grid_points_checked']} grid points bit-identical)"
        )
    ds = report.get("design_space")
    if ds:
        seed = (
            f", seed {ds['seed_seconds']:.3f}s "
            f"({ds['design_space_seed_speedup']:.1f}x)"
            if "seed_seconds" in ds
            else ""
        )
        lines.append(
            f"  [design-space] lines={ds['line_sizes']} "
            f"sets={ds['set_counts']}: per-line "
            f"{ds['per_line_seconds']:.3f}s -> one-sort "
            f"{ds['design_space_seconds']:.3f}s "
            f"({ds['design_space_speedup']:.1f}x{seed}, "
            f"{ds['grid_points_checked']} grid points bit-identical)"
        )
    fc = report.get("fused_counting")
    if fc:
        lines.append(
            f"  [fused-counting] lines={fc['line_sizes']} "
            f"sets={fc['set_counts']} ({fc['problems']} problems, "
            f"{fc['counted_refs']} refs): per-size "
            f"{fc['per_size_seconds']*1000:.2f}ms -> fused "
            f"{fc['fused_seconds']*1000:.2f}ms "
            f"({fc['fused_counting_speedup']:.2f}x, bit-identical)"
        )
    st = report.get("streaming")
    if st:
        lines.append(
            f"  [streaming] {st['chunks']} chunks of "
            f"{st['chunk_ranges']} ranges: in-memory "
            f"{st['in_memory_seconds']:.3f}s vs chunked "
            f"{st['chunked_seconds']:.3f}s "
            f"(ratio {st['streaming_overhead']:.2f}, "
            f"{st['grid_points_checked']} grid points bit-identical)"
        )
    sp = report.get("sampling")
    if sp:
        lines.append(
            f"  [sampling] {sp['plan']['intervals']} windows x "
            f"{sp['plan']['interval_ranges']} ranges "
            f"({sp['sampled_fraction']:.0%} of the trace): max error "
            f"{sp['max_relative_error']:.2%} over {sp['gated_configs']} "
            f"configs <= {sp['max_capacity_bytes'] // 1024} KiB "
            f"(accuracy {sp['sampling_accuracy']:.4f}, "
            f"{sp['excluded_configs']} over-capacity configs excluded)"
        )
    return "\n".join(lines)


def test_cheetah_engine_speedup(results_dir):
    report = run_benchmark(reps=5, oracle=True)
    write_report(report, results_dir / "BENCH_cheetah.json")
    print("\n" + render(report))
    assert report["primary_speedup"] >= MIN_SPEEDUP, (
        f"primary-grid speedup {report['primary_speedup']}x "
        f"below the {MIN_SPEEDUP}x acceptance floor"
    )
    assert report["kernel_speedup"] >= MIN_KERNEL_SPEEDUP, (
        f"stack-distance kernel speedup {report['kernel_speedup']}x "
        f"below the {MIN_KERNEL_SPEEDUP}x acceptance floor"
    )
    assert report["design_space_speedup"] >= MIN_DESIGN_SPACE_SPEEDUP, (
        f"design-space speedup {report['design_space_speedup']}x "
        f"below the {MIN_DESIGN_SPACE_SPEEDUP}x acceptance floor"
    )
    assert (
        report["design_space_seed_speedup"]
        >= MIN_DESIGN_SPACE_SEED_SPEEDUP
    ), (
        f"design-space-vs-seed speedup "
        f"{report['design_space_seed_speedup']}x below the "
        f"{MIN_DESIGN_SPACE_SEED_SPEEDUP}x acceptance floor"
    )
    assert (
        report["fused_counting_speedup"] >= MIN_FUSED_COUNTING_SPEEDUP
    ), (
        f"fused-counting speedup {report['fused_counting_speedup']}x "
        f"below the {MIN_FUSED_COUNTING_SPEEDUP}x acceptance floor"
    )
    assert report["streaming_overhead"] >= MIN_STREAMING_OVERHEAD, (
        f"streaming overhead ratio {report['streaming_overhead']} "
        f"below the {MIN_STREAMING_OVERHEAD} acceptance floor"
    )
    assert report["sampling_accuracy"] >= MIN_SAMPLING_ACCURACY, (
        f"sampling accuracy {report['sampling_accuracy']} "
        f"below the {MIN_SAMPLING_ACCURACY} acceptance floor "
        f"(max error {report['sampling']['max_relative_error']:.2%})"
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        type=Path,
        default=RESULTS_DIR / "BENCH_cheetah.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--reps", type=int, default=5, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single rep, skip ground-truth oracle, no speedup gate",
    )
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error("--reps must be >= 1")

    reps = 1 if args.smoke else args.reps
    report = run_benchmark(reps=reps, oracle=not args.smoke)
    write_report(report, args.json)
    print(render(report))
    print(f"report written to {args.json}")
    if not args.smoke and report["primary_speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: primary-grid speedup {report['primary_speedup']}x "
            f"below the {MIN_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and report["kernel_speedup"] < MIN_KERNEL_SPEEDUP:
        print(
            f"FAIL: stack-distance kernel speedup "
            f"{report['kernel_speedup']}x "
            f"below the {MIN_KERNEL_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    if (
        not args.smoke
        and report["design_space_speedup"] < MIN_DESIGN_SPACE_SPEEDUP
    ):
        print(
            f"FAIL: design-space speedup "
            f"{report['design_space_speedup']}x "
            f"below the {MIN_DESIGN_SPACE_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and (
        report["design_space_seed_speedup"] or 0
    ) < MIN_DESIGN_SPACE_SEED_SPEEDUP:
        print(
            f"FAIL: design-space-vs-seed speedup "
            f"{report['design_space_seed_speedup']}x "
            f"below the {MIN_DESIGN_SPACE_SEED_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    if (
        not args.smoke
        and report["fused_counting_speedup"] < MIN_FUSED_COUNTING_SPEEDUP
    ):
        print(
            f"FAIL: fused-counting speedup "
            f"{report['fused_counting_speedup']}x "
            f"below the {MIN_FUSED_COUNTING_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    if (
        not args.smoke
        and report["streaming_overhead"] < MIN_STREAMING_OVERHEAD
    ):
        print(
            f"FAIL: streaming overhead ratio "
            f"{report['streaming_overhead']} "
            f"below the {MIN_STREAMING_OVERHEAD} floor",
            file=sys.stderr,
        )
        return 1
    if (
        not args.smoke
        and report["sampling_accuracy"] < MIN_SAMPLING_ACCURACY
    ):
        print(
            f"FAIL: sampling accuracy {report['sampling_accuracy']} "
            f"below the {MIN_SAMPLING_ACCURACY} floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
