"""Micro-benchmarks: substrate throughput regression tracking.

Not paper experiments — these time the hot kernels (direct simulation,
single-pass multi-configuration simulation, emulation, AHH parameter
extraction) on a fixed mid-size input so performance regressions in the
substrate are visible in CI output.
"""

import pytest

from benchmarks.conftest import BENCH_SETTINGS
from repro.ahh.modeler import derive_trace_parameters
from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.experiments.runner import get_pipeline
from repro.trace.emulator import Emulator
from repro.workloads.suite import load_benchmark


@pytest.fixture(scope="module")
def unified_trace():
    pipeline = get_pipeline("epic", BENCH_SETTINGS)
    return pipeline.reference_artifacts().unified_trace


@pytest.mark.benchmark(group="micro")
def test_micro_direct_simulator(benchmark, unified_trace):
    config = CacheConfig.from_size(16 * 1024, 2, 64)

    def run():
        return simulate_trace(
            config, unified_trace.starts, unified_trace.sizes
        ).misses

    misses = benchmark(run)
    assert misses > 0


@pytest.mark.benchmark(group="micro")
def test_micro_cheetah_multi_config(benchmark, unified_trace):
    """One pass answering a 3-set-count x 4-way grid (12 configs)."""

    def run():
        sim = CheetahSimulator(64, [64, 256, 1024], max_assoc=4)
        sim.simulate(unified_trace.starts, unified_trace.sizes)
        return sim.misses(256, 2)

    misses = benchmark(run)
    assert misses > 0


@pytest.mark.benchmark(group="micro")
def test_micro_emulation(benchmark):
    workload = load_benchmark("epic", scale=0.5)
    emulator = Emulator(workload.program, workload.streams, seed=3)

    def run():
        return emulator.run(10_000).n_visits

    visits = benchmark(run)
    assert visits > 0


@pytest.mark.benchmark(group="micro")
def test_micro_ahh_parameter_extraction(benchmark, unified_trace):
    pipeline = get_pipeline("epic", BENCH_SETTINGS)
    itrace = pipeline.reference_artifacts().instruction_trace

    def run():
        return derive_trace_parameters(
            itrace, unified_trace, i_granule=2_000, u_granule=20_000
        ).icache.u1

    u1 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert u1 > 0
