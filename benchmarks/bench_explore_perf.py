"""Exploration-layer speedup: batched vs scalar spacewalker walk.

Times the vectorized exploration path (batched dilation-model grids,
array collision kernel, skyline Pareto accumulation) against the
preserved scalar path on the ``bench_spacewalker`` design space over the
epic workload, with all shared simulation passes pre-primed so the
timing isolates the exploration layer itself.  The acceptance gate
asserts a >= 5x end-to-end speedup on ``Spacewalker.walk`` *and* that
both paths produce identical Pareto frontiers (same designs, costs and
times within 1e-9).  A skyline-vs-sequential Pareto micro-benchmark is
reported alongside (no gate).  Results are written to
``benchmarks/results/BENCH_explore.json``.

Runs two ways:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_explore_perf.py``
* ``python benchmarks/bench_explore_perf.py [--smoke] [--json PATH]``

``--smoke`` does a single timing rep and drops the speedup gate (the
frontier-identity check always runs) — used by CI to produce the JSON
artifact without gating on runner timing noise.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: python benchmarks/bench_...
    _root = Path(__file__).resolve().parent.parent
    for entry in (_root, _root / "src"):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, RESULTS_DIR
from repro.ahh.batch import clear_collisions_batch_cache
from repro.experiments.runner import get_pipeline
from repro.explore.pareto import ParetoSet
from repro.explore.spacewalker import Spacewalker
from repro.explore.spec import (
    CacheDesignSpace,
    ProcessorDesignSpace,
    SystemDesignSpace,
)

MIN_SPEEDUP = 5.0
TIME_RTOL = 1e-9
TIME_ATOL = 1e-6

#: Points in the skyline micro-benchmark.
SKYLINE_POINTS = 20_000


def build_space() -> SystemDesignSpace:
    """A larger space than ``bench_spacewalker``'s: 45 processors (many
    distinct dilations, so the dilation model dominates the walk) and
    84 + 84 + 72 cache configurations."""
    return SystemDesignSpace(
        processors=ProcessorDesignSpace(
            int_units=(1, 2, 3, 4, 6),
            float_units=(1, 2, 3),
            memory_units=(1, 2, 3),
            branch_units=(1,),
        ),
        icache=CacheDesignSpace(
            sizes_kb=(0.5, 1, 2, 4, 8, 16, 32),
            assocs=(1, 2, 4),
            line_sizes=(8, 16, 32, 64),
        ),
        dcache=CacheDesignSpace(
            sizes_kb=(0.5, 1, 2, 4, 8, 16, 32),
            assocs=(1, 2, 4),
            line_sizes=(8, 16, 32, 64),
        ),
        unified=CacheDesignSpace(
            sizes_kb=(8, 16, 32, 64, 128, 256),
            assocs=(1, 2, 4, 8),
            line_sizes=(32, 64, 128),
        ),
    )


def _best_time(run, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _frontier(pareto) -> list[tuple]:
    return [(p.design, p.cost, p.time) for p in pareto.frontier()]


def check_frontier_identity(scalar, batched) -> int:
    """Assert both walks retained the same frontier; returns its size."""
    fs, fb = _frontier(scalar), _frontier(batched)
    assert len(fs) == len(fb), (
        f"frontier sizes differ: scalar {len(fs)} vs batched {len(fb)}"
    )
    for (d_s, c_s, t_s), (d_b, c_b, t_b) in zip(fs, fb):
        assert d_s == d_b, f"frontier designs differ: {d_s} vs {d_b}"
        for name, a, b in (("cost", c_s, c_b), ("time", t_s, t_b)):
            assert abs(a - b) <= max(TIME_RTOL * max(abs(a), abs(b)),
                                     TIME_ATOL), (
                f"{name} differs for {d_s}: scalar {a} vs batched {b}"
            )
    return len(fs)


def bench_spacewalk(pipeline, space, *, reps: int) -> dict:
    scalar_walker = Spacewalker(space, pipeline, batched=False)
    batched_walker = Spacewalker(space, pipeline, batched=True)

    # Prime all shared simulation passes once: both paths register the
    # same configurations, so afterwards the walks are pure exploration.
    batched_walker.walk()

    def run_scalar():
        return scalar_walker.walk()

    def run_batched():
        # Cold model cache each rep: memoized collision grids would
        # otherwise make later reps unrepresentative.
        clear_collisions_batch_cache()
        return batched_walker.walk()

    scalar_seconds = _best_time(run_scalar, reps)
    batched_seconds = _best_time(run_batched, reps)
    frontier_size = check_frontier_identity(run_scalar(), run_batched())

    return {
        "designs": space.total_designs(),
        "processors": len(space.processors),
        "frontier_size": frontier_size,
        "scalar_seconds": round(scalar_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "speedup": round(scalar_seconds / batched_seconds, 2),
        "frontier_identical": True,
    }


def bench_skyline(*, reps: int) -> dict:
    rng = np.random.default_rng(7)
    costs = rng.uniform(0.0, 100.0, SKYLINE_POINTS)
    times = rng.uniform(0.0, 100.0, SKYLINE_POINTS)
    designs = list(range(SKYLINE_POINTS))

    def run_sequential():
        pareto = ParetoSet()
        for design, cost, time_ in zip(designs, costs, times):
            pareto.insert_point(design, float(cost), float(time_))
        return pareto

    def run_skyline():
        return ParetoSet.from_arrays(designs, costs, times)

    sequential_seconds = _best_time(run_sequential, reps)
    skyline_seconds = _best_time(run_skyline, reps)
    sequential = run_sequential()
    skyline = run_skyline()
    assert (
        {(p.design, p.cost, p.time) for p in sequential.points}
        == {(p.design, p.cost, p.time) for p in skyline.points}
    ), "skyline and sequential Pareto sets differ"

    return {
        "points": SKYLINE_POINTS,
        "frontier_size": len(skyline),
        "sequential_seconds": round(sequential_seconds, 6),
        "skyline_seconds": round(skyline_seconds, 6),
        "speedup": round(sequential_seconds / skyline_seconds, 2),
        "identical": True,
    }


def run_benchmark(*, reps: int = 5) -> dict:
    pipeline = get_pipeline("epic", BENCH_SETTINGS)
    space = build_space()
    spacewalk = bench_spacewalk(pipeline, space, reps=reps)
    skyline = bench_skyline(reps=reps)
    return {
        "workload": "epic",
        "timing_reps": reps,
        "min_required_speedup": MIN_SPEEDUP,
        "primary_speedup": spacewalk["speedup"],
        "spacewalker_walk": spacewalk,
        "skyline_pareto": skyline,
    }


def write_report(report: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")


def render(report: dict) -> str:
    walk = report["spacewalker_walk"]
    sky = report["skyline_pareto"]
    return "\n".join(
        [
            f"exploration-layer benchmark — workload={report['workload']} "
            f"(best of {report['timing_reps']})",
            f"  [primary] spacewalker walk over {walk['designs']} designs "
            f"({walk['processors']} processors): "
            f"{walk['scalar_seconds']:.3f}s -> "
            f"{walk['batched_seconds']:.3f}s "
            f"({walk['speedup']:.1f}x, frontier of {walk['frontier_size']} "
            f"identical)",
            f"  [secondary] skyline Pareto over {sky['points']:,} points: "
            f"{sky['sequential_seconds']:.3f}s -> "
            f"{sky['skyline_seconds']:.3f}s ({sky['speedup']:.1f}x, "
            f"{sky['frontier_size']} retained, identical)",
        ]
    )


def test_exploration_layer_speedup(results_dir):
    report = run_benchmark(reps=5)
    write_report(report, results_dir / "BENCH_explore.json")
    print("\n" + render(report))
    assert report["primary_speedup"] >= MIN_SPEEDUP, (
        f"spacewalker-walk speedup {report['primary_speedup']}x "
        f"below the {MIN_SPEEDUP}x acceptance floor"
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        type=Path,
        default=RESULTS_DIR / "BENCH_explore.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--reps", type=int, default=5, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single rep, no speedup gate (frontier check still runs)",
    )
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error("--reps must be >= 1")

    reps = 1 if args.smoke else args.reps
    report = run_benchmark(reps=reps)
    write_report(report, args.json)
    print(render(report))
    print(f"report written to {args.json}")
    if not args.smoke and report["primary_speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: spacewalker-walk speedup {report['primary_speedup']}x "
            f"below the {MIN_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
