"""Figure 6: estimated vs dilated misses across a dilation sweep (gcc).

Paper claims verified here:

* for the instruction caches, the AHH-interpolated estimate tracks the
  dilated-trace simulation closely across the whole 1..4 dilation range
  (interpolation between feasible line sizes is accurate);
* at integer power-of-two dilations the instruction estimate is *exact*
  (Lemma 1);
* for the unified caches the estimate tracks at low dilation and
  degrades as dilation grows (extrapolation is weaker than
  interpolation) — both series still increase monotonically.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.runner import run_figure6


@pytest.mark.benchmark(group="figures")
def test_figure6(benchmark, settings, results_dir):
    dilations = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
    result = benchmark.pedantic(
        lambda: run_figure6(
            "085.gcc", settings=settings, dilations=dilations
        ),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    save_result(results_dir, "figure6", text)
    print("\n" + text)

    for label, pair in result.series.items():
        dil, est = pair["dilated"], pair["estimated"]
        # Both series broadly grow with dilation.  Strict monotonicity is
        # not guaranteed for the dilated simulation: block placements
        # shift with d, and set-conflict phase can wobble a point (the
        # paper notes the same sensitivity for small caches).
        assert dil[-1] > dil[0], label
        assert est[-1] > est[0], label
        running_max = 0.0
        for value in dil:
            assert value >= 0.75 * running_max, (label, dil)
            running_max = max(running_max, value)
        assert est == sorted(est), label  # the model itself is monotone
        # Dilation 1 agrees exactly (both are the reference simulation).
        assert est[0] == pytest.approx(dil[0])

    for label in result.series:
        if "Icache" not in label:
            continue
        dil = result.series[label]["dilated"]
        est = result.series[label]["estimated"]
        # Lemma 1 exactness at d = 2 and d = 4.
        assert est[dilations.index(2.0)] == pytest.approx(
            dil[dilations.index(2.0)]
        )
        assert est[dilations.index(4.0)] == pytest.approx(
            dil[dilations.index(4.0)]
        )
        # Interpolated points track within ~40%.
        for d_index in (1, 3, 5):  # 1.5, 2.5, 3.5
            ratio = est[d_index] / max(dil[d_index], 1)
            assert 0.6 < ratio < 1.4, (label, dilations[d_index], ratio)
