"""Ablation: Lemma-2 (linear in Coll) vs naive linear-in-L interpolation.

The paper argues "a linear interpolation is not suitable because the
misses are a very nonlinear function of line size" (Section 4.3.1).  We
quantify it: for fractional dilations, compare the AHH-collision
interpolation against straight-line interpolation in line size, scoring
both against the dilated-trace simulation ground truth.
"""

import pytest

from benchmarks.conftest import save_result
from repro.cache.config import CacheConfig
from repro.core.interpolate import interpolate_linear_in
from repro.experiments.runner import get_pipeline

CONFIGS = [
    CacheConfig.from_size(1024, 1, 32),
    CacheConfig.from_size(16 * 1024, 2, 32),
]
DILATIONS = (1.3, 1.7, 2.4, 2.8, 3.4)


def run_ablation(settings):
    pipeline = get_pipeline("085.gcc", settings)
    evaluator = pipeline.memory_evaluator()
    estimator = evaluator.estimator
    rows = []
    model_errors, naive_errors = [], []
    for config in CONFIGS:
        for dilation in DILATIONS:
            truth = pipeline.dilated_misses(dilation, "icache", [config])[
                config
            ]
            model = pipeline.estimated_misses(dilation, "icache", [config])[
                config
            ]
            # Naive: interpolate misses linearly in line size.
            effective = config.line_size / dilation
            needed = estimator.required_icache_configs(config, dilation)
            ref = {
                c: evaluator.simulated_misses("icache", c) for c in needed
            }
            if len(needed) == 1:
                naive = float(ref[needed[0]])
            else:
                lower, upper = needed
                naive = interpolate_linear_in(
                    float(ref[lower]),
                    float(lower.line_size),
                    float(ref[upper]),
                    float(upper.line_size),
                    effective,
                )
            model_errors.append(abs(model - truth) / max(truth, 1))
            naive_errors.append(abs(naive - truth) / max(truth, 1))
            rows.append(
                f"{config} d={dilation:<4} truth={truth:>9} "
                f"ahh={model:>11.0f} naive={naive:>11.0f}"
            )
    mean_model = sum(model_errors) / len(model_errors)
    mean_naive = sum(naive_errors) / len(naive_errors)
    rows.append(
        f"mean relative error: ahh-interp={mean_model:.3f} "
        f"naive-linear={mean_naive:.3f}"
    )
    return mean_model, mean_naive, "\n".join(rows)


@pytest.mark.benchmark(group="ablations")
def test_ablation_interpolation(benchmark, settings, results_dir):
    mean_model, mean_naive, text = benchmark.pedantic(
        lambda: run_ablation(settings), rounds=1, iterations=1
    )
    save_result(results_dir, "ablation_interp", text)
    print("\n" + text)
    # The collision-based interpolation must not lose to naive linear.
    assert mean_model <= mean_naive + 0.02
    assert mean_model < 0.30
