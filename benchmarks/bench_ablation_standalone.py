"""Ablation: standalone AHH prediction vs the paper's anchored estimator.

Section 2: "We do not use the AHH model to completely eliminate
simulation runs because the accuracy of the AHH model by itself is not
adequate.  Instead, we use the AHH model to interpolate/extrapolate the
results from actual simulation runs."

This bench puts numbers on that design decision: for the instruction
caches, compare

* the **standalone** extended-AHH absolute prediction (start-up +
  non-stationary + intrinsic; zero simulation), and
* the paper's **anchored** estimator (reference simulations + Lemma 1 /
  Eq 4.12),

against dilated-trace simulation ground truth.
"""

import pytest

from benchmarks.conftest import save_result
from repro.ahh.extended import ExtendedItraceModeler, standalone_miss_estimate
from repro.cache.config import CacheConfig
from repro.experiments.runner import get_pipeline

CONFIGS = [
    CacheConfig.from_size(1024, 1, 32),
    CacheConfig.from_size(16 * 1024, 2, 32),
]
DILATIONS = (1.0, 2.0, 3.0)


def run_comparison(settings):
    pipeline = get_pipeline("085.gcc", settings)
    itrace = pipeline.reference_artifacts().instruction_trace
    modeler = ExtendedItraceModeler(granule_size=settings.i_granule)
    modeler.process_trace(itrace)
    extended = modeler.finalize()

    rows = []
    standalone_errors, anchored_errors = [], []
    for config in CONFIGS:
        for dilation in DILATIONS:
            truth = pipeline.dilated_misses(
                dilation, "icache", [config]
            )[config]
            anchored = pipeline.estimated_misses(
                dilation, "icache", [config]
            )[config]
            standalone = standalone_miss_estimate(
                extended, config, dilation
            ).total
            standalone_errors.append(
                abs(standalone - truth) / max(truth, 1)
            )
            anchored_errors.append(abs(anchored - truth) / max(truth, 1))
            rows.append(
                f"{config} d={dilation:<4g} truth={truth:>9} "
                f"anchored={anchored:>11.0f} standalone={standalone:>12.0f}"
            )
    mean_standalone = sum(standalone_errors) / len(standalone_errors)
    mean_anchored = sum(anchored_errors) / len(anchored_errors)
    rows.append(
        f"mean relative error: anchored={mean_anchored:.3f} "
        f"standalone={mean_standalone:.3f}"
    )
    return mean_anchored, mean_standalone, "\n".join(rows)


@pytest.mark.benchmark(group="ablations")
def test_ablation_standalone_ahh(benchmark, settings, results_dir):
    mean_anchored, mean_standalone, text = benchmark.pedantic(
        lambda: run_comparison(settings), rounds=1, iterations=1
    )
    save_result(results_dir, "ablation_standalone", text)
    print("\n" + text)
    # The paper's design decision, quantified: anchoring on simulation
    # beats the standalone analytic prediction decisively.
    assert mean_anchored < mean_standalone
    assert mean_anchored < 0.3
