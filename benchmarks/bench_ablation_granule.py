"""Ablation: AHH granule-size sensitivity (Section 5.2).

"The granules must be large enough that the incremental change in working
set is small with further increases in granule size ... we need a larger
granule size for Level-2 unified cache than for Level-1 instruction
cache."  We sweep the instruction granule and report u(1), p1, lav and
the downstream dilation-model estimate for one cache/dilation point.
"""

import pytest

from benchmarks.conftest import save_result
from repro.ahh.modeler import ItraceModeler
from repro.cache.config import CacheConfig
from repro.core.estimator import DilationEstimator
from repro.ahh.params import TraceParameters
from repro.experiments.runner import get_pipeline

GRANULES = (500, 1_000, 2_000, 4_000, 8_000)
CONFIG = CacheConfig.from_size(16 * 1024, 2, 32)
DILATION = 2.4


def run_sweep(settings):
    pipeline = get_pipeline("085.gcc", settings)
    itrace = pipeline.reference_artifacts().instruction_trace
    evaluator = pipeline.memory_evaluator()
    base_params = pipeline.trace_parameters()
    truth = pipeline.dilated_misses(DILATION, "icache", [CONFIG])[CONFIG]

    rows = [
        f"{'granule':>8} {'u(1)':>10} {'p1':>8} {'lav':>8} "
        f"{'estimate':>12} {'rel.err':>8}"
    ]
    estimates = []
    for granule in GRANULES:
        modeler = ItraceModeler(granule_size=granule)
        modeler.process_trace(itrace)
        icache_params = modeler.finalize()
        params = TraceParameters(
            icache=icache_params,
            unified_instr=base_params.unified_instr,
            unified_data=base_params.unified_data,
        )
        estimator = DilationEstimator(params)
        needed = estimator.required_icache_configs(CONFIG, DILATION)
        reference = {
            c: evaluator.simulated_misses("icache", c) for c in needed
        }
        estimate = estimator.estimate_icache_misses(
            CONFIG, DILATION, reference
        )
        estimates.append(estimate)
        rows.append(
            f"{granule:>8} {icache_params.u1:>10.1f} "
            f"{icache_params.p1:>8.3f} {icache_params.lav:>8.2f} "
            f"{estimate:>12.0f} {abs(estimate - truth) / truth:>8.3f}"
        )
    rows.append(f"dilated-trace ground truth: {truth}")
    return estimates, truth, "\n".join(rows)


@pytest.mark.benchmark(group="ablations")
def test_ablation_granule_size(benchmark, settings, results_dir):
    estimates, truth, text = benchmark.pedantic(
        lambda: run_sweep(settings), rounds=1, iterations=1
    )
    save_result(results_dir, "ablation_granule", text)
    print("\n" + text)
    # Estimates stay in a sane band across a 16x granule range: the
    # interpolation is anchored by simulations at both ends, so granule
    # choice must not destabilize it.
    for estimate in estimates:
        assert 0.4 * truth < estimate < 2.5 * truth
    spread = (max(estimates) - min(estimates)) / truth
    assert spread < 1.0
