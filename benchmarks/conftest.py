"""Shared configuration for the benchmark/experiment harness.

Every bench regenerates one paper table or figure (see DESIGN.md's
experiment index), saves the rendered text to ``benchmarks/results/`` and
asserts the shape-level claims the paper makes about it.  Timings are
reported by pytest-benchmark.

Pipelines are shared across bench modules through the runner's module
cache, so the expensive compile/emulate/simulate work is paid once per
benchmark program regardless of how many tables use it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import RunnerSettings

#: Paper-scale settings shared by every bench: full workload footprints,
#: a 60k-visit execution sample, paper-proportional granule sizes.
BENCH_SETTINGS = RunnerSettings(
    scale=1.0, max_visits=60_000, i_granule=2_000, u_granule=20_000
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def settings() -> RunnerSettings:
    return BENCH_SETTINGS


def save_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table/figure for EXPERIMENTS.md."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
