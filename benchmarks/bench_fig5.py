"""Figure 5: static and dynamic cumulative dilation distributions.

Paper claims verified here:

* the curves rise from 0 to 1 and are steeper (closer to a step at the
  text dilation) for the narrower 2111 than for the wide 6332;
* the dynamic distribution tracks the static one (hot blocks dilate like
  cold ones);
* the text dilation falls inside the rise of the distribution (the
  paper's justification for using it as the uniform coefficient).
"""

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.experiments.runner import get_pipeline, run_figure5
from repro.machine.presets import TARGET_PROCESSORS


@pytest.mark.benchmark(group="figures")
def test_figure5(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: run_figure5(
            benchmarks=("085.gcc", "ghostscript"), settings=settings
        ),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    save_result(results_dir, "figure5", text)
    print("\n" + text)

    for bench, series in result.curves.items():
        pipeline = get_pipeline(bench, settings)
        for (kind, proc_name), values in series.items():
            assert values[0] == 0.0
            assert values[-1] == pytest.approx(1.0)
            assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        # Text dilation lies inside each distribution's rise.
        for processor in TARGET_PROCESSORS:
            if processor.name not in ("2111", "3221", "6332"):
                continue
            d_text = pipeline.dilation(processor)
            static = series[("static", processor.name)]
            at_text = np.interp(d_text, result.thresholds, static)
            assert 0.02 < at_text < 0.995, (bench, processor.name, at_text)

        # Dynamic tracks static: mean absolute gap is small.
        for processor_name in ("2111", "6332"):
            static = series[("static", processor_name)]
            dynamic = series[("dynamic", processor_name)]
            gap = float(np.mean(np.abs(static - dynamic)))
            assert gap < 0.25, (bench, processor_name, gap)
