"""Figure 2 flow: spacewalker exploration producing a Pareto frontier.

Runs the full automatic-design loop on one benchmark over a processor x
memory design space, using the dilation model for every non-reference
processor (no target-processor cache simulation), and reports the
cost/performance frontier.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.runner import get_pipeline
from repro.explore.spec import (
    CacheDesignSpace,
    ProcessorDesignSpace,
    SystemDesignSpace,
)
from repro.explore.spacewalker import Spacewalker


def build_space() -> SystemDesignSpace:
    return SystemDesignSpace(
        processors=ProcessorDesignSpace(
            int_units=(1, 2, 4), float_units=(1, 2), memory_units=(1, 2),
            branch_units=(1,),
        ),
        icache=CacheDesignSpace(
            sizes_kb=(1, 2, 4, 8, 16), assocs=(1, 2), line_sizes=(16, 32)
        ),
        dcache=CacheDesignSpace(
            sizes_kb=(1, 2, 4, 8, 16), assocs=(1, 2), line_sizes=(16, 32)
        ),
        unified=CacheDesignSpace(
            sizes_kb=(16, 32, 64, 128), assocs=(2, 4), line_sizes=(64,)
        ),
    )


@pytest.mark.benchmark(group="exploration")
def test_spacewalker(benchmark, settings, results_dir):
    space = build_space()
    pipeline = get_pipeline("epic", settings)

    def walk():
        return Spacewalker(space, pipeline).walk()

    pareto = benchmark.pedantic(walk, rounds=1, iterations=1)

    lines = [
        f"Design space: {space.total_designs()} raw system designs "
        f"({len(space.processors)} processors)",
        f"Pareto frontier: {len(pareto)} designs "
        f"({pareto.inserted} inserted, {pareto.rejected} rejected)",
        "",
        f"{'cost':>10}  {'cycles':>14}  design",
    ]
    for point in pareto.frontier():
        memory = point.design.memory
        lines.append(
            f"{point.cost:>10.2f}  {point.time:>14.0f}  "
            f"proc={point.design.processor} ic={memory.icache} "
            f"dc={memory.dcache} uc={memory.unified}"
        )
    text = "\n".join(lines)
    save_result(results_dir, "spacewalker", text)
    print("\n" + text)

    assert pareto.is_consistent()
    assert len(pareto) >= 3
    # The frontier spans a real cost/performance trade-off.
    frontier = pareto.frontier()
    assert frontier[0].cost < frontier[-1].cost
    assert frontier[0].time > frontier[-1].time
