"""Figure 7: actual vs dilated vs estimated misses for gcc.

Paper claims verified here:

* actual misses grow with issue width for every cache — the figure's
  headline point that assuming width-independent memory behaviour
  (normalized misses = 1) is badly wrong;
* the dilated-trace simulation tracks the actual misses (the uniform
  text-dilation assumption holds for gcc);
* the instruction-cache estimates track the actual misses much more
  tightly than the unified-cache estimates (interpolation vs
  extrapolation).
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.runner import run_figure7


@pytest.mark.benchmark(group="figures")
def test_figure7(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: run_figure7("085.gcc", settings=settings),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    save_result(results_dir, "figure7", text)
    print("\n" + text)

    order = ("2111", "3221", "4221", "6332")
    icache_errors = []
    ucache_errors = []
    for label, per_bench in result.data.items():
        per_proc = per_bench["085.gcc"]
        actuals = [per_proc[name][0] for name in order]
        # Actual misses grow with width; ignoring width is badly wrong.
        assert actuals == sorted(actuals), (label, actuals)
        assert actuals[-1] > 1.1
        for name in order:
            act, dil, est = per_proc[name]
            rel = abs(est - act) / act
            (icache_errors if "Icache" in label else ucache_errors).append(
                rel
            )
            # Dilated simulation tracks actual within 2x everywhere.
            assert 0.5 < dil / act < 2.0, (label, name, act, dil)

    mean_ic = sum(icache_errors) / len(icache_errors)
    mean_uc = sum(ucache_errors) / len(ucache_errors)
    # Interpolation (icache) beats extrapolation (ucache) on average.
    assert mean_ic < mean_uc
    assert mean_ic < 0.25
