"""Table 2: relative data-cache miss rates across processors.

Paper claims verified here:

* the reference column is exactly 1.0;
* for the large (16KB 2-way) cache, most benchmarks stay within a
  modest band of 1.0 (the paper: six of ten within 5%, worst 1.16);
* ratios generally grow (weakly) with issue width because wider machines
  speculate more loads and spill more.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.runner import run_table2
from repro.workloads.suite import BENCHMARK_NAMES


@pytest.mark.benchmark(group="tables")
def test_table2(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: run_table2(benchmarks=BENCHMARK_NAMES, settings=settings),
        rounds=1,
        iterations=1,
    )
    text = result.render()
    save_result(results_dir, "table2", text)
    print("\n" + text)

    for label, per_bench in result.data.items():
        for bench, ratios in per_bench.items():
            assert ratios["1111"] == pytest.approx(1.0)
            for name, ratio in ratios.items():
                assert 0.5 < ratio < 2.5, (label, bench, name, ratio)

    large = result.data["16 KB"]
    within_5pct = sum(
        1
        for ratios in large.values()
        if max(abs(r - 1.0) for r in ratios.values()) < 0.05
    )
    # Paper: "Six of the ten benchmarks show less than a 5% change".
    assert within_5pct >= 5
