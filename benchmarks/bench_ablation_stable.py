"""Ablation: direct vs tail-series collision computation (Section 5.3).

Times both methods across the regime where each is preferred and checks
that `auto` never returns a clamped-to-zero artifact where the stable
series finds genuinely positive collisions.
"""

import pytest

from benchmarks.conftest import save_result
from repro.ahh.stable import (
    collisions_auto,
    collisions_direct,
    collisions_stable,
)

#: (u, sets, assoc) probe grid: dense caches, balanced, and the
#: cancellation-dominated sparse regime.
GRID = [
    (u, sets, assoc)
    for u in (8.0, 64.0, 512.0, 4096.0)
    for sets in (32, 256, 4096, 65536)
    for assoc in (1, 2, 4, 8)
]


def evaluate_grid():
    rows = []
    artifacts = 0
    for u, sets, assoc in GRID:
        direct = collisions_direct(u, sets, assoc)
        stable = collisions_stable(u, sets, assoc)
        auto = collisions_auto(u, sets, assoc)
        if direct == 0.0 and stable > 0.0:
            artifacts += 1
            # auto must have picked the stable value.
            assert auto == pytest.approx(stable)
        rows.append(
            f"u={u:>7.0f} S={sets:>6} A={assoc} "
            f"direct={direct:.6e} stable={stable:.6e} auto={auto:.6e}"
        )
    rows.append(
        f"cancellation artifacts rescued by the stable series: {artifacts}"
    )
    return artifacts, "\n".join(rows)


@pytest.mark.benchmark(group="ablations")
def test_ablation_stable_collisions(benchmark, results_dir):
    artifacts, text = benchmark.pedantic(
        evaluate_grid, rounds=3, iterations=1
    )
    save_result(results_dir, "ablation_stable", text)
    print("\n" + text)
    # The sparse corner of the grid genuinely needs the stable series.
    assert artifacts >= 1
