"""Section 1 arithmetic: the 466-day exhaustive-evaluation example.

Reproduces the paper's cost accounting: 40 VLIW processors x 20 caches
per type, ghostscript trace costs of 2/5/7 hours, and the combined effect
of (a) single-pass multi-configuration simulation and (b) hierarchical
evaluation with one reference processor.  Also measures this library's
*actual* simulation-pass savings on a real design-space sweep.
"""

import pytest

from benchmarks.conftest import save_result
from repro.cache.sweep import simulation_passes_required
from repro.explore.evaluators import (
    EvaluationCosts,
    exhaustive_evaluation_hours,
    hierarchical_evaluation_hours,
)
from repro.explore.spec import CacheDesignSpace
from repro.experiments.runner import get_pipeline


def cost_report(settings):
    lines = []
    exhaustive = exhaustive_evaluation_hours(40, 20)
    lines.append(
        f"Exhaustive: 40 procs x 20 caches x (2+5+7)h = {exhaustive:.0f} h "
        f"= {exhaustive / 24:.0f} days"
    )
    hierarchical = hierarchical_evaluation_hours(
        {"icache": 2, "dcache": 2, "unified": 2}
    )
    lines.append(
        f"Hierarchical + single-pass (2 line sizes/type): "
        f"{hierarchical:.0f} h = {hierarchical / 24:.1f} days"
    )
    lines.append(
        f"Speedup: {exhaustive / hierarchical:.0f}x"
    )

    # Real pass accounting: a 20-cache space with two line sizes needs
    # two passes.
    space = CacheDesignSpace(
        sizes_kb=(1, 2, 4, 8, 16), assocs=(1, 2), line_sizes=(16, 32)
    )
    lines.append(
        f"Example icache space: {len(space)} configurations, "
        f"{simulation_passes_required(space.configurations())} passes"
    )

    # Measured on the live evaluator: register all configs, query all,
    # count actual Cheetah passes.
    pipeline = get_pipeline("epic", settings)
    evaluator = pipeline.memory_evaluator()
    configs = space.configurations()
    evaluator.register("icache", configs)
    for config in configs:
        evaluator.icache_misses(config, 1.0)
    lines.append(
        f"Measured simulation passes for those "
        f"{len(configs)} queries: {evaluator.simulation_passes}"
    )
    return evaluator.simulation_passes, len(configs), "\n".join(lines)


@pytest.mark.benchmark(group="analysis")
def test_costmodel(benchmark, settings, results_dir):
    passes, n_configs, text = benchmark.pedantic(
        lambda: cost_report(settings), rounds=1, iterations=1
    )
    save_result(results_dir, "costmodel", text)
    print("\n" + text)
    assert exhaustive_evaluation_hours(40, 20) / 24 == pytest.approx(
        466, abs=1
    )
    # One pass per distinct line size, not one per configuration.
    assert passes == 2
    assert n_configs == 20
