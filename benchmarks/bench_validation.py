"""Section 6.1: validation of the memory simulation system.

The paper cross-checks its Cheetah-based simulator against the IMPACT
simulator and finds the miss rates "virtually identical".  Here the
single-pass Cheetah implementation is cross-checked against the
independent direct LRU simulator on real pipeline traces (instruction,
data and unified) for the reference machine and a wide machine — the
counts must match exactly, since both implement the same LRU semantics.
"""

import pytest

from benchmarks.conftest import save_result
from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.experiments.runner import get_pipeline
from repro.machine.presets import P1111, P6332

CONFIGS = [
    CacheConfig.from_size(1024, 1, 32),
    CacheConfig.from_size(16 * 1024, 2, 32),
    CacheConfig.from_size(16 * 1024, 2, 64),
    CacheConfig.from_size(128 * 1024, 4, 64),
]


def cross_validate(settings):
    pipeline = get_pipeline("epic", settings)
    report = []
    mismatches = 0
    for processor in (P1111, P6332):
        art = pipeline.artifacts(processor)
        for role in ("icache", "dcache", "unified"):
            trace = art.trace(role)
            by_line: dict[int, list[CacheConfig]] = {}
            for config in CONFIGS:
                by_line.setdefault(config.line_size, []).append(config)
            for line_size, configs in by_line.items():
                cheetah = CheetahSimulator(
                    line_size,
                    sorted({c.sets for c in configs}),
                    max_assoc=max(c.assoc for c in configs),
                )
                cheetah.simulate(trace.starts, trace.sizes)
                for config in configs:
                    direct = simulate_trace(
                        config, trace.starts, trace.sizes
                    )
                    fast = cheetah.misses(config.sets, config.assoc)
                    if fast != direct.misses:
                        mismatches += 1
                    report.append(
                        f"{processor.name:>5} {role:>8} {config}: "
                        f"direct={direct.misses} cheetah={fast}"
                    )
    return mismatches, "\n".join(report)


@pytest.mark.benchmark(group="validation")
def test_validation_cheetah_vs_direct(benchmark, settings, results_dir):
    mismatches, report = benchmark.pedantic(
        lambda: cross_validate(settings), rounds=1, iterations=1
    )
    text = "Simulator cross-validation (Section 6.1)\n" + report
    save_result(results_dir, "validation", text)
    print("\n" + text)
    assert mismatches == 0
