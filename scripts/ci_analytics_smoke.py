#!/usr/bin/env python
"""CI smoke for the experiment analytics subsystem.

Boots a broker-mode evaluation service (``workers=0``) and drives the
run-table pipeline end to end over the fleet protocol, where the
exactly-once economics are honest (each job runs in a *fresh* worker
process, so the only way the second job can skip simulation is the
shared store):

1. submit an explore job and let fleet worker #1 execute it — its run
   record (shipped to the broker over ``POST /runs``) must show
   checkpoint *stores* and zero cache hits;
2. submit the identical job for fleet worker #2 — a cold process — and
   assert its run shows **zero simulation passes** and cache-hit
   columns equal to the first run's checkpoint stores (exactly-once,
   visible in the run table);
3. assert ``GET /runs`` lists both runs, ``GET /compare`` reports
   identical rows and identical Pareto frontiers;
4. fetch ``GET /runs/<id>/table.csv`` and assert it round-trips
   through ``csv.DictReader`` bit-identically to the stored rows;
5. assert ``GET /dashboard`` is well-formed HTML naming both run ids.

The first run's CSV table goes to ``--csv`` so CI uploads it as an
artifact.  Exit code 0 means every assertion held.
"""

from __future__ import annotations

import argparse
import csv
import io
import os
import subprocess
import sys
import tempfile
import threading
from html.parser import HTMLParser
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analytics.table import (  # noqa: E402
    RUN_TABLE_HEADER,
    format_cell,
    run_table_rows,
)
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import EvalService, make_server  # noqa: E402

#: Tiny but non-trivial system space: 2 processors x 2 icaches x
#: 2 dcaches x 1 unified = 8 designs, 4 checkpointed pass states.
SPACE = {
    "icache": {"sizes_kb": [1, 2], "assocs": [1], "line_sizes": [16]},
    "dcache": {"sizes_kb": [1, 2], "assocs": [1], "line_sizes": [16]},
    "unified": {"sizes_kb": [4], "assocs": [1], "line_sizes": [32]},
    "processors": {
        "int_units": [1, 2],
        "float_units": [1],
        "memory_units": [1],
    },
}
SPEC = {
    "kind": "explore",
    "benchmark": "epic",
    "scale": 0.05,
    "visits": 3000,
    "space": SPACE,
}


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def spawn_worker(url: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "work",
            "--server", url, "--id", worker_id, "--max-jobs", "1",
        ],
        env=env,
        cwd=str(REPO),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_job_on_fresh_worker(
    client: ServiceClient, url: str, worker_id: str
) -> str:
    job_id = client.submit(SPEC)
    proc = spawn_worker(url, worker_id)
    try:
        record = client.wait(job_id, timeout=300.0)
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
    check(record.finished_ok, f"job {job_id} finished ok on {worker_id}")
    return job_id


class _WellFormed(HTMLParser):
    """Minimal well-formedness audit: every non-void tag closes."""

    VOID = {
        "meta", "link", "br", "hr", "img", "input", "polyline", "path",
    }

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag: str) -> None:
        if tag in self.VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}> (stack: {self.stack})")
        else:
            self.stack.pop()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--csv",
        default="analytics_run_table.csv",
        help="write the first run's CSV table here (CI artifact)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="analytics_smoke_") as tmp:
        service = EvalService(
            Path(tmp) / "analytics.sqlite", workers=0, lease=15.0
        )
        server = make_server(service)
        host, port = server.server_address
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://{host}:{port}"
        client = ServiceClient(url)
        try:
            with service:
                print(f"[analytics smoke] broker on {url}")
                run_a = run_job_on_fresh_worker(client, url, "analytics-w1")
                run_b = run_job_on_fresh_worker(client, url, "analytics-w2")

                # -- 1+2: exactly-once, visible in the run table ------
                doc_a = client.run(run_a)
                doc_b = client.run(run_b)
                ja = doc_a["run"]["journal"]
                jb = doc_b["run"]["journal"]
                check(
                    ja.get("checkpoint_stores", 0) > 0,
                    f"run A stored {ja.get('checkpoint_stores')} "
                    "checkpointed pass states",
                )
                check(
                    ja.get("cache_hits", 0) == 0,
                    "run A had zero cache hits (cold store)",
                )
                check(
                    jb.get("passes", 0) == 0,
                    "run B ran zero simulation passes (warm store)",
                )
                check(
                    jb.get("cache_hits", 0)
                    == ja.get("checkpoint_stores", 0),
                    "run B cache hits == run A checkpoint stores "
                    f"({jb.get('cache_hits')})",
                )
                check(
                    all(
                        row["cache_hits"] == jb["cache_hits"]
                        for row in doc_b["rows"]
                    ),
                    "every run B row carries the cache-hit column",
                )

                # -- 3: listing + comparison --------------------------
                listed = {r["id"] for r in client.runs()}
                check(
                    {run_a, run_b} <= listed,
                    f"GET /runs lists both runs ({sorted(listed)})",
                )
                comparison = client.compare(run_a, run_b)
                check(
                    comparison["rows"]["identical"],
                    "compare: per-design rows identical",
                )
                check(
                    comparison["frontier"]["identical"],
                    "compare: Pareto frontiers identical",
                )
                check(
                    len(comparison["frontier"]["a"]) > 0,
                    f"frontier has {len(comparison['frontier']['a'])} "
                    "points",
                )

                # -- 4: CSV round-trip --------------------------------
                csv_text = client.run_table_csv(run_a)
                parsed = list(csv.DictReader(io.StringIO(csv_text)))
                expected = run_table_rows(doc_a["run"], doc_a["rows"])
                check(
                    len(parsed) == len(expected) == len(doc_a["rows"]),
                    f"table.csv carries all {len(parsed)} rows",
                )
                for got, want in zip(parsed, expected):
                    for column in RUN_TABLE_HEADER:
                        cell = format_cell(want.get(column))
                        if got[column] != cell:
                            raise SystemExit(
                                f"FAIL: CSV round-trip mismatch in "
                                f"{column!r}: {got[column]!r} != {cell!r}"
                            )
                check(True, "table.csv round-trips bit-identically")
                Path(args.csv).write_text(csv_text)
                print(f"[analytics smoke] CSV artifact -> {args.csv}")

                # -- 5: dashboard -------------------------------------
                page = client.dashboard()
                check(
                    page.lstrip().startswith("<!DOCTYPE html>"),
                    "dashboard starts with a doctype",
                )
                audit = _WellFormed()
                audit.feed(page)
                audit.close()
                check(
                    not audit.errors and not audit.stack,
                    f"dashboard HTML is well-formed "
                    f"(errors={audit.errors}, open={audit.stack})",
                )
                check(
                    run_a in page and run_b in page,
                    "dashboard names both run ids",
                )
        finally:
            server.shutdown()
            server.server_close()
    print("[analytics smoke] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
