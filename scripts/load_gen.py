#!/usr/bin/env python
"""Fleet load generator: N workers × M clients, exactly-once audited.

For each requested fleet size, boots a fresh broker-mode service
(``workers=0``), attaches N ``python -m repro work`` OS processes, and
drives it with M concurrent client threads.  Each client owns a set of
distinct sweep specs and submits every one **twice**: the first
submission must be simulated by the fleet, the resubmission must be
served entirely from the content-addressed store (``simulated == 0``).

The run is audited for exactly-once execution: summed over every job
result, the number of configs actually simulated must equal the number
of *unique* (trace, config) pairs in the workload — not one more, not
one fewer — and the resubmissions must be pure store hits.

The tool then reports throughput per fleet size (speedup is bounded
by available CPU cores — on a one-core box a bigger fleet only proves
correctness, not speed), e.g. on a 4-core machine::

    workers=1  36 jobs  8.52 s  4.2 jobs/s  864 configs simulated once
    workers=3  36 jobs  3.11 s  11.6 jobs/s  864 configs simulated once
    speedup workers=3 over workers=1: 2.74x

Usage::

    python scripts/load_gen.py --fleets 1,3 --clients 3 --specs 3

``--out report.json`` additionally writes the per-fleet rows (jobs,
elapsed, throughput, configs simulated, speedup) as a JSON document for
CI artifacts and trend tracking.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import EvalService, make_server  # noqa: E402

CONFIG_GRID = {
    "sets": [16, 32, 64, 128, 256, 512],
    "assocs": [1, 2, 4],
    "line_sizes": [16, 32],
}
CONFIGS_PER_SPEC = 6 * 3 * 2


def sweep_spec(client_index: int, spec_index: int) -> dict:
    return {
        "kind": "sweep",
        "trace": {
            "kind": "synthetic",
            "seed": 9000 + client_index * 100 + spec_index,
            "ranges": 250_000,
            "footprint": 1 << 20,
            "max_size": 64,
        },
        "configs": CONFIG_GRID,
        "max_workers": 1,
    }


def spawn_worker(url: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "work", "--server", url,
         "--id", worker_id],
        env=env,
        cwd=str(REPO),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_clients(url: str, clients: int, specs: int) -> list[dict]:
    """M threads, each submitting its specs twice; returns job results."""
    results: list[dict] = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def one_client(index: int) -> None:
        client = ServiceClient(url)
        try:
            for round_no in ("fresh", "replay"):
                ids = [
                    client.submit(sweep_spec(index, s))
                    for s in range(specs)
                ]
                for jid in ids:
                    record = client.wait(jid, timeout=600.0)
                    with lock:
                        results.append(
                            {"round": round_no, **record.result}
                        )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=one_client, args=(i,), name=f"client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise SystemExit(f"FAIL: client error: {errors[0]!r}")
    return results


def run_fleet(fleet: int, clients: int, specs: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="load_gen_") as tmp:
        service = EvalService(
            Path(tmp) / "load.sqlite", workers=0, lease=10.0
        )
        server = make_server(service)
        host, port = server.server_address
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://{host}:{port}"
        procs = [
            spawn_worker(url, f"load-w{i}") for i in range(fleet)
        ]
        try:
            with service:
                start = time.monotonic()
                results = run_clients(url, clients, specs)
                elapsed = time.monotonic() - start
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
            server.shutdown()
            server.server_close()

    unique_configs = clients * specs * CONFIGS_PER_SPEC
    simulated = sum(r["simulated"] for r in results)
    replay = [r for r in results if r["round"] == "replay"]
    if simulated != unique_configs:
        raise SystemExit(
            f"FAIL: workers={fleet}: {simulated} configs simulated, "
            f"expected exactly {unique_configs} (exactly-once violated)"
        )
    if any(r["simulated"] != 0 or r["from_store"] != r["total"]
           for r in replay):
        raise SystemExit(
            f"FAIL: workers={fleet}: a resubmission was not served "
            "entirely from the store"
        )
    return {
        "fleet": fleet,
        "jobs": len(results),
        "elapsed": elapsed,
        "throughput": len(results) / elapsed,
        "simulated": simulated,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fleets",
        default="1,3",
        help="comma-separated worker counts to benchmark (default 1,3)",
    )
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument(
        "--specs",
        type=int,
        default=3,
        help="distinct sweep specs per client (each submitted twice)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the per-fleet results as a JSON report",
    )
    args = parser.parse_args()
    fleets = [int(f) for f in args.fleets.split(",") if f.strip()]

    cores = os.cpu_count() or 1
    print(
        f"[load gen] {cores} CPU core(s) available — worker speedup "
        "is bounded by cores, not fleet size"
    )
    rows = []
    for fleet in fleets:
        print(
            f"[load gen] workers={fleet}: {args.clients} clients × "
            f"{args.specs} specs × 2 rounds ...",
            flush=True,
        )
        rows.append(run_fleet(fleet, args.clients, args.specs))

    print()
    for row in rows:
        print(
            f"workers={row['fleet']}  {row['jobs']} jobs  "
            f"{row['elapsed']:.2f} s  {row['throughput']:.1f} jobs/s  "
            f"{row['simulated']} configs simulated exactly once"
        )
    speedup = None
    if len(rows) > 1:
        base, best = rows[0], rows[-1]
        speedup = best["throughput"] / base["throughput"]
        print(
            f"speedup workers={best['fleet']} over "
            f"workers={base['fleet']}: {speedup:.2f}x"
        )
    if args.out:
        report = {
            "cores": cores,
            "clients": args.clients,
            "specs": args.specs,
            "configs_per_spec": CONFIGS_PER_SPEC,
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "fleets": rows,
            "speedup": speedup,
        }
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[load gen] report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
