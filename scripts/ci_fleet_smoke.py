#!/usr/bin/env python
"""CI smoke for the worker fleet (leases + fencing + crash recovery).

Boots a broker-mode service (``workers=0`` — the broker executes
nothing) behind the stdlib HTTP server, attaches three real
``python -m repro work`` OS processes, and SIGKILLs one of them while
it holds a lease on a running job.  The smoke then asserts the fleet's
exactly-once story end to end:

1. every submitted job finishes ``done`` — the killed worker's job is
   requeued by lease expiry and finished by a survivor;
2. every per-config miss count is bit-identical to a direct serial
   ``simulate_trace`` baseline computed in this process;
3. the broker journal records **exactly one accepted completion per
   job** and exactly one lease grant per job *except* the killed one
   (which has exactly two: victim + successor) — i.e. zero double
   executions anywhere else and exactly one recovery where the kill
   happened;
4. the job the victim held was completed by a different worker.

The broker journal goes to ``--journal`` so CI uploads it as an
artifact.  Exit code 0 means every assertion held.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cache.config import CacheConfig  # noqa: E402
from repro.cache.simulator import simulate_trace  # noqa: E402
from repro.runtime.journal import RunJournal  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import build_trace_arrays  # noqa: E402
from repro.service.server import EvalService, make_server  # noqa: E402

CONFIG_GRID = {
    "sets": [16, 32, 64, 128, 256, 512],
    "assocs": [1, 2, 4, 8],
    "line_sizes": [16, 32],
}


def trace_spec(index: int) -> dict:
    return {
        "kind": "synthetic",
        "seed": 4000 + index,
        "ranges": 60_000,
        "footprint": 1 << 20,
        "max_size": 64,
    }


def job_spec(index: int) -> dict:
    # max_workers=1 keeps execution inside the worker process itself,
    # so SIGKILL takes down exactly one OS process and nothing leaks.
    return {
        "kind": "sweep",
        "trace": trace_spec(index),
        "configs": CONFIG_GRID,
        "max_workers": 1,
    }


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def spawn_worker(url: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "work",
            "--server",
            url,
            "--id",
            worker_id,
        ],
        env=env,
        cwd=str(REPO),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--db", default="fleet_smoke.sqlite", help="sqlite store path"
    )
    parser.add_argument(
        "--journal",
        default="JOURNAL_fleet_smoke.jsonl",
        help="broker journal (JSON lines, uploaded as a CI artifact)",
    )
    parser.add_argument("--jobs", type=int, default=9)
    parser.add_argument("--fleet", type=int, default=3)
    parser.add_argument(
        "--lease",
        type=float,
        default=2.0,
        help="lease seconds; short so recovery is fast after the kill",
    )
    args = parser.parse_args()

    journal = RunJournal(args.journal)
    service = EvalService(
        args.db,
        workers=0,
        lease=args.lease,
        reap_interval=args.lease / 4.0,
        journal=journal,
    )
    server = make_server(service)
    host, port = server.server_address
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(f"http://{host}:{port}")
    url = client.base_url
    workers: dict[str, subprocess.Popen] = {}

    try:
        with service:
            print(f"[fleet smoke] broker on {url}")
            job_ids = [
                client.submit(job_spec(i)) for i in range(args.jobs)
            ]
            check(
                len(set(job_ids)) == args.jobs,
                f"{args.jobs} distinct jobs queued",
            )

            workers = {
                f"smoke-w{i}": spawn_worker(url, f"smoke-w{i}")
                for i in range(args.fleet)
            }
            print(f"[fleet smoke] {args.fleet} worker processes attached")

            # Catch any worker holding a live lease and SIGKILL it.
            victim = victim_job = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                for record in client.jobs(state="running"):
                    if record.owner in workers:
                        victim, victim_job = record.owner, record.id
                        break
                if victim:
                    break
                time.sleep(0.01)
            check(victim is not None, "observed a worker mid-job")
            workers[victim].kill()
            workers[victim].wait()
            print(
                f"[fleet smoke] SIGKILLed {victim} while it held "
                f"job {victim_job}"
            )

            # Survivors must finish everything, including the orphan.
            deadline = time.monotonic() + 180.0
            while time.monotonic() < deadline:
                states = {jid: client.job(jid).state for jid in job_ids}
                if all(s == "done" for s in states.values()):
                    break
                if any(s == "failed" for s in states.values()):
                    raise SystemExit(f"FAIL: job failed: {states}")
                time.sleep(0.1)
            check(
                all(s == "done" for s in states.values()),
                "all jobs done after the kill (orphan recovered)",
            )

            # Bit-identical to a serial in-process baseline.
            for i, jid in enumerate(job_ids):
                starts, sizes = build_trace_arrays(trace_spec(i))
                docs = client.job(jid).result["results"]
                for doc in docs:
                    config = CacheConfig(
                        doc["sets"], doc["assoc"], doc["line_size"]
                    )
                    expected = simulate_trace(config, starts, sizes)
                    if (
                        doc["misses"] != expected.misses
                        or doc["accesses"] != expected.accesses
                    ):
                        raise SystemExit(
                            f"FAIL: job {jid} {config.describe()} diverged"
                        )
            check(True, "every miss count bit-identical to serial baseline")
    finally:
        for proc in workers.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in workers.values():
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
        server.shutdown()
        server.server_close()
        journal.close()

    # -- journal audit: exactly-once, with one recovery at the kill ----
    events = [
        json.loads(line)
        for line in Path(args.journal).read_text().splitlines()
        if line.strip()
    ]
    done = Counter(
        e["id"]
        for e in events
        if e.get("event") == "service_job" and e.get("state") == "done"
    )
    check(
        done == Counter({jid: 1 for jid in job_ids}),
        "journal: exactly one accepted completion per job",
    )
    grants = Counter(
        e["id"]
        for e in events
        if e.get("event") == "lease" and e.get("action") == "grant"
    )
    expected_grants = Counter({jid: 1 for jid in job_ids})
    expected_grants[victim_job] = 2
    check(
        grants == expected_grants,
        "journal: single lease per job, two only where the kill hit",
    )
    expired = [
        e
        for e in events
        if e.get("event") == "lease" and e.get("action") == "expired"
    ]
    check(
        [e["id"] for e in expired] == [victim_job],
        "journal: exactly the victim's lease expired",
    )
    finisher = next(
        e["owner"]
        for e in events
        if e.get("event") == "service_job"
        and e.get("state") == "done"
        and e["id"] == victim_job
    )
    check(
        finisher != victim,
        f"victim's job finished by a survivor ({finisher})",
    )

    print(f"[fleet smoke] PASS (journal: {args.journal})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
