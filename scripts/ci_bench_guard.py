#!/usr/bin/env python
"""CI bench regression guard: fresh cheetah speedups vs the committed baseline.

Re-runs the :mod:`benchmarks.bench_cheetah_perf` measurement (one
discarded warm-up pass, then median of ``--runs`` measured passes) and
compares the two headline ratios against the committed repo-root
``BENCH_cheetah.json`` baseline:

* ``primary_speedup`` — vectorized engine vs the seed ``_touch`` loop on
  the epic primary grid;
* ``kernel_speedup`` — stack-distance kernel vs the scalar survivor loop
  on the survivor-heavy synthetic grids;
* ``design_space_speedup`` — whole-design-space kernel vs cold
  per-line-size passes on the full multi-line-size grid;
* ``fused_counting_speedup`` — one fused cross-size stack-distance
  dispatch vs per-problem kernel calls on the fused-counting grid;
* ``streaming_overhead`` — in-memory sweep seconds over chunked-trace
  sweep seconds (higher is better; 0.5 means streaming costs 2x);
* ``sampling_accuracy`` — 1 minus the max relative miss error of the
  interval-sampled sweep on the capacity-bound sampling grid
  (deterministic, so it ratchets tightly).

Speedups are *ratios* of two timings taken on the same runner, so they
are far more stable across machines than absolute seconds — but CI
runners are still noisy, hence the warm-up, the median, and a relative
``--tolerance`` (default 0.35: fail only when a fresh ratio drops more
than 35% below the committed baseline).  The fresh report is written to
``--json`` (a separate path, never the committed baseline) so CI can
upload it as an artifact.  Exit code 0 means no regression.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

_root = Path(__file__).resolve().parent.parent
for entry in (_root, _root / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from benchmarks.bench_cheetah_perf import run_benchmark, write_report  # noqa: E402

GUARDED_METRICS = (
    "primary_speedup",
    "kernel_speedup",
    "design_space_speedup",
    "fused_counting_speedup",
    "streaming_overhead",
    "sampling_accuracy",
)


def measure(runs: int, reps: int) -> list[dict]:
    """One discarded warm-up pass, then ``runs`` measured passes."""
    run_benchmark(reps=1, oracle=False)  # warm-up: caches, allocator, JIT-less numpy paths
    return [run_benchmark(reps=reps, oracle=False) for _ in range(runs)]


def guard(
    baseline: dict, reports: list[dict], tolerance: float
) -> tuple[dict, list[str]]:
    """Median-of-runs comparison; returns (fresh summary, failure list)."""
    fresh = dict(reports[len(reports) // 2])  # full report of the middle run
    failures = []
    for metric in GUARDED_METRICS:
        if metric not in baseline:
            continue  # baseline predates this metric; nothing to guard
        values = [r[metric] for r in reports]
        median = round(statistics.median(values), 2)
        floor = round(baseline[metric] * (1.0 - tolerance), 2)
        fresh[f"{metric}_median"] = median
        fresh[f"{metric}_baseline"] = baseline[metric]
        fresh[f"{metric}_floor"] = floor
        status = "ok" if median >= floor else "REGRESSED"
        print(
            f"{metric}: baseline {baseline[metric]}x, fresh median "
            f"{median}x (runs: {values}), floor {floor}x -> {status}"
        )
        if median < floor:
            failures.append(
                f"{metric} regressed: median {median}x < floor {floor}x "
                f"(baseline {baseline[metric]}x, tolerance {tolerance:.0%})"
            )
    return fresh, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_root / "BENCH_cheetah.json",
        help="committed baseline report (repo root BENCH_cheetah.json)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path("BENCH_cheetah_fresh.json"),
        help="where to write the fresh report (never the baseline path)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed relative drop below the baseline speedups",
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="measured passes (median taken)"
    )
    parser.add_argument(
        "--reps", type=int, default=1, help="timing reps within each pass"
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.runs < 1 or args.reps < 1:
        parser.error("--runs and --reps must be >= 1")
    if args.json.resolve() == args.baseline.resolve():
        parser.error("--json must not overwrite the committed baseline")

    baseline = json.loads(args.baseline.read_text())
    reports = measure(args.runs, args.reps)
    fresh, failures = guard(baseline, reports, args.tolerance)
    write_report(fresh, args.json)
    print(f"fresh report written to {args.json}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("bench guard: no regression")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
