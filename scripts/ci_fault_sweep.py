#!/usr/bin/env python
"""CI fault-injection smoke: faulty runs must match fault-free runs.

Runs four comparisons with deterministic worker faults injected through
:class:`repro.runtime.FaultPlan`:

1. A small line-size sweep (``sweep_design_space``) where one group's
   worker is killed mid-sweep: the executor must fall back / retry and
   produce results identical to the fault-free sweep.
2. The same faulty sweep with zero-copy shared-memory trace shipping
   forced: results must stay identical, the journal must show
   ``shm_attach`` events with bytes mapped exceeding bytes shipped, and
   no ``/dev/shm`` segment may survive the sweep.
3. A design-space sweep with ``count_parallelism=2`` — per-line-size
   counting fanned over the pool with shm-shipped streams — where one
   counting worker is killed: results must match the fault-free
   designspace sweep and no shared segment may leak.
4. A small spacewalker exploration where the first attempt of every
   icache priming pass raises: the retried run's Pareto frontier must
   match the fault-free frontier exactly.

The run journal is written to ``--journal`` (JSON lines) so CI can
upload it as an artifact next to ``BENCH_explore.json``; the script
asserts the journal actually recorded the injected retries/fallbacks.
Exit code 0 means every assertion held.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cache.config import CacheConfig  # noqa: E402
from repro.cache.sweep import sweep_design_space  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    RunnerSettings,
    clear_pipeline_cache,
    get_pipeline,
)
from repro.explore.spacewalker import Spacewalker  # noqa: E402
from repro.explore.spec import (  # noqa: E402
    CacheDesignSpace,
    ProcessorDesignSpace,
    SystemDesignSpace,
)
from repro.runtime import ExecutorPolicy, FaultPlan, RunJournal  # noqa: E402

SWEEP_CONFIGS = [
    CacheConfig(8, 1, 16),
    CacheConfig(8, 2, 16),
    CacheConfig(16, 1, 16),
    CacheConfig(8, 1, 32),
    CacheConfig(4, 4, 32),
    CacheConfig(16, 2, 64),
]


def sweep_trace():
    """Tiny fixed trace shared by the faulty and fault-free sweeps."""
    starts = [0, 32, 64, 0, 128, 256, 32, 512, 0, 96, 72, 8]
    sizes = [16, 16, 32, 16, 64, 16, 16, 16, 16, 4, 4, 40]
    return starts, sizes


def check_sweep(journal: RunJournal) -> None:
    """Worker death mid-sweep must not change the sweep's results."""
    baseline = sweep_design_space(SWEEP_CONFIGS, sweep_trace())
    policy = ExecutorPolicy(
        max_workers=2,
        retries=2,
        backoff=0.0,
        fault=FaultPlan("exit", match="32", times=1),
    )
    faulty = sweep_design_space(
        SWEEP_CONFIGS, sweep_trace, policy=policy, journal=journal
    )
    assert faulty == baseline, "fault-injected sweep diverged from baseline"
    assert journal.select("fallback") or journal.select("retry"), (
        "journal recorded neither a fallback nor a retry for the killed worker"
    )
    print(f"sweep: {len(faulty)} configs identical under injected worker death")


def check_shm_sweep(journal: RunJournal) -> None:
    """Zero-copy shipping under faults: identical results, no leaks."""
    from repro.runtime.executor import segment_manager, shm_available

    if not shm_available():
        print("shm sweep: skipped (POSIX shared memory unavailable)")
        return
    baseline = sweep_design_space(SWEEP_CONFIGS, sweep_trace())
    policy = ExecutorPolicy(
        max_workers=2,
        retries=2,
        backoff=0.0,
        trace_shipping="shm",
        fault=FaultPlan("exit", match="16", times=1),
    )
    faulty = sweep_design_space(
        SWEEP_CONFIGS, sweep_trace, policy=policy, journal=journal
    )
    assert faulty == baseline, "shm-shipped sweep diverged from baseline"
    attaches = journal.select("shm_attach")
    assert attaches, "journal recorded no shm_attach events"
    shipped = sum(e["bytes_shipped"] for e in attaches)
    mapped = sum(e["bytes_mapped"] for e in attaches)
    assert mapped > shipped, (
        f"shm shipping saved nothing: {shipped} B shipped for "
        f"{mapped} B mapped"
    )
    assert segment_manager().active() == {}, (
        f"segments still tracked after sweep: {segment_manager().active()}"
    )
    from multiprocessing import shared_memory

    for event in journal.select("shm_segment"):
        if event["action"] != "create":
            continue
        try:
            segment = shared_memory.SharedMemory(name=event["segment"])
        except FileNotFoundError:
            continue
        segment.close()
        raise AssertionError(
            f"shm segment {event['segment']} leaked into /dev/shm"
        )
    print(
        f"shm sweep: {len(faulty)} configs identical under injected worker "
        f"death; {len(attaches)} zero-copy jobs shipped "
        f"{shipped} B for {mapped} B mapped, no segment leaked"
    )


def check_count_parallel_sweep(journal: RunJournal) -> None:
    """Multicore counting under faults: identical results, no leaks."""
    from repro.runtime.executor import segment_manager, shm_available
    from repro.runtime.journal import use_journal

    if not shm_available():
        print(
            "count-parallel sweep: skipped "
            "(POSIX shared memory unavailable)"
        )
        return
    baseline = sweep_design_space(
        SWEEP_CONFIGS, sweep_trace(), strategy="designspace"
    )
    recoveries_before = len(journal.select("retry")) + len(
        journal.select("fallback")
    )
    policy = ExecutorPolicy(
        retries=2,
        backoff=0.0,
        count_parallelism=2,
        fault=FaultPlan("exit", match="32", times=1),
    )
    # The designspace internals journal through the *active* journal.
    with use_journal(journal):
        faulty = sweep_design_space(
            SWEEP_CONFIGS,
            sweep_trace(),
            policy=policy,
            journal=journal,
            strategy="designspace",
        )
    assert faulty == baseline, (
        "count-parallel sweep diverged from the designspace baseline"
    )
    pool_events = [
        e for e in journal.select("designspace") if e.get("mode") == "parallel"
    ]
    assert pool_events, "journal recorded no parallel designspace event"
    assert all(e["parallelism"] == 2 for e in pool_events)
    recoveries = (
        len(journal.select("retry"))
        + len(journal.select("fallback"))
        - recoveries_before
    )
    assert recoveries > 0, (
        "journal recorded neither a retry nor a fallback for the "
        "killed counting worker"
    )
    assert segment_manager().active() == {}, (
        f"segments still tracked after sweep: {segment_manager().active()}"
    )
    from multiprocessing import shared_memory

    for event in journal.select("shm_segment"):
        if event["action"] != "create":
            continue
        try:
            segment = shared_memory.SharedMemory(name=event["segment"])
        except FileNotFoundError:
            continue
        segment.close()
        raise AssertionError(
            f"shm segment {event['segment']} leaked into /dev/shm"
        )
    print(
        f"count-parallel sweep: {len(faulty)} configs identical under "
        f"injected counting-worker death at parallelism 2, no segment "
        f"leaked"
    )


def explore_space() -> SystemDesignSpace:
    """A deliberately tiny design space (seconds, not minutes, in CI)."""
    return SystemDesignSpace(
        processors=ProcessorDesignSpace(
            int_units=(1, 2), float_units=(1,), memory_units=(1,),
            branch_units=(1,),
        ),
        icache=CacheDesignSpace(
            sizes_kb=(0.5, 1), assocs=(1,), line_sizes=(16, 32)
        ),
        dcache=CacheDesignSpace(
            sizes_kb=(0.5, 1), assocs=(1,), line_sizes=(16,)
        ),
        unified=CacheDesignSpace(sizes_kb=(8,), assocs=(2,), line_sizes=(32,)),
    )


def frontier_fingerprint(pareto) -> list[tuple]:
    """Comparable summary of a Pareto frontier (cost, time, design repr)."""
    return [
        (round(p.cost, 9), round(p.time, 9), repr(p.design))
        for p in pareto.frontier()
    ]


def check_explore(journal: RunJournal) -> None:
    """An injected priming fault must not change the Pareto frontier."""
    settings = RunnerSettings(scale=0.12, max_visits=2000)
    space = explore_space()
    retries_before = len(journal.select("retry"))

    clear_pipeline_cache()
    baseline = frontier_fingerprint(
        Spacewalker(space, get_pipeline("epic", settings)).walk()
    )

    clear_pipeline_cache()
    policy = ExecutorPolicy(
        max_workers=2,
        retries=2,
        backoff=0.0,
        fault=FaultPlan("raise", match="icache", times=1),
    )
    faulty = frontier_fingerprint(
        Spacewalker(
            space,
            get_pipeline("epic", settings),
            max_workers=2,
            policy=policy,
            journal=journal,
        ).walk()
    )
    assert faulty == baseline, (
        "fault-injected exploration frontier diverged from baseline:\n"
        f"  baseline: {baseline}\n  faulty:   {faulty}"
    )
    retries = len(journal.select("retry")) - retries_before
    assert retries > 0, (
        "journal recorded no retry for the injected priming fault"
    )
    print(
        f"explore: frontier of {len(faulty)} designs identical under "
        f"{retries} injected fault(s)"
    )


def check_recorded_fault_run(journal: RunJournal) -> None:
    """Run-table recording under faults: columns match, results don't move.

    Records a fault-free and a fault-injected sweep as analytics runs
    and asserts (a) the faulty run's retry/fallback columns equal its
    journal window, and (b) ``compare_runs`` reports identical rows and
    identical Pareto frontiers — recording never perturbs results.
    """
    import tempfile

    from repro.analytics.compare import compare_runs
    from repro.analytics.runs import RunRecorder, get_run, get_run_rows
    from repro.service.store import ResultStore

    with tempfile.TemporaryDirectory(prefix="fault-runs-") as tmp:
        store = ResultStore(Path(tmp) / "runs.sqlite")
        with RunRecorder(
            store, "sweep", journal=journal, run_id="clean"
        ) as rec:
            rec.add_sweep_results(
                sweep_design_space(
                    SWEEP_CONFIGS, sweep_trace(), journal=journal
                ),
                benchmark="synthetic",
            )
        policy = ExecutorPolicy(
            max_workers=2,
            retries=2,
            backoff=0.0,
            fault=FaultPlan("exit", match="32", times=1),
        )
        recoveries_before = len(journal.select("retry")) + len(
            journal.select("fallback")
        )
        with RunRecorder(
            store, "sweep", journal=journal, run_id="faulty"
        ) as rec:
            rec.add_sweep_results(
                sweep_design_space(
                    SWEEP_CONFIGS,
                    sweep_trace,
                    policy=policy,
                    journal=journal,
                ),
                benchmark="synthetic",
            )
        retries = len(journal.select("retry"))
        fallbacks = len(journal.select("fallback"))
        recoveries = retries + fallbacks - recoveries_before
        assert recoveries > 0, "fault plan injected no recovery"
        faulty = get_run(store, "faulty")
        window = faulty["journal"]["retries"] + faulty["journal"]["fallbacks"]
        assert window == recoveries, (
            f"run columns saw {window} recoveries, journal saw {recoveries}"
        )
        for row in get_run_rows(store, "faulty"):
            assert row["retries"] + row["fallbacks"] == recoveries
        doc = compare_runs(store, "clean", "faulty")
        assert doc["rows"]["identical"], "faulty run rows drifted"
        assert doc["frontier"]["identical"], "faulty run frontier drifted"
        store.close()
    print(
        f"recorded fault run: {faulty['rows']} rows identical to the "
        f"clean run; {recoveries} recovery event(s) surfaced in the "
        f"retry/fallback columns"
    )


def check_recording_overhead() -> None:
    """Recording must cost < 2% wall time on the epic benchmark grid."""
    import tempfile
    import time

    from repro.analytics.runs import RunRecorder
    from repro.cache.config import CacheConfig
    from repro.runtime.journal import use_journal
    from repro.service.store import ResultStore

    settings = RunnerSettings()
    artifacts = get_pipeline("epic", settings).reference_artifacts()
    roles = {
        role: artifacts.trace(role)
        for role in ("icache", "dcache", "unified")
    }
    grid = [
        CacheConfig(sets, assoc, line_size)
        for line_size in (16, 32, 64)
        for sets in (64, 256, 1024)
        for assoc in (1, 2, 4)
    ]

    def plain() -> float:
        start = time.perf_counter()
        for trace in roles.values():
            sweep_design_space(grid, (trace.starts, trace.sizes))
        return time.perf_counter() - start

    def recorded(store: ResultStore, index: int) -> float:
        journal = RunJournal()
        start = time.perf_counter()
        with use_journal(journal):
            with RunRecorder(
                store,
                "sweep",
                journal=journal,
                run_id=f"overhead-{index}",
                benchmark="epic",
            ) as rec:
                for role, trace in roles.items():
                    rec.add_sweep_results(
                        sweep_design_space(
                            grid,
                            (trace.starts, trace.sizes),
                            journal=journal,
                        ),
                        benchmark="epic",
                        role=role,
                    )
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="overhead-runs-") as tmp:
        store = ResultStore(Path(tmp) / "runs.sqlite")
        bare: list[float] = []
        instrumented: list[float] = []
        # Interleave the two variants so drift in machine load hits
        # both equally; minimums cancel the noise.
        for index in range(7):
            if index % 2:
                bare.append(plain())
                instrumented.append(recorded(store, index))
            else:
                instrumented.append(recorded(store, index))
                bare.append(plain())
        store.close()
    overhead = (min(instrumented) - min(bare)) / min(bare)
    assert overhead < 0.02, (
        f"recording overhead {overhead:.1%} exceeds 2% on the epic grid "
        f"(bare {min(bare):.3f}s, recorded {min(instrumented):.3f}s)"
    )
    print(
        f"recording overhead: {max(overhead, 0.0):.2%} on the epic grid "
        f"({len(grid)} configs x {len(roles)} roles, "
        f"bare {min(bare):.3f}s vs recorded {min(instrumented):.3f}s)"
    )


def main(argv: list[str] | None = None) -> int:
    """Run both fault-injection checks; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--journal",
        default="JOURNAL_fault_sweep.jsonl",
        metavar="PATH",
        help="write the JSON-lines run journal here (CI artifact)",
    )
    args = parser.parse_args(argv)
    with RunJournal(args.journal) as journal:
        check_sweep(journal)
        check_shm_sweep(journal)
        check_count_parallel_sweep(journal)
        check_explore(journal)
        check_recorded_fault_run(journal)
        check_recording_overhead()
        print()
        print(journal.summary_text(title="Fault-injection smoke journal"))
        print(f"\njournal: {len(journal)} events -> {args.journal}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
