#!/usr/bin/env python
"""CI smoke for streaming chunked traces: bounded memory, bit-identity.

The streaming stack's whole point is simulating traces bigger than the
memory budget without changing any result.  This smoke proves both
halves on a synthetic trace >= 10x the epic reference workload:

1. **Stream-write** ``--ranges`` ranges (default 2.6M) into a chunked
   store with :class:`~repro.trace.chunkstore.ChunkedTraceWriter` —
   batches only, the full arrays never exist in this phase.
2. **Bounded-memory sweep**: re-exec this script as a child process that
   installs ``resource.setrlimit(RLIMIT_AS, budget)`` *before* importing
   numpy, attaches the trace by path, and runs the serial chunked sweep.
   The budget is enforced by the kernel — exceeding it is a
   ``MemoryError``, not a report.  The child journals the sweep plus an
   ``rss`` event (``ru_maxrss`` vs the budget) into ``--journal``.
3. **Bit-identity**: the parent (no rlimit) materializes the same trace,
   sweeps in memory, and asserts every per-config miss count equals the
   child's streamed result.
4. **Worker shipping**: the parent re-runs the sweep over the chunked
   trace with a 2-process pool and asserts results again — jobs carry
   ``(path, digest)``, verified by the ``trace_shipping mode=chunkpath``
   journal event.

Exit code 0 means every assertion held.  The journal goes to
``--journal`` so CI uploads it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Streaming grid: two line-size groups so the pool path has something
#: to fan out, assoc extremes to keep the histograms honest.
GRID = {
    "line_sizes": [32, 64],
    "set_counts": [64, 256, 1024],
    "assocs": [1, 4],
}

#: Ranges written per writer batch — the generation working set.
BATCH_RANGES = 131_072


def _import_repro():
    if str(REPO / "src") not in sys.path:
        sys.path.insert(0, str(REPO / "src"))


def configs():
    from repro.cache.config import CacheConfig

    return [
        CacheConfig(nsets, assoc, line_size)
        for line_size in GRID["line_sizes"]
        for nsets in GRID["set_counts"]
        for assoc in GRID["assocs"]
    ]


def config_key(config) -> str:
    return f"S{config.sets}A{config.assoc}L{config.line_size}"


def synth_batch(seed: int, index: int, count: int):
    """Deterministic batch ``index`` of the synthetic trace."""
    import numpy as np

    rng = np.random.default_rng((seed, index))
    starts = rng.integers(0, 1 << 22, count, dtype=np.int64)
    sizes = rng.integers(1, 65, count, dtype=np.int64)
    return starts, sizes


def write_trace(path: Path, ranges: int, seed: int, chunk_ranges: int):
    from repro.trace.chunkstore import ChunkedTrace, ChunkedTraceWriter

    with ChunkedTraceWriter(path, chunk_ranges=chunk_ranges) as writer:
        index = 0
        written = 0
        while written < ranges:
            count = min(BATCH_RANGES, ranges - written)
            writer.append(*synth_batch(seed, index, count))
            written += count
            index += 1
    return ChunkedTrace(path)


def run_child(args) -> int:
    """Bounded-memory half: rlimit first, numpy second, sweep third."""
    budget = args.budget_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (budget, budget))
    _import_repro()
    from repro.cache.sweep import sweep_design_space
    from repro.runtime.journal import RunJournal
    from repro.trace.chunkstore import ChunkedTrace

    journal = RunJournal(args.journal)
    with ChunkedTrace(args.trace) as trace:
        results = sweep_design_space(configs(), trace, journal=journal)
        chunks, ranges = trace.n_chunks, trace.n_ranges
    max_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    journal.record("rss", max_rss_bytes=max_rss, budget_bytes=budget)
    journal.close()
    out = {
        "misses": {
            config_key(c): result.misses for c, result in results.items()
        },
        "max_rss_bytes": max_rss,
        "budget_bytes": budget,
        "chunks": chunks,
        "ranges": ranges,
    }
    Path(args.out).write_text(json.dumps(out))
    return 0


def run_parent(args) -> int:
    _import_repro()
    import tempfile

    from repro.cache.sweep import sweep_design_space
    from repro.runtime.journal import RunJournal

    with tempfile.TemporaryDirectory(prefix="repro-stream-smoke-") as td:
        trace_path = Path(td) / "stream.rct"
        print(
            f"writing {args.ranges} ranges "
            f"({args.ranges // 257_806}x epic) in "
            f"{BATCH_RANGES}-range batches ..."
        )
        trace = write_trace(
            trace_path, args.ranges, args.seed, args.chunk_ranges
        )
        print(
            f"  {trace.n_chunks} chunks, "
            f"{trace_path.stat().st_size / 1e6:.1f} MB on disk, "
            f"digest {trace.digest[:12]}..."
        )

        # Child: serial chunked sweep under the enforced RSS budget.
        out_path = Path(td) / "child.json"
        child = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--child",
                "--trace",
                str(trace_path),
                "--budget-mb",
                str(args.budget_mb),
                "--journal",
                str(args.journal),
                "--out",
                str(out_path),
            ],
            capture_output=True,
            text=True,
        )
        if child.returncode != 0:
            print(child.stdout)
            print(child.stderr, file=sys.stderr)
            print(
                f"FAIL: bounded-memory child exited {child.returncode} "
                f"under the {args.budget_mb} MiB budget",
                file=sys.stderr,
            )
            return 1
        streamed = json.loads(out_path.read_text())
        rss_mb = streamed["max_rss_bytes"] / (1024 * 1024)
        print(
            f"child sweep ok under enforced budget: peak RSS "
            f"{rss_mb:.0f} MiB of {args.budget_mb} MiB"
        )
        assert streamed["max_rss_bytes"] <= streamed["budget_bytes"]
        assert streamed["ranges"] == args.ranges

        # In-memory baseline (parent is unrestricted).
        starts, sizes = trace.materialize()
        exact = sweep_design_space(configs(), (starts, sizes))
        mismatches = [
            config_key(c)
            for c in configs()
            if exact[c].misses != streamed["misses"][config_key(c)]
        ]
        if mismatches:
            print(
                f"FAIL: streamed results diverge from in-memory at "
                f"{mismatches}",
                file=sys.stderr,
            )
            return 1
        print(
            f"bit-identity: {len(configs())} configs identical between "
            "streamed (child) and in-memory (parent) sweeps"
        )
        del starts, sizes

        # Pool path: workers attach by (path, digest).
        journal = RunJournal()
        pooled = sweep_design_space(
            configs(), trace, max_workers=2, journal=journal
        )
        shipping = [
            e for e in journal.events if e["event"] == "trace_shipping"
        ]
        assert shipping and shipping[0]["mode"] == "chunkpath", shipping
        pool_bad = [
            config_key(c)
            for c in configs()
            if pooled[c].misses != exact[c].misses
        ]
        if pool_bad:
            print(
                f"FAIL: pool-worker results diverge at {pool_bad}",
                file=sys.stderr,
            )
            return 1
        print(
            f"pool shipping: {shipping[0]['jobs']} jobs shipped by "
            f"path+digest (mode=chunkpath), results bit-identical"
        )
        trace.close()

    child_journal = RunJournal.load(args.journal)
    summary = child_journal.summary()
    assert summary["streaming"]["chunked_passes"] >= 1, summary
    assert summary["memory"]["max_rss_bytes"] <= summary["memory"][
        "rss_budget_bytes"
    ], summary
    print()
    print(child_journal.summary_text("Child journal summary"))
    print()
    print("stream smoke: all assertions held")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ranges",
        type=int,
        default=2_600_000,
        help="synthetic trace length (default >= 10x the epic workload)",
    )
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument(
        "--chunk-ranges",
        type=int,
        default=262_144,
        help="ranges per chunk in the on-disk store",
    )
    parser.add_argument(
        "--budget-mb",
        type=int,
        default=256,
        help="address-space budget enforced on the sweeping child (MiB)",
    )
    parser.add_argument(
        "--journal",
        type=Path,
        default=Path("JOURNAL_stream_smoke.jsonl"),
        help="where the child writes its run journal",
    )
    # Child-mode plumbing (internal).
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--trace", type=Path, help=argparse.SUPPRESS)
    parser.add_argument("--out", type=Path, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.ranges < 1 or args.chunk_ranges < 1 or args.budget_mb < 1:
        parser.error("--ranges, --chunk-ranges and --budget-mb must be >= 1")

    if args.child:
        return run_child(args)
    if args.journal.exists():
        args.journal.unlink()  # the child appends; start fresh
    return run_parent(args)


if __name__ == "__main__":
    raise SystemExit(main())
