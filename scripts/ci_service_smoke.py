#!/usr/bin/env python
"""CI smoke for the evaluation service (store + queue + HTTP API).

Boots the real service stack in one process — :class:`EvalService`
workers over a sqlite store, wrapped in the stdlib HTTP server on an
ephemeral port — then drives it exactly as a user would:

1. submit a small sweep job over a synthetic trace through HTTP and
   poll it to completion;
2. assert every returned miss count equals a direct in-process
   ``simulate_trace`` run (the service must not change results, only
   where they are computed);
3. submit the *same* grid again and assert the rerun is served
   entirely from the content-addressed store (``from_store == total``,
   zero new simulation);
4. query ``/results`` and assert it matches the job's result documents.

The service journal goes to ``--journal`` and the final ``/metrics``
document to ``--metrics`` so CI uploads both as artifacts.  Exit code 0
means every assertion held.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cache.config import CacheConfig  # noqa: E402
from repro.cache.simulator import simulate_trace  # noqa: E402
from repro.runtime.journal import RunJournal  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobs import build_trace_arrays  # noqa: E402
from repro.service.server import EvalService, make_server  # noqa: E402

TRACE = {
    "kind": "synthetic",
    "seed": 2026,
    "ranges": 400,
    "footprint": 16384,
    "max_size": 48,
}
SPEC = {
    "kind": "sweep",
    "trace": TRACE,
    "configs": {"sets": [8, 16, 32], "assocs": [1, 2], "line_sizes": [16, 32]},
}


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--db", default="service_smoke.sqlite", help="sqlite store path"
    )
    parser.add_argument(
        "--journal",
        default="JOURNAL_service_smoke.jsonl",
        help="service run journal (JSON lines, uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--metrics",
        default="METRICS_service_smoke.json",
        help="final /metrics snapshot (uploaded as a CI artifact)",
    )
    args = parser.parse_args()

    journal = RunJournal(args.journal)
    service = EvalService(args.db, workers=2, journal=journal)
    server = make_server(service)
    host, port = server.server_address
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(f"http://{host}:{port}")

    try:
        with service:
            print(f"[service smoke] listening on {client.base_url}")
            check(client.health(), "health probe answers")

            record = client.wait(client.submit(SPEC), timeout=300)
            result = record.result
            n_configs = 12
            check(
                result["total"] == n_configs,
                f"sweep covers all {n_configs} configs",
            )
            check(
                result["simulated"] == n_configs,
                "cold store: every config simulated",
            )

            starts, sizes = build_trace_arrays(TRACE)
            for doc in result["results"]:
                config = CacheConfig(
                    doc["sets"], doc["assoc"], doc["line_size"]
                )
                expected = simulate_trace(config, starts, sizes)
                check(
                    doc["misses"] == expected.misses
                    and doc["accesses"] == expected.accesses,
                    f"{config.describe()} matches in-process simulation",
                )

            rerun = client.wait(client.submit(SPEC), timeout=300).result
            check(
                rerun["from_store"] == n_configs and rerun["simulated"] == 0,
                "identical resubmission served entirely from the store",
            )
            check(
                [d["misses"] for d in rerun["results"]]
                == [d["misses"] for d in result["results"]],
                "stored results identical to simulated results",
            )

            items = client.results(prefix=f"misses:{result['trace_key']}:")
            check(
                len(items) == n_configs, "/results returns every stored config"
            )
            by_key = {
                f"misses:{result['trace_key']}:S{d['sets']}"
                f"A{d['assoc']}L{d['line_size']}": d["misses"]
                for d in result["results"]
            }
            check(
                {k: v["misses"] for k, v in items.items()} == by_key,
                "/results values match the job's result documents",
            )

            metrics = client.metrics()
            check(metrics["jobs"]["done"] == 2, "both jobs recorded done")
            check(
                metrics["store"]["hits"] >= n_configs,
                "store hit counters increased on the rerun",
            )
            Path(args.metrics).write_text(json.dumps(metrics, indent=2))
    finally:
        server.shutdown()
        server.server_close()
        journal.close()

    print(
        f"[service smoke] PASS (journal: {args.journal}, "
        f"metrics: {args.metrics})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
