"""Walkers: enumerate design spaces into Pareto sets (Section 5.3).

"The MemoryWalker delegates the evaluation of the instruction cache, data
cache and unified cache design spaces to the IcacheWalker, DcacheWalker
and UcacheWalker respectively.  Currently, the method
IcacheWalker::step() evaluates all design points ... and builds a set of
Pareto sets, each Pareto set parameterized by dilation intervals."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cache.area import cache_cost
from repro.cache.config import CacheConfig
from repro.cache.inclusion import satisfies_inclusion
from repro.explore.evaluators import ROLES, MemoryEvaluator
from repro.explore.pareto import ParetoPoint, ParetoSet
from repro.explore.spec import CacheDesignSpace, ProcessorDesignSpace
from repro.errors import ConfigurationError
from repro.machine.cost import processor_cost
from repro.machine.processor import VliwProcessor


class CacheWalker:
    """Exhaustively walk one cache design space for one trace role.

    ``walk`` returns one Pareto set per requested dilation (the paper's
    "Pareto set parameterized by dilation intervals"): a cache that is
    Pareto-optimal at dilation 1 may lose its spot at dilation 3, because
    dilation shifts the miss counts configuration-dependently.
    """

    def __init__(
        self,
        role: str,
        space: CacheDesignSpace,
        evaluator: MemoryEvaluator,
        miss_penalty: float = 10.0,
        batched: bool = True,
        max_workers: int | None = None,
    ):
        if role not in ROLES:
            raise ConfigurationError(
                f"unknown role {role!r}; expected one of {ROLES}"
            )
        self.role = role
        self.space = space
        self.evaluator = evaluator
        self.miss_penalty = miss_penalty
        self.batched = batched
        self.max_workers = max_workers

    def step_scalar(self, dilation: float = 1.0) -> ParetoSet[CacheConfig]:
        """Scalar reference path: one miss query per design point."""
        configs = self.space.configurations()
        self.evaluator.register(self.role, configs)
        pareto: ParetoSet[CacheConfig] = ParetoSet()
        for config in configs:
            misses = self.evaluator.misses(self.role, config, dilation)
            pareto.insert_point(
                config,
                cost=cache_cost(config),
                time=misses * self.miss_penalty,
            )
        return pareto

    def step(
        self, dilation: float = 1.0
    ) -> ParetoSet[CacheConfig]:
        """Evaluate every design point at one dilation."""
        if not self.batched:
            return self.step_scalar(dilation)
        return self.walk((dilation,))[dilation]

    def walk(
        self, dilations: tuple[float, ...] = (1.0,)
    ) -> dict[float, ParetoSet[CacheConfig]]:
        """One Pareto set per dilation (the paper's dilation intervals).

        On the batched path all dilations are answered by a single
        :meth:`MemoryEvaluator.misses_batch` grid query and each Pareto
        set is built with one skyline pass.
        """
        if not self.batched:
            return {d: self.step_scalar(d) for d in dilations}
        configs = self.space.configurations()
        costs = np.array([cache_cost(c) for c in configs])
        grid = self.evaluator.misses_batch(
            self.role, configs, dilations, max_workers=self.max_workers
        )
        return {
            d: ParetoSet.from_arrays(
                configs, costs, grid[:, j] * self.miss_penalty
            )
            for j, d in enumerate(dilations)
        }


class ProcessorWalker:
    """Walk the VLIW processor space on (cost, processor cycles).

    Processor cycles come from the caller-provided evaluation function —
    schedule lengths weighted by profile counts in practice (Section 3.2).
    """

    def __init__(
        self,
        space: ProcessorDesignSpace,
        cycles_fn: Callable[[VliwProcessor], float],
    ):
        self.space = space
        self.cycles_fn = cycles_fn

    def walk(self) -> ParetoSet[str]:
        """Evaluate every processor on (cost, cycles)."""
        pareto: ParetoSet[str] = ParetoSet()
        for processor in self.space:
            pareto.insert_point(
                processor.name,
                cost=processor_cost(processor),
                time=float(self.cycles_fn(processor)),
            )
        return pareto


@dataclass(frozen=True)
class MemoryDesign:
    """A legal L1-I / L1-D / L2-unified combination."""

    icache: CacheConfig
    dcache: CacheConfig
    unified: CacheConfig


class MemoryWalker:
    """Combine per-cache Pareto frontiers into memory-hierarchy designs.

    Only combinations drawn from the component frontiers are considered
    (any hierarchy containing a dominated component is itself dominated,
    because costs and stalls are additive), and inclusion between each L1
    and the L2 is enforced (Section 3.1).
    """

    def __init__(
        self,
        icache_walker: CacheWalker,
        dcache_walker: CacheWalker,
        ucache_walker: CacheWalker,
        l2_penalty: float = 50.0,
        batched: bool = True,
    ):
        self.icache_walker = icache_walker
        self.dcache_walker = dcache_walker
        self.ucache_walker = ucache_walker
        self.l2_penalty = l2_penalty
        self.batched = batched
        # Inclusion is a pure predicate on (L1, L2) config pairs and the
        # same pairs recur across every dilation's combine.
        self._inclusion_cache: dict[
            tuple[CacheConfig, CacheConfig], bool
        ] = {}

    def _inclusion(self, l1: CacheConfig, l2: CacheConfig) -> bool:
        key = (l1, l2)
        cached = self._inclusion_cache.get(key)
        if cached is None:
            cached = satisfies_inclusion(l1, l2)
            self._inclusion_cache[key] = cached
        return cached

    def walk(self, dilation: float = 1.0) -> ParetoSet[MemoryDesign]:
        """Combine component frontiers into hierarchy designs."""
        ic_pareto = self.icache_walker.step(dilation)
        dc_pareto = self.dcache_walker.step(1.0)  # Eq 4.1: d-independent
        uc_pareto = self.ucache_walker.step(dilation)
        return self._combine(ic_pareto, dc_pareto, uc_pareto)

    def walk_many(
        self, dilations: tuple[float, ...]
    ) -> dict[float, ParetoSet[MemoryDesign]]:
        """One hierarchy Pareto set per dilation.

        The component walks for all dilations are answered by one miss
        grid per cache role, so the evaluator's dilation model runs once
        over each whole (config x dilation) grid.
        """
        dils = tuple(dilations)
        ic_sets = self.icache_walker.walk(dils)
        dc_pareto = self.dcache_walker.step(1.0)  # Eq 4.1: d-independent
        uc_sets = self.ucache_walker.walk(dils)
        return {
            d: self._combine(ic_sets[d], dc_pareto, uc_sets[d])
            for d in dils
        }

    def _combine(
        self,
        ic_pareto: ParetoSet[CacheConfig],
        dc_pareto: ParetoSet[CacheConfig],
        uc_pareto: ParetoSet[CacheConfig],
    ) -> ParetoSet[MemoryDesign]:
        if not self.batched:
            return self._combine_scalar(ic_pareto, dc_pareto, uc_pareto)
        ics = ic_pareto.frontier()
        dcs = dc_pareto.frontier()
        ucs = uc_pareto.frontier()
        pareto: ParetoSet[MemoryDesign] = ParetoSet()
        if not (ics and dcs and ucs):
            return pareto
        # Inclusion is pairwise L1-vs-L2; two boolean matrices cover the
        # whole ic x dc x uc cross product.
        inc_iu = np.array(
            [
                [self._inclusion(ic.design, uc.design) for uc in ucs]
                for ic in ics
            ],
            dtype=bool,
        )
        inc_du = np.array(
            [
                [self._inclusion(dc.design, uc.design) for uc in ucs]
                for dc in dcs
            ],
            dtype=bool,
        )
        legal = inc_iu[:, None, :] & inc_du[None, :, :]
        ic_cost = np.array([p.cost for p in ics])
        dc_cost = np.array([p.cost for p in dcs])
        uc_cost = np.array([p.cost for p in ucs])
        ic_time = np.array([p.time for p in ics])
        dc_time = np.array([p.time for p in dcs])
        # Component times already include the L1 penalty; the unified
        # walker used the L1 penalty too, so rescale.
        uc_scaled = (
            np.array([p.time for p in ucs]) / self.ucache_walker.miss_penalty
        ) * self.l2_penalty
        cost = (
            ic_cost[:, None, None]
            + dc_cost[None, :, None]
            + uc_cost[None, None, :]
        )
        time = (
            ic_time[:, None, None]
            + dc_time[None, :, None]
            + uc_scaled[None, None, :]
        )
        # np.nonzero walks the grid in row-major (ic, dc, uc) order —
        # the same order the scalar triple loop offers candidates in.
        ii, jj, kk = np.nonzero(legal)
        # Offer compact index triples and materialize MemoryDesign only
        # for survivors; most candidates are dominated and never need a
        # design object.
        candidates = list(zip(ii.tolist(), jj.tolist(), kk.tolist()))
        pareto.insert_many(candidates, cost[legal], time[legal])
        pareto.points = [
            ParetoPoint(
                MemoryDesign(
                    ics[point.design[0]].design,
                    dcs[point.design[1]].design,
                    ucs[point.design[2]].design,
                ),
                point.cost,
                point.time,
            )
            for point in pareto.points
        ]
        return pareto

    def _combine_scalar(
        self,
        ic_pareto: ParetoSet[CacheConfig],
        dc_pareto: ParetoSet[CacheConfig],
        uc_pareto: ParetoSet[CacheConfig],
    ) -> ParetoSet[MemoryDesign]:
        pareto: ParetoSet[MemoryDesign] = ParetoSet()
        for ic in ic_pareto.frontier():
            for dc in dc_pareto.frontier():
                for uc in uc_pareto.frontier():
                    if not satisfies_inclusion(ic.design, uc.design):
                        continue
                    if not satisfies_inclusion(dc.design, uc.design):
                        continue
                    design = MemoryDesign(ic.design, dc.design, uc.design)
                    # Component times already include the L1 penalty; the
                    # unified walker used the L1 penalty too, so rescale.
                    uc_time = uc.time / self.ucache_walker.miss_penalty
                    time = ic.time + dc.time + uc_time * self.l2_penalty
                    cost = ic.cost + dc.cost + uc.cost
                    pareto.insert_point(design, cost=cost, time=time)
        return pareto
