"""Walkers: enumerate design spaces into Pareto sets (Section 5.3).

"The MemoryWalker delegates the evaluation of the instruction cache, data
cache and unified cache design spaces to the IcacheWalker, DcacheWalker
and UcacheWalker respectively.  Currently, the method
IcacheWalker::step() evaluates all design points ... and builds a set of
Pareto sets, each Pareto set parameterized by dilation intervals."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cache.area import cache_cost
from repro.cache.config import CacheConfig
from repro.cache.inclusion import satisfies_inclusion
from repro.explore.evaluators import ROLES, MemoryEvaluator
from repro.explore.pareto import ParetoSet
from repro.explore.spec import CacheDesignSpace, ProcessorDesignSpace
from repro.errors import ConfigurationError
from repro.machine.cost import processor_cost
from repro.machine.processor import VliwProcessor


class CacheWalker:
    """Exhaustively walk one cache design space for one trace role.

    ``walk`` returns one Pareto set per requested dilation (the paper's
    "Pareto set parameterized by dilation intervals"): a cache that is
    Pareto-optimal at dilation 1 may lose its spot at dilation 3, because
    dilation shifts the miss counts configuration-dependently.
    """

    def __init__(
        self,
        role: str,
        space: CacheDesignSpace,
        evaluator: MemoryEvaluator,
        miss_penalty: float = 10.0,
    ):
        if role not in ROLES:
            raise ConfigurationError(
                f"unknown role {role!r}; expected one of {ROLES}"
            )
        self.role = role
        self.space = space
        self.evaluator = evaluator
        self.miss_penalty = miss_penalty

    def step(
        self, dilation: float = 1.0
    ) -> ParetoSet[CacheConfig]:
        """Evaluate every design point at one dilation."""
        configs = self.space.configurations()
        self.evaluator.register(self.role, configs)
        pareto: ParetoSet[CacheConfig] = ParetoSet()
        for config in configs:
            misses = self.evaluator.misses(self.role, config, dilation)
            pareto.insert_point(
                config,
                cost=cache_cost(config),
                time=misses * self.miss_penalty,
            )
        return pareto

    def walk(
        self, dilations: tuple[float, ...] = (1.0,)
    ) -> dict[float, ParetoSet[CacheConfig]]:
        """One Pareto set per dilation (the paper's dilation intervals)."""
        return {d: self.step(d) for d in dilations}


class ProcessorWalker:
    """Walk the VLIW processor space on (cost, processor cycles).

    Processor cycles come from the caller-provided evaluation function —
    schedule lengths weighted by profile counts in practice (Section 3.2).
    """

    def __init__(
        self,
        space: ProcessorDesignSpace,
        cycles_fn: Callable[[VliwProcessor], float],
    ):
        self.space = space
        self.cycles_fn = cycles_fn

    def walk(self) -> ParetoSet[str]:
        """Evaluate every processor on (cost, cycles)."""
        pareto: ParetoSet[str] = ParetoSet()
        for processor in self.space:
            pareto.insert_point(
                processor.name,
                cost=processor_cost(processor),
                time=float(self.cycles_fn(processor)),
            )
        return pareto


@dataclass(frozen=True)
class MemoryDesign:
    """A legal L1-I / L1-D / L2-unified combination."""

    icache: CacheConfig
    dcache: CacheConfig
    unified: CacheConfig


class MemoryWalker:
    """Combine per-cache Pareto frontiers into memory-hierarchy designs.

    Only combinations drawn from the component frontiers are considered
    (any hierarchy containing a dominated component is itself dominated,
    because costs and stalls are additive), and inclusion between each L1
    and the L2 is enforced (Section 3.1).
    """

    def __init__(
        self,
        icache_walker: CacheWalker,
        dcache_walker: CacheWalker,
        ucache_walker: CacheWalker,
        l2_penalty: float = 50.0,
    ):
        self.icache_walker = icache_walker
        self.dcache_walker = dcache_walker
        self.ucache_walker = ucache_walker
        self.l2_penalty = l2_penalty

    def walk(self, dilation: float = 1.0) -> ParetoSet[MemoryDesign]:
        """Combine component frontiers into hierarchy designs."""
        ic_pareto = self.icache_walker.step(dilation)
        dc_pareto = self.dcache_walker.step(1.0)  # Eq 4.1: d-independent
        uc_pareto = self.ucache_walker.step(dilation)
        pareto: ParetoSet[MemoryDesign] = ParetoSet()
        for ic in ic_pareto.frontier():
            for dc in dc_pareto.frontier():
                for uc in uc_pareto.frontier():
                    if not satisfies_inclusion(ic.design, uc.design):
                        continue
                    if not satisfies_inclusion(dc.design, uc.design):
                        continue
                    design = MemoryDesign(ic.design, dc.design, uc.design)
                    # Component times already include the L1 penalty; the
                    # unified walker used the L1 penalty too, so rescale.
                    uc_time = uc.time / self.ucache_walker.miss_penalty
                    time = ic.time + dc.time + uc_time * self.l2_penalty
                    cost = ic.cost + dc.cost + uc.cost
                    pareto.insert_point(design, cost=cost, time=time)
        return pareto
