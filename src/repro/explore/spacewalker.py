"""The top-level spacewalker (Figure 2 / Section 5).

Drives the whole flow: for every processor in the design space, obtain its
cycles, cost and text dilation from the provider (synthesis + compilation
+ linking under the hood), combine with memory-hierarchy Pareto designs
evaluated at that dilation, and accumulate a system-level Pareto set of
cost/performance-optimal designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.explore.pareto import ParetoSet
from repro.explore.spec import SystemDesignSpace
from repro.explore.walkers import CacheWalker, MemoryDesign, MemoryWalker
from repro.explore.evaluators import MemoryEvaluator
from repro.machine.cost import processor_cost
from repro.machine.processor import VliwProcessor
from repro.runtime.executor import ExecutorPolicy
from repro.runtime.journal import RunJournal


class DesignProvider(Protocol):
    """What the spacewalker needs from the synthesis/compilation stack."""

    def processor_cycles(self, processor: VliwProcessor) -> int:
        """Execution cycles of the application on the processor alone."""
        ...

    def dilation(self, processor: VliwProcessor) -> float:
        """Text dilation of the processor w.r.t. the reference."""
        ...

    def memory_evaluator(self) -> MemoryEvaluator:
        """The reference-trace miss oracle."""
        ...


@dataclass(frozen=True)
class SystemDesign:
    """One complete system: processor plus memory hierarchy."""

    processor: str
    memory: MemoryDesign


class Spacewalker:
    """Exhaustive system-level walk producing a Pareto set of systems."""

    def __init__(
        self,
        space: SystemDesignSpace,
        provider: DesignProvider,
        l1_penalty: float = 10.0,
        l2_penalty: float = 50.0,
        batched: bool = True,
        max_workers: int | None = None,
        policy: ExecutorPolicy | None = None,
        journal: RunJournal | None = None,
    ):
        self.space = space
        self.provider = provider
        self.l1_penalty = l1_penalty
        self.l2_penalty = l2_penalty
        self.batched = batched
        self.max_workers = max_workers
        #: Fault-tolerance knobs for parallel priming (see repro.runtime).
        self.policy = policy
        self.journal = journal

    def _memory_walker(self, evaluator: MemoryEvaluator) -> MemoryWalker:
        return MemoryWalker(
            CacheWalker(
                "icache", self.space.icache, evaluator, self.l1_penalty,
                batched=self.batched, max_workers=self.max_workers,
            ),
            CacheWalker(
                "dcache", self.space.dcache, evaluator, self.l1_penalty,
                batched=self.batched, max_workers=self.max_workers,
            ),
            CacheWalker(
                "unified", self.space.unified, evaluator, self.l1_penalty,
                batched=self.batched, max_workers=self.max_workers,
            ),
            l2_penalty=self.l2_penalty,
            batched=self.batched,
        )

    def walk(self) -> ParetoSet[SystemDesign]:
        """Evaluate every processor x memory-frontier combination."""
        if not self.batched:
            return self._walk_scalar()
        evaluator = self.provider.memory_evaluator()
        memory_walker = self._memory_walker(evaluator)
        processors = list(self.space.processors)
        cycles = [self.provider.processor_cycles(p) for p in processors]
        proc_costs = [processor_cost(p) for p in processors]
        # Processors with equal (rounded) dilation share one memory walk
        # (the paper's dilation intervals).
        dilations = [
            round(self.provider.dilation(p), 2) for p in processors
        ]
        unique_dils = tuple(dict.fromkeys(dilations))
        # Register every needed simulation before walking, so one prime()
        # can run all pending passes (in parallel when max_workers > 1).
        evaluator.register_grid(
            "icache", self.space.icache.configurations(), unique_dils
        )
        evaluator.register_grid(
            "dcache", self.space.dcache.configurations(), (1.0,)
        )
        evaluator.register_grid(
            "unified", self.space.unified.configurations(), unique_dils
        )
        evaluator.prime(
            max_workers=self.max_workers,
            policy=self.policy,
            journal=self.journal,
        )
        memory_cache = memory_walker.walk_many(unique_dils)
        pareto: ParetoSet[SystemDesign] = ParetoSet()
        for processor, n_cycles, proc_cost, dilation in zip(
            processors, cycles, proc_costs, dilations
        ):
            frontier = memory_cache[dilation].frontier()
            if not frontier:
                continue
            designs = [
                SystemDesign(processor=processor.name, memory=p.design)
                for p in frontier
            ]
            pareto.insert_many(
                designs,
                proc_cost + np.array([p.cost for p in frontier]),
                n_cycles + np.array([p.time for p in frontier]),
            )
        return pareto

    def _walk_scalar(self) -> ParetoSet[SystemDesign]:
        """Scalar reference path: per-point queries and insertions."""
        evaluator = self.provider.memory_evaluator()
        memory_walker = self._memory_walker(evaluator)
        pareto: ParetoSet[SystemDesign] = ParetoSet()
        # Memory Pareto sets are cached per dilation: processors with equal
        # dilation share one memory walk (the paper's dilation intervals).
        memory_cache: dict[float, ParetoSet[MemoryDesign]] = {}
        for processor in self.space.processors:
            cycles = self.provider.processor_cycles(processor)
            proc_cost = processor_cost(processor)
            dilation = round(self.provider.dilation(processor), 2)
            if dilation not in memory_cache:
                memory_cache[dilation] = memory_walker.walk(dilation)
            for memory_point in memory_cache[dilation].frontier():
                design = SystemDesign(
                    processor=processor.name, memory=memory_point.design
                )
                pareto.insert_point(
                    design,
                    cost=proc_cost + memory_point.cost,
                    time=cycles + memory_point.time,
                )
        return pareto
