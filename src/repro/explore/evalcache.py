"""Persistent evaluation cache (Section 5.1's EvaluationCache layer).

"The EvaluationCache first looks in a persistent disk-based database if a
particular metric for a design is available.  Otherwise, it invokes the
Evaluators layer..."  Implemented as a JSON file of string-keyed metric
values, written atomically; in-memory use (``path=None``) is supported for
tests and throwaway explorations.

Concurrent writers are safe: flushes take an advisory file lock (a
``<name>.lock`` sibling) and merge the on-disk contents into the
in-memory map before the atomic replace, so two processes flushing the
same path union their entries instead of last-write-wins clobbering.
The cache has no delete operation, so a union is always the correct
reconciliation.

For a *database*-grade backend (sqlite, per-key upserts, cross-process
read-through), see :mod:`repro.service.store`, whose
``StoreEvaluationCache`` adapter speaks this same API.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Mapping

from repro.errors import EvaluationCacheError

try:  # pragma: no cover - fcntl is present on every POSIX platform
    import fcntl
except ImportError:  # pragma: no cover - windows: best-effort, no lock
    fcntl = None  # type: ignore[assignment]

#: JSON-representable metric values.
Metric = float | int | list | dict | str


class EvaluationCache:
    """String-keyed persistent metric store with get-or-compute semantics."""

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = Path(path) if path is not None else None
        self._data: dict[str, Metric] = {}
        self.hits = 0
        self.misses = 0
        self._deferring = False
        self._dirty = False
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            text = self.path.read_text()
            self._data = json.loads(text) if text.strip() else {}
        except (OSError, json.JSONDecodeError) as exc:
            raise EvaluationCacheError(
                f"evaluation cache {self.path} is unreadable: {exc}"
            ) from exc
        if not isinstance(self._data, dict):
            raise EvaluationCacheError(
                f"evaluation cache {self.path} is not a JSON object"
            )

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory cross-process lock scoped to this cache path.

        Taken around the read-merge-replace of a flush so concurrent
        writers serialize; a persistent ``<name>.lock`` sibling is the
        lock target (locking the data file itself would be lost on the
        atomic replace).  Platforms without ``fcntl`` degrade to the old
        unlocked behaviour.
        """
        if fcntl is None or self.path is None:
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        try:
            handle = open(lock_path, "a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            handle.close()  # closing drops the flock

    def _merge_from_disk(self) -> None:
        """Union the current on-disk entries under ours (ours win).

        Called with the lock held, immediately before a flush rewrites
        the file: entries another process flushed since our last load
        survive instead of being clobbered.
        """
        try:
            text = self.path.read_text()
            on_disk = json.loads(text) if text.strip() else {}
        except (OSError, json.JSONDecodeError):
            return  # nothing mergeable; our data stands alone
        if isinstance(on_disk, dict) and on_disk:
            self._data = {**on_disk, **self._data}

    def _reap_stale_tmps(self) -> None:
        """Remove orphaned ``<name>*.tmp`` siblings of the cache path.

        A flush interrupted between ``mkstemp`` and the atomic replace
        (power loss, SIGKILL) leaves its temp file behind.  Temp files
        only ever exist while their writer holds the lock, so reaping
        under the lock can never race a live flush.
        """
        try:
            for stale in self.path.parent.glob(f"{self.path.name}*.tmp"):
                try:
                    stale.unlink()
                except OSError:
                    pass
        except OSError:
            pass

    def _flush(self) -> None:
        if self.path is None:
            return
        if self._deferring:
            self._dirty = True
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._locked():
            if self.path.exists():
                self._merge_from_disk()
            self._reap_stale_tmps()
            fd, tmp = tempfile.mkstemp(
                dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(self._data, handle)
                os.replace(tmp, self.path)
            except (OSError, TypeError, ValueError) as exc:
                raise EvaluationCacheError(
                    f"cannot write evaluation cache {self.path}: {exc}"
                ) from exc
            finally:
                if os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:  # pragma: no cover - best-effort reap
                        pass

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> Metric | None:
        """The stored metric, or None when absent.

        Hit/miss accounting matches :meth:`__contains__`: a key that is
        present counts as a hit even if its stored value is ``None``
        (JSON ``null``), and an absent key counts as a miss.
        """
        if key in self._data:
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: str, value: Metric) -> None:
        """Store a metric and flush to disk (when persistent)."""
        self._data[key] = value
        self._flush()

    def put_many(self, items: Mapping[str, Metric]) -> None:
        """Store a batch of metrics with a single flush.

        Per-:meth:`put` flushing rewrites the whole JSON file each call
        — O(n^2) when a parallel sweep lands hundreds of results at
        once.  Batching is one rewrite.
        """
        self._data.update(items)
        if items:
            self._flush()

    @contextmanager
    def bulk(self) -> Iterator["EvaluationCache"]:
        """Defer disk flushes inside the block; flush once on exit.

        Use around loops of :meth:`put`/:meth:`get_or_compute` (e.g.
        when merging a parallel sweep's results) so the store is written
        once instead of once per metric.
        """
        if self._deferring:  # already inside a bulk block: no-op nesting
            yield self
            return
        self._deferring = True
        try:
            yield self
        finally:
            self._deferring = False
            if self._dirty:
                self._dirty = False
                self._flush()

    def get_or_compute(self, key: str, compute: Callable[[], Metric]) -> Metric:
        """The canonical access pattern: lookup, else evaluate and store."""
        if key in self._data:
            self.hits += 1
            return self._data[key]
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, Metric]:
        """Hit/miss accounting snapshot (journal-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._data),
        }

    def __len__(self) -> int:
        return len(self._data)
