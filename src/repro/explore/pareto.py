"""Pareto-set accumulation (Section 5.1's Pareto layer).

"A Pareto set consists of designs that are superior in performance to all
other designs with the same or lower cost.  ...  The Pareto module inserts
a design point into the cumulative Pareto set only if its performance is
superior to all other existing Pareto [points] with same or lower cost.
The Pareto module also removes designs that are inferior to the current
design."

Cost and execution time are both lower-is-better here (the paper plots
performance; we track cycles, so smaller dominates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, Iterable, Sequence, TypeVar

import numpy as np

DesignT = TypeVar("DesignT", bound=Hashable)


@dataclass(frozen=True)
class ParetoPoint(Generic[DesignT]):
    """One design with its cost and execution-time evaluation."""

    design: DesignT
    cost: float
    time: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if self is at least as good on both axes and better on one."""
        if self.cost > other.cost or self.time > other.time:
            return False
        return self.cost < other.cost or self.time < other.time


@dataclass
class ParetoSet(Generic[DesignT]):
    """An accumulating set of non-dominated points."""

    points: list[ParetoPoint[DesignT]] = field(default_factory=list)
    inserted: int = 0
    rejected: int = 0

    def insert_point(self, design: DesignT, cost: float, time: float) -> bool:
        """Offer a design; returns True if it joined the Pareto set.

        Dominated candidates are rejected; accepted candidates evict any
        existing points they dominate.  A candidate exactly equal to an
        existing point on both axes is rejected (the first design at a
        (cost, time) coordinate wins, keeping the set minimal).
        """
        candidate = ParetoPoint(design, cost, time)
        for point in self.points:
            if point.dominates(candidate) or (
                point.cost == cost and point.time == time
            ):
                self.rejected += 1
                return False
        self.points = [p for p in self.points if not candidate.dominates(p)]
        self.points.append(candidate)
        self.inserted += 1
        return True

    def insert_many(
        self,
        designs: Sequence[DesignT],
        costs,
        times,
    ) -> int:
        """Bulk-offer designs; returns how many joined the Pareto set.

        Produces exactly the point set a sequence of :meth:`insert_point`
        calls (in ``designs`` order) would produce, but in one
        O(n log n) skyline pass: sort all points by (cost, time) with a
        stable sort — so the earliest-offered point wins exact
        (cost, time) ties, matching the first-design-wins rule — and keep
        a point iff its time is strictly below the running minimum.
        Existing members are sorted ahead of the candidates, preserving
        their tie priority.
        """
        designs = list(designs)
        costs = np.asarray(costs, dtype=np.float64).reshape(-1)
        times = np.asarray(times, dtype=np.float64).reshape(-1)
        if not len(designs) == costs.size == times.size:
            raise ValueError(
                "designs, costs and times must have matching lengths "
                f"({len(designs)}, {costs.size}, {times.size})"
            )
        if not designs:
            return 0
        n_existing = len(self.points)
        all_designs = [p.design for p in self.points] + designs
        all_costs = np.concatenate(
            [np.array([p.cost for p in self.points]), costs]
        )
        all_times = np.concatenate(
            [np.array([p.time for p in self.points]), times]
        )
        # Stable: equal (cost, time) keeps original (insertion) order.
        order = np.lexsort((all_times, all_costs))
        t_sorted = all_times[order]
        keep = np.empty(order.size, dtype=bool)
        keep[0] = True
        keep[1:] = t_sorted[1:] < np.minimum.accumulate(t_sorted)[:-1]
        survivors = np.sort(order[keep])
        added = int(np.count_nonzero(survivors >= n_existing))
        self.points = [
            ParetoPoint(all_designs[i], float(all_costs[i]), float(all_times[i]))
            for i in survivors
        ]
        self.inserted += added
        self.rejected += len(designs) - added
        return added

    @classmethod
    def from_arrays(
        cls,
        designs: Iterable[DesignT],
        costs,
        times,
    ) -> "ParetoSet[DesignT]":
        """Build a Pareto set from parallel design/cost/time arrays."""
        pareto: ParetoSet[DesignT] = cls()
        pareto.insert_many(list(designs), costs, times)
        return pareto

    def frontier(self) -> list[ParetoPoint[DesignT]]:
        """Points sorted by ascending cost (descending time follows)."""
        return sorted(self.points, key=lambda p: (p.cost, p.time))

    def best_time(self) -> ParetoPoint[DesignT]:
        """The fastest retained design (ties broken by cost)."""
        if not self.points:
            raise ValueError("empty Pareto set")
        return min(self.points, key=lambda p: (p.time, p.cost))

    def cheapest(self) -> ParetoPoint[DesignT]:
        """The lowest-cost retained design (ties broken by time)."""
        if not self.points:
            raise ValueError("empty Pareto set")
        return min(self.points, key=lambda p: (p.cost, p.time))

    def __len__(self) -> int:
        return len(self.points)

    def is_consistent(self) -> bool:
        """No point dominates another (invariant check for tests).

        Linear scan over the (cost, time)-sorted points: a point is
        dominated iff an earlier-sorted point has strictly lower time, or
        equal time at strictly lower cost.  Equivalent to the O(n^2)
        pairwise check (which the test suite cross-checks on small sets).
        """
        ordered = sorted(self.points, key=lambda p: (p.cost, p.time))
        run_min = float("inf")
        run_min_cost = float("inf")
        for point in ordered:
            if run_min < point.time:
                return False
            if run_min == point.time and run_min_cost < point.cost:
                return False
            if point.time < run_min:
                run_min = point.time
                run_min_cost = point.cost
        return True
