"""Pareto-set accumulation (Section 5.1's Pareto layer).

"A Pareto set consists of designs that are superior in performance to all
other designs with the same or lower cost.  ...  The Pareto module inserts
a design point into the cumulative Pareto set only if its performance is
superior to all other existing Pareto [points] with same or lower cost.
The Pareto module also removes designs that are inferior to the current
design."

Cost and execution time are both lower-is-better here (the paper plots
performance; we track cycles, so smaller dominates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, TypeVar

DesignT = TypeVar("DesignT", bound=Hashable)


@dataclass(frozen=True)
class ParetoPoint(Generic[DesignT]):
    """One design with its cost and execution-time evaluation."""

    design: DesignT
    cost: float
    time: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if self is at least as good on both axes and better on one."""
        if self.cost > other.cost or self.time > other.time:
            return False
        return self.cost < other.cost or self.time < other.time


@dataclass
class ParetoSet(Generic[DesignT]):
    """An accumulating set of non-dominated points."""

    points: list[ParetoPoint[DesignT]] = field(default_factory=list)
    inserted: int = 0
    rejected: int = 0

    def insert_point(self, design: DesignT, cost: float, time: float) -> bool:
        """Offer a design; returns True if it joined the Pareto set.

        Dominated candidates are rejected; accepted candidates evict any
        existing points they dominate.  A candidate exactly equal to an
        existing point on both axes is rejected (the first design at a
        (cost, time) coordinate wins, keeping the set minimal).
        """
        candidate = ParetoPoint(design, cost, time)
        for point in self.points:
            if point.dominates(candidate) or (
                point.cost == cost and point.time == time
            ):
                self.rejected += 1
                return False
        self.points = [p for p in self.points if not candidate.dominates(p)]
        self.points.append(candidate)
        self.inserted += 1
        return True

    def frontier(self) -> list[ParetoPoint[DesignT]]:
        """Points sorted by ascending cost (descending time follows)."""
        return sorted(self.points, key=lambda p: (p.cost, p.time))

    def best_time(self) -> ParetoPoint[DesignT]:
        """The fastest retained design (ties broken by cost)."""
        if not self.points:
            raise ValueError("empty Pareto set")
        return min(self.points, key=lambda p: (p.time, p.cost))

    def cheapest(self) -> ParetoPoint[DesignT]:
        """The lowest-cost retained design (ties broken by time)."""
        if not self.points:
            raise ValueError("empty Pareto set")
        return min(self.points, key=lambda p: (p.cost, p.time))

    def __len__(self) -> int:
        return len(self.points)

    def is_consistent(self) -> bool:
        """No point dominates another (invariant check for tests)."""
        for a in self.points:
            for b in self.points:
                if a is not b and a.dominates(b):
                    return False
        return True
