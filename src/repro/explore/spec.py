"""Design-space specifications (the FrontEndGUI input of Section 5.1).

"A design space specification consists of a set of parameters and a range
of values that each parameter can take."  Cache spaces enumerate feasible
C(S, A, L) configurations from size/associativity/line-size/port ranges;
processor spaces enumerate unit-count combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError
from repro.machine.processor import VliwProcessor, make_processor


@dataclass(frozen=True)
class CacheDesignSpace:
    """Cartesian cache design space, filtered to feasible geometries."""

    sizes_kb: tuple[float, ...]
    assocs: tuple[int, ...]
    line_sizes: tuple[int, ...]
    ports: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not (self.sizes_kb and self.assocs and self.line_sizes and self.ports):
            raise ConfigurationError("design space dimensions must be non-empty")

    def configurations(self) -> list[CacheConfig]:
        """All feasible configurations, sorted by (line, size, assoc)."""
        out: list[CacheConfig] = []
        for size_kb in self.sizes_kb:
            size = int(size_kb * 1024)
            for assoc in self.assocs:
                for line in self.line_sizes:
                    if size % (assoc * line):
                        continue
                    sets = size // (assoc * line)
                    if sets < 1 or sets & (sets - 1):
                        continue
                    for ports in self.ports:
                        out.append(CacheConfig(sets, assoc, line, ports))
        if not out:
            raise ConfigurationError(
                "cache design space is empty after feasibility filtering"
            )
        return sorted(out, key=lambda c: (c.line_size, c.size_bytes, c.assoc))

    def line_size_groups(self) -> dict[int, list[CacheConfig]]:
        """Configurations grouped by line size (one Cheetah pass each)."""
        groups: dict[int, list[CacheConfig]] = {}
        for config in self.configurations():
            groups.setdefault(config.line_size, []).append(config)
        return groups

    def __len__(self) -> int:
        return len(self.configurations())


@dataclass(frozen=True)
class ProcessorDesignSpace:
    """VLIW processor design space: per-class unit-count choices."""

    int_units: tuple[int, ...] = (1, 2, 4)
    float_units: tuple[int, ...] = (1, 2)
    memory_units: tuple[int, ...] = (1, 2)
    branch_units: tuple[int, ...] = (1,)
    has_predication: bool = False
    has_speculation: bool = True

    def processors(self) -> list[VliwProcessor]:
        """Every processor in the Cartesian unit-count space."""
        out: list[VliwProcessor] = []
        for ni in self.int_units:
            for nf in self.float_units:
                for nm in self.memory_units:
                    for nb in self.branch_units:
                        out.append(
                            make_processor(
                                ni,
                                nf,
                                nm,
                                nb,
                                has_predication=self.has_predication,
                                has_speculation=self.has_speculation,
                            )
                        )
        return out

    def __iter__(self) -> Iterator[VliwProcessor]:
        return iter(self.processors())

    def __len__(self) -> int:
        return len(self.processors())


@dataclass(frozen=True)
class SystemDesignSpace:
    """The full cross-product space of Figure 1."""

    processors: ProcessorDesignSpace = field(default_factory=ProcessorDesignSpace)
    icache: CacheDesignSpace = field(
        default_factory=lambda: CacheDesignSpace(
            sizes_kb=(1, 2, 4, 8, 16), assocs=(1, 2), line_sizes=(16, 32)
        )
    )
    dcache: CacheDesignSpace = field(
        default_factory=lambda: CacheDesignSpace(
            sizes_kb=(1, 2, 4, 8, 16), assocs=(1, 2), line_sizes=(16, 32)
        )
    )
    unified: CacheDesignSpace = field(
        default_factory=lambda: CacheDesignSpace(
            sizes_kb=(16, 32, 64, 128), assocs=(2, 4), line_sizes=(64,)
        )
    )

    def total_designs(self) -> int:
        """Size of the raw cross product (the paper's 40 x 20^3 scale)."""
        return (
            len(self.processors)
            * len(self.icache)
            * len(self.dcache)
            * len(self.unified)
        )
