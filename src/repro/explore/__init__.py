"""Design-space exploration (Section 5's spacewalker software stack).

Layers mirror Figure 4: design-space specifications feed *walkers*, which
insert candidate designs into *Pareto sets*; evaluations go through a
persistent *evaluation cache* backed by *evaluators* that either compute
metrics internally (cache area, dilation-model misses) or run simulations.
"""

from repro.explore.evalcache import EvaluationCache
from repro.explore.evaluators import (
    EvaluationCosts,
    MemoryEvaluator,
    exhaustive_evaluation_hours,
    hierarchical_evaluation_hours,
)
from repro.explore.heuristics import GreedyProcessorWalker, GuidedCacheWalker
from repro.explore.pareto import ParetoPoint, ParetoSet
from repro.explore.spec import (
    CacheDesignSpace,
    ProcessorDesignSpace,
    SystemDesignSpace,
)
from repro.explore.spacewalker import Spacewalker, SystemDesign
from repro.explore.walkers import (
    CacheWalker,
    MemoryDesign,
    MemoryWalker,
    ProcessorWalker,
)

__all__ = [
    "CacheDesignSpace",
    "ProcessorDesignSpace",
    "SystemDesignSpace",
    "ParetoPoint",
    "ParetoSet",
    "EvaluationCache",
    "MemoryEvaluator",
    "EvaluationCosts",
    "exhaustive_evaluation_hours",
    "hierarchical_evaluation_hours",
    "CacheWalker",
    "MemoryDesign",
    "MemoryWalker",
    "ProcessorWalker",
    "GreedyProcessorWalker",
    "GuidedCacheWalker",
    "Spacewalker",
    "SystemDesign",
]
