"""Heuristic walkers (Section 5.1).

"The Walkers module supports many heuristics for exploring the design
space.  An exhaustive design space exploration evaluates all designs that
meet the design space specification. ... A heuristic only evaluates
designs that are likely to be superior than the ones that have already
been explored."

Two heuristics are provided:

* :class:`GreedyProcessorWalker` — neighbourhood ascent over the
  processor space: starting from the narrowest machine, repeatedly grow
  one function-unit class at a time, following moves that improve cycles
  per unit cost; far fewer compilations than the exhaustive walk.
* :class:`GuidedCacheWalker` — walks each (associativity, line size)
  family in increasing capacity and stops growing a family once the miss
  reduction per added cost falls below a threshold (capacity misses are
  monotone, so further growth is predictably unprofitable).
"""

from __future__ import annotations

from typing import Callable

from repro.cache.area import cache_cost
from repro.explore.evaluators import MemoryEvaluator
from repro.explore.pareto import ParetoSet
from repro.explore.spec import CacheDesignSpace, ProcessorDesignSpace
from repro.machine.cost import processor_cost
from repro.machine.processor import VliwProcessor, make_processor


class GreedyProcessorWalker:
    """Neighbourhood-ascent exploration of the processor space."""

    def __init__(
        self,
        space: ProcessorDesignSpace,
        cycles_fn: Callable[[VliwProcessor], float],
    ):
        self.space = space
        self.cycles_fn = cycles_fn
        self.evaluated: dict[str, tuple[VliwProcessor, float, float]] = {}

    def _evaluate(self, processor: VliwProcessor) -> tuple[float, float]:
        entry = self.evaluated.get(processor.name)
        if entry is None:
            cost = processor_cost(processor)
            cycles = float(self.cycles_fn(processor))
            self.evaluated[processor.name] = (processor, cost, cycles)
            return cost, cycles
        return entry[1], entry[2]

    def _neighbours(self, processor: VliwProcessor) -> list[VliwProcessor]:
        """Legal +1-unit moves that stay inside the design space."""
        allowed = {
            "int": set(self.space.int_units),
            "float": set(self.space.float_units),
            "memory": set(self.space.memory_units),
            "branch": set(self.space.branch_units),
        }
        from repro.isa.operations import OP_CLASSES

        counts = [processor.units[cls] for cls in OP_CLASSES]
        out = []
        for index, key in enumerate(("int", "float", "memory", "branch")):
            bigger = sorted(v for v in allowed[key] if v > counts[index])
            if not bigger:
                continue
            grown = list(counts)
            grown[index] = bigger[0]
            out.append(
                make_processor(
                    *grown,
                    has_predication=self.space.has_predication,
                    has_speculation=self.space.has_speculation,
                )
            )
        return out

    def walk(self) -> ParetoSet[str]:
        """Explore greedily; returns the Pareto set over evaluated designs."""
        start = make_processor(
            min(self.space.int_units),
            min(self.space.float_units),
            min(self.space.memory_units),
            min(self.space.branch_units),
            has_predication=self.space.has_predication,
            has_speculation=self.space.has_speculation,
        )
        pareto: ParetoSet[str] = ParetoSet()
        frontier = [start]
        seen: set[str] = set()
        while frontier:
            current = frontier.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            cost, cycles = self._evaluate(current)
            pareto.insert_point(current.name, cost=cost, time=cycles)
            for neighbour in self._neighbours(current):
                if neighbour.name in seen:
                    continue
                n_cost, n_cycles = self._evaluate(neighbour)
                # Follow only profitable moves: cycles must improve.
                if n_cycles < cycles:
                    pareto.insert_point(
                        neighbour.name, cost=n_cost, time=n_cycles
                    )
                    frontier.append(neighbour)
        return pareto


class GuidedCacheWalker:
    """Capacity-pruned cache walk for one trace role.

    Within each (associativity, line size) family, capacity grows until
    the marginal miss reduction per unit of added cost drops below
    ``min_gain`` — further sizes are predictably dominated and skipped.
    """

    def __init__(
        self,
        role: str,
        space: CacheDesignSpace,
        evaluator: MemoryEvaluator,
        miss_penalty: float = 10.0,
        min_gain: float = 0.0,
    ):
        self.role = role
        self.space = space
        self.evaluator = evaluator
        self.miss_penalty = miss_penalty
        self.min_gain = min_gain
        self.evaluated = 0

    def step(self, dilation: float = 1.0) -> ParetoSet:
        """Walk each capacity family with early pruning at one dilation."""
        families: dict[tuple[int, int], list] = {}
        for config in self.space.configurations():
            families.setdefault(
                (config.assoc, config.line_size), []
            ).append(config)
        pareto: ParetoSet = ParetoSet()
        for family in families.values():
            family.sort(key=lambda c: c.size_bytes)
            prev_time: float | None = None
            prev_cost: float | None = None
            for config in family:
                misses = self.evaluator.misses(self.role, config, dilation)
                self.evaluated += 1
                time = misses * self.miss_penalty
                cost = cache_cost(config)
                pareto.insert_point(config, cost=cost, time=time)
                if prev_time is not None and prev_cost is not None:
                    gain = (prev_time - time) / max(cost - prev_cost, 1e-9)
                    if gain <= self.min_gain:
                        break  # capacity no longer buys stall cycles
                prev_time, prev_cost = time, cost
        return pareto
