"""Operations: the atoms scheduled onto VLIW function units.

The paper's design space has four function-unit types (integer, float,
memory, branch); a processor named ``3221`` has three integer units, two
float units, two memory units and one branch unit.  Every operation in a
program belongs to exactly one :class:`OpClass` and executes on one unit of
the matching type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpClass(enum.Enum):
    """Function-unit class an operation executes on."""

    INT = "int"
    FLOAT = "float"
    MEMORY = "memory"
    BRANCH = "branch"

    @property
    def short(self) -> str:
        """One-letter mnemonic used in dumps (``I``, ``F``, ``M``, ``B``)."""
        return self.value[0].upper()


#: Canonical ordering of classes, matching the digit order in processor
#: names such as ``3221`` (int, float, memory, branch).
OP_CLASSES: tuple[OpClass, ...] = (
    OpClass.INT,
    OpClass.FLOAT,
    OpClass.MEMORY,
    OpClass.BRANCH,
)


@dataclass(frozen=True)
class Operation:
    """A single scheduled operation.

    Parameters
    ----------
    opclass:
        Function-unit class the operation requires.
    dests:
        Virtual register numbers written (0 or 1 for our IR).
    srcs:
        Virtual register numbers read.
    is_load / is_store:
        Memory direction; only meaningful for ``OpClass.MEMORY``.
    stream:
        For memory operations, index of the data stream (see
        :mod:`repro.trace.datamodel`) this operation draws addresses from.
    speculative:
        Marked by the speculation model; speculative loads contribute extra
        data references on processors that support speculation.
    """

    opclass: OpClass
    dests: tuple[int, ...] = field(default=())
    srcs: tuple[int, ...] = field(default=())
    is_load: bool = False
    is_store: bool = False
    stream: int = 0
    speculative: bool = False

    def __post_init__(self) -> None:
        if (self.is_load or self.is_store) and self.opclass is not OpClass.MEMORY:
            raise ValueError("load/store flags require OpClass.MEMORY")
        if self.is_load and self.is_store:
            raise ValueError("an operation cannot be both load and store")

    @property
    def is_memory(self) -> bool:
        return self.opclass is OpClass.MEMORY

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    def mnemonic(self) -> str:
        """Human-readable mnemonic, e.g. ``LD``, ``ST``, ``ADD``."""
        if self.is_load:
            return "LD"
        if self.is_store:
            return "ST"
        return {
            OpClass.INT: "ADD",
            OpClass.FLOAT: "FADD",
            OpClass.MEMORY: "MEM",
            OpClass.BRANCH: "BR",
        }[self.opclass]


def make_int(dest: int, srcs: tuple[int, ...] = ()) -> Operation:
    """Convenience constructor for an integer ALU operation."""
    return Operation(OpClass.INT, dests=(dest,), srcs=srcs)


def make_float(dest: int, srcs: tuple[int, ...] = ()) -> Operation:
    """Convenience constructor for a floating-point operation."""
    return Operation(OpClass.FLOAT, dests=(dest,), srcs=srcs)


def make_load(dest: int, addr_src: int = 0, stream: int = 0) -> Operation:
    """Convenience constructor for a load."""
    return Operation(
        OpClass.MEMORY, dests=(dest,), srcs=(addr_src,), is_load=True, stream=stream
    )


def make_store(value_src: int, addr_src: int = 0, stream: int = 0) -> Operation:
    """Convenience constructor for a store."""
    return Operation(
        OpClass.MEMORY, srcs=(value_src, addr_src), is_store=True, stream=stream
    )


def make_branch(srcs: tuple[int, ...] = ()) -> Operation:
    """Convenience constructor for a branch."""
    return Operation(OpClass.BRANCH, srcs=srcs)
