"""Structural validation of programs.

The emulator and compiler assume a handful of invariants; violating them
produces confusing downstream failures, so the workload generator and the
test suite validate programs eagerly.
"""

from __future__ import annotations

import math

from repro.errors import ProgramStructureError
from repro.isa.program import Procedure, Program

#: Tolerance for branch-probability sums.
_PROB_TOL = 1e-9


def validate_procedure(proc: Procedure, program: Program | None = None) -> None:
    """Validate a single procedure; raise :class:`ProgramStructureError`.

    Checks:

    * at least one block, unique block ids;
    * every edge endpoint names an existing block;
    * outgoing-edge probabilities of each block sum to 1;
    * edge probabilities lie in (0, 1];
    * at least one return block (no outgoing edges) is reachable;
    * every call site names a procedure of ``program`` (when given).
    """
    if not proc.blocks:
        raise ProgramStructureError(f"procedure {proc.name!r} has no blocks")

    ids = [blk.block_id for blk in proc.blocks]
    if len(set(ids)) != len(ids):
        raise ProgramStructureError(
            f"procedure {proc.name!r} has duplicate block ids"
        )
    id_set = set(ids)

    out_prob: dict[int, float] = {}
    for edge in proc.edges:
        if edge.src not in id_set or edge.dst not in id_set:
            raise ProgramStructureError(
                f"procedure {proc.name!r}: edge {edge.src}->{edge.dst} "
                "references a missing block"
            )
        if not (0.0 < edge.probability <= 1.0):
            raise ProgramStructureError(
                f"procedure {proc.name!r}: edge {edge.src}->{edge.dst} has "
                f"probability {edge.probability!r} outside (0, 1]"
            )
        out_prob[edge.src] = out_prob.get(edge.src, 0.0) + edge.probability

    for block_id, total in out_prob.items():
        if not math.isclose(total, 1.0, abs_tol=_PROB_TOL):
            raise ProgramStructureError(
                f"procedure {proc.name!r}: block {block_id} outgoing "
                f"probabilities sum to {total}, expected 1"
            )

    return_blocks = id_set - set(out_prob)
    if not return_blocks:
        raise ProgramStructureError(
            f"procedure {proc.name!r} has no return block (every block has "
            "successors); the emulator would never terminate"
        )
    if not _reaches_return(proc, return_blocks):
        raise ProgramStructureError(
            f"procedure {proc.name!r}: no return block reachable from entry"
        )

    if program is not None:
        for blk in proc.blocks:
            for callee in blk.calls:
                if callee not in program.procedures:
                    raise ProgramStructureError(
                        f"procedure {proc.name!r} block {blk.block_id} calls "
                        f"unknown procedure {callee!r}"
                    )


def _reaches_return(proc: Procedure, return_blocks: set[int]) -> bool:
    """True if some return block is reachable from the entry block."""
    seen: set[int] = set()
    stack = [proc.entry.block_id]
    while stack:
        block_id = stack.pop()
        if block_id in seen:
            continue
        seen.add(block_id)
        if block_id in return_blocks:
            return True
        stack.extend(e.dst for e in proc.successors(block_id))
    return False


def validate_program(program: Program) -> None:
    """Validate every procedure and the program entry point.

    Also rejects call-graph recursion: the emulator uses an explicit call
    stack without a depth limit, so recursive programs (which the paper's
    embedded workloads do not exhibit) are refused up front.
    """
    if program.entry not in program.procedures:
        raise ProgramStructureError(
            f"program {program.name!r}: entry procedure "
            f"{program.entry!r} not found"
        )
    for proc in program.procedures.values():
        validate_procedure(proc, program)
    _reject_recursion(program)


def _reject_recursion(program: Program) -> None:
    """Raise if the static call graph has a cycle."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {name: WHITE for name in program.procedures}

    def visit(name: str, chain: list[str]) -> None:
        color[name] = GRAY
        chain.append(name)
        proc = program.procedures[name]
        callees = {c for blk in proc.blocks for c in blk.calls}
        for callee in callees:
            if color[callee] == GRAY:
                cycle = " -> ".join(chain + [callee])
                raise ProgramStructureError(
                    f"program {program.name!r} has recursive calls: {cycle}"
                )
            if color[callee] == WHITE:
                visit(callee, chain)
        chain.pop()
        color[name] = BLACK

    for name in program.procedures:
        if color[name] == WHITE:
            visit(name, [])
