"""Basic blocks, procedures and whole programs.

A :class:`Program` is the unit handed to the compiler substrate
(:mod:`repro.vliwcomp`), the instruction-format/assembler/linker chain
(:mod:`repro.iformat`) and the emulator (:mod:`repro.trace.emulator`).

The control-flow representation is deliberately simple: each basic block
ends in an implicit two-way branch (or fall-through), and procedures may
call other procedures from designated call sites.  This is rich enough to
drive realistic block-visit sequences, which is all the memory-hierarchy
evaluation in the paper consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramStructureError
from repro.isa.operations import Operation


@dataclass(frozen=True)
class ControlFlowEdge:
    """A directed edge in a procedure's control-flow graph.

    ``probability`` is the branch bias used by the emulator when choosing
    a successor; the probabilities of a block's outgoing edges must sum
    to 1 (validated in :func:`repro.isa.validate.validate_program`).
    """

    src: int
    dst: int
    probability: float


@dataclass
class BasicBlock:
    """A straight-line sequence of operations.

    ``block_id`` is unique within the procedure.  ``calls`` lists the names
    of procedures invoked when this block executes (in order); calls happen
    conceptually at the end of the block, before the terminating branch.
    """

    block_id: int
    operations: list[Operation] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)

    @property
    def num_operations(self) -> int:
        return len(self.operations)

    def memory_operations(self) -> list[Operation]:
        """The load/store operations in this block, in order."""
        return [op for op in self.operations if op.is_memory]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock(id={self.block_id}, ops={self.num_operations})"


@dataclass
class Procedure:
    """A named procedure: a CFG of basic blocks with an entry and exits.

    Blocks are stored in layout order; ``blocks[0]`` is the entry.  A block
    with no outgoing edges is a return block.
    """

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    edges: list[ControlFlowEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._succ: dict[int, list[ControlFlowEdge]] | None = None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ProgramStructureError(f"procedure {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, block_id: int) -> BasicBlock:
        """The block with id ``block_id`` (raises if absent)."""
        for blk in self.blocks:
            if blk.block_id == block_id:
                return blk
        raise ProgramStructureError(
            f"procedure {self.name!r} has no block {block_id}"
        )

    def successors(self, block_id: int) -> list[ControlFlowEdge]:
        """Outgoing edges of ``block_id`` (cached after first call)."""
        if self._succ is None:
            succ: dict[int, list[ControlFlowEdge]] = {}
            for edge in self.edges:
                succ.setdefault(edge.src, []).append(edge)
            self._succ = succ
        return self._succ.get(block_id, [])

    def invalidate_cfg_cache(self) -> None:
        """Drop the successor cache after mutating ``edges``."""
        self._succ = None

    @property
    def num_operations(self) -> int:
        return sum(blk.num_operations for blk in self.blocks)


@dataclass
class Program:
    """A whole application: procedures plus the name of the entry procedure."""

    name: str
    procedures: dict[str, Procedure] = field(default_factory=dict)
    entry: str = "main"

    def add(self, procedure: Procedure) -> None:
        """Register a procedure; names must be unique."""
        if procedure.name in self.procedures:
            raise ProgramStructureError(
                f"duplicate procedure name {procedure.name!r}"
            )
        self.procedures[procedure.name] = procedure

    def procedure(self, name: str) -> Procedure:
        """The procedure named ``name`` (raises if absent)."""
        try:
            return self.procedures[name]
        except KeyError:
            raise ProgramStructureError(
                f"program {self.name!r} has no procedure {name!r}"
            ) from None

    @property
    def entry_procedure(self) -> Procedure:
        return self.procedure(self.entry)

    def all_blocks(self) -> list[tuple[str, BasicBlock]]:
        """Every (procedure name, block) pair in layout order."""
        out: list[tuple[str, BasicBlock]] = []
        for proc in self.procedures.values():
            for blk in proc.blocks:
                out.append((proc.name, blk))
        return out

    @property
    def num_operations(self) -> int:
        return sum(p.num_operations for p in self.procedures.values())

    @property
    def num_blocks(self) -> int:
        return sum(len(p.blocks) for p in self.procedures.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program(name={self.name!r}, procedures={len(self.procedures)}, "
            f"blocks={self.num_blocks}, ops={self.num_operations})"
        )
