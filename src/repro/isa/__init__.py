"""Program representation: operations, basic blocks, procedures, programs.

This package plays the role of the scheduled-assembly-code interface between
the Trimaran/Elcor compiler and the memory simulation system in the paper
(Section 3.3).  Programs are built either by hand (tests, examples) or by the
synthetic workload generator in :mod:`repro.workloads`.
"""

from repro.isa.operations import OpClass, Operation
from repro.isa.program import BasicBlock, ControlFlowEdge, Procedure, Program
from repro.isa.validate import validate_program

__all__ = [
    "OpClass",
    "Operation",
    "BasicBlock",
    "ControlFlowEdge",
    "Procedure",
    "Program",
    "validate_program",
]
