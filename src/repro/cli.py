"""Command-line interface: ``python -m repro <command>``.

Gives the repository's main flows a shell entry point:

* ``table2`` / ``table3`` / ``table4`` / ``fig5`` / ``fig6`` / ``fig7`` —
  regenerate one paper table/figure and print it;
* ``explore`` — run the spacewalker on one benchmark and print the
  Pareto frontier;
* ``sweep`` — exact miss counts for a cache design-space grid (line
  sizes x sets x associativities) on a benchmark's reference trace;
* ``dilation`` — print text dilations of the paper processors for one
  benchmark;
* ``errors`` — estimation-error statistics over a table4-style run;
* ``report`` — assemble bench results into one markdown report;
* ``benchmarks`` — list the workload suite;
* ``serve`` — run the evaluation service (durable store + job queue +
  HTTP API) against one sqlite database;
* ``submit`` — send a job spec to a running service and optionally wait
  for its result;
* ``work`` — run a pull-loop fleet worker against a running service
  (lease-based claiming with heartbeats; any number of these processes,
  on any host, scale the service out);
* ``runs`` — inspect recorded runs in an analytics database: ``list``,
  ``show``, ``export`` (the canonical CSV table), ``compare`` (row
  deltas + Pareto-frontier diff) and ``gc``.

Common options: ``--scale`` (workload footprint multiplier),
``--visits`` (emulation budget), ``--benchmarks`` (subset),
``--max-workers``/``--job-timeout``/``--job-retries`` (parallel
priming), ``--trace-shipping`` (zero-copy shared memory vs per-job
pickling), ``--count-parallelism`` (multicore per-line-size
stack-distance counting), ``--journal`` (structured JSON-lines run
journal), ``--runs-db`` (record the command's results as a durable run
in an analytics sqlite database, browsable with ``repro runs``).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import Sequence

from repro.experiments.runner import (
    RunnerSettings,
    get_pipeline,
    run_figure5,
    run_figure6,
    run_figure7,
    run_table2,
    run_table3,
    run_table4,
)
from repro.machine.presets import PAPER_PROCESSORS
from repro.runtime.executor import TRACE_SHIPPING_MODES
from repro.runtime.journal import RunJournal, use_journal
from repro.workloads.suite import BENCHMARK_NAMES


def _positive_int(text: str) -> int:
    """argparse type: an int >= 1 (0/negatives are configuration errors,
    not a silent request for serial execution)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (common options live on each subcommand)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload footprint multiplier (default 1.0 = paper scale)",
    )
    common.add_argument(
        "--visits",
        type=int,
        default=60_000,
        help="emulation budget in block visits (default 60000)",
    )
    common.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"benchmark subset (default: all of {', '.join(BENCHMARK_NAMES)})",
    )
    common.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "worker processes for batched simulation priming "
            "(default: serial; must be >= 1)"
        ),
    )
    common.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-pass timeout for parallel priming; a hung worker is "
            "evicted and the pass retried (default: no limit)"
        ),
    )
    common.add_argument(
        "--job-retries",
        type=int,
        default=2,
        metavar="N",
        help="re-attempts per failed simulation pass (default: 2)",
    )
    common.add_argument(
        "--trace-shipping",
        choices=TRACE_SHIPPING_MODES,
        default="auto",
        help=(
            "how parallel runs ship trace arrays to workers: 'auto' "
            "prefers zero-copy shared memory, 'shm' requires it, "
            "'pickle' forces per-job pickling (default: auto)"
        ),
    )
    common.add_argument(
        "--count-parallelism",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the per-line-size stack-distance "
            "counting of multi-line-size sweeps (streams ship zero-copy; "
            "default: 1, in-process)"
        ),
    )
    common.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "append a structured JSON-lines run journal (passes, "
            "retries, fallbacks, cache hit rates) to PATH"
        ),
    )
    common.add_argument(
        "--runs-db",
        default=None,
        metavar="PATH",
        help=(
            "record this command's results as a durable run in the "
            "given analytics sqlite database (sweep/explore; browse "
            "with 'repro runs')"
        ),
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Automatic and Efficient Evaluation of "
            "Memory Hierarchies for Embedded Systems' (MICRO-32, 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, doc in (
        ("table2", "relative data-cache miss rates"),
        ("table3", "text dilation for all benchmarks"),
        ("table4", "actual vs dilated vs estimated misses (full suite)"),
        ("fig5", "dilation distributions (gcc, ghostscript)"),
        ("fig6", "estimated vs dilated misses across dilations (gcc)"),
        ("fig7", "actual vs dilated vs estimated misses (gcc)"),
        ("dilation", "text dilations of the paper processors"),
        ("explore", "spacewalker Pareto exploration"),
        ("errors", "estimation-error statistics (table4 slices)"),
        ("benchmarks", "list the workload suite"),
    ):
        sub.add_parser(name, help=doc, parents=[common])
    sweep = sub.add_parser(
        "sweep",
        help="exact miss counts for a cache design-space grid",
        parents=[common],
    )
    sweep.add_argument(
        "--role",
        choices=("icache", "dcache", "unified"),
        default="unified",
        help="reference trace to sweep (default: unified)",
    )
    sweep.add_argument(
        "--line-sizes",
        nargs="+",
        type=_positive_int,
        default=[16, 32, 64],
        metavar="BYTES",
        help="line sizes of the grid (default: 16 32 64)",
    )
    sweep.add_argument(
        "--sets",
        nargs="+",
        type=_positive_int,
        default=[64, 256, 1024],
        metavar="N",
        help="set counts of the grid (default: 64 256 1024)",
    )
    sweep.add_argument(
        "--assocs",
        nargs="+",
        type=_positive_int,
        default=[1, 2, 4],
        metavar="N",
        help="associativities of the grid (default: 1 2 4)",
    )
    sweep.add_argument(
        "--strategy",
        choices=("auto", "designspace", "perline"),
        default="auto",
        help=(
            "in-process engine: one whole-design-space pass "
            "('designspace'), independent per-line-size passes "
            "('perline'), or pick automatically (default: auto)"
        ),
    )
    sweep.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "JSON evaluation-cache file for resumable group-state "
            "checkpoints (default: no checkpointing)"
        ),
    )
    sweep.add_argument(
        "--trace-format",
        choices=("memory", "chunked"),
        default="memory",
        help=(
            "'chunked' spools the trace to an on-disk chunked store and "
            "streams it chunk-at-a-time (bounded memory; workers receive "
            "the file path, not the arrays; default: memory)"
        ),
    )
    sweep.add_argument(
        "--chunk-ranges",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "ranges per chunk with --trace-format chunked "
            "(default: 262144)"
        ),
    )
    sweep.add_argument(
        "--sample-intervals",
        type=_positive_int,
        default=None,
        metavar="K",
        help=(
            "interval-sample the sweep: simulate K windows and report "
            "extrapolated misses with an error estimate instead of "
            "simulating the whole trace (default: exact)"
        ),
    )
    sweep.add_argument(
        "--sample-interval-ranges",
        type=_positive_int,
        default=4096,
        metavar="N",
        help="ranges per sampled window (default: 4096)",
    )
    sweep.add_argument(
        "--sample-warmup",
        type=int,
        default=1024,
        metavar="N",
        help=(
            "ranges simulated before each window to warm LRU state, "
            "excluded from the counts (default: 1024)"
        ),
    )
    sweep.add_argument(
        "--sample-mode",
        choices=("uniform", "strided", "first"),
        default="uniform",
        help=(
            "window placement: evenly spread ('uniform'), fixed stride "
            "('strided') or an initial segment ('first'; the paper's "
            "truncation sampling) (default: uniform)"
        ),
    )
    report = sub.add_parser(
        "report", help="assemble bench results into a markdown report"
    )
    report.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of bench result files",
    )
    report.add_argument(
        "--output",
        default=None,
        help="write the report here instead of stdout",
    )
    report.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="include a run-journal summary section from this JSON-lines file",
    )
    report.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "include store / job-queue / recorded-run statistics from "
            "this evaluation-service sqlite database"
        ),
    )
    serve = sub.add_parser(
        "serve",
        help="run the evaluation service (store + job queue + HTTP API)",
    )
    serve.add_argument(
        "--db",
        required=True,
        metavar="PATH",
        help="sqlite database file for the shared result store and job queue",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321, help="bind port (default 8321)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "local job worker threads (each job may fan out to "
            "processes); 0 = broker mode, all work pulled by remote "
            "'repro work' processes"
        ),
    )
    serve.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "job lease duration; workers heartbeat to renew, expired "
            "leases are requeued (default 30)"
        ),
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append the service's JSON-lines run journal to PATH",
    )
    submit = sub.add_parser(
        "submit", help="submit a job spec to a running evaluation service"
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="service base URL (default http://127.0.0.1:8321)",
    )
    submit.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="job spec JSON file ('-' reads stdin)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print its result document",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="--wait polling budget (default 600)",
    )
    worker = sub.add_parser(
        "work",
        help="run a pull-loop fleet worker against a running service",
    )
    worker.add_argument(
        "--server",
        default="http://127.0.0.1:8321",
        metavar="URL",
        help="service base URL (default http://127.0.0.1:8321)",
    )
    worker.add_argument(
        "--tags",
        nargs="*",
        default=[],
        metavar="TAG",
        help=(
            "capability tags; only jobs whose 'requires' list these "
            "tags cover are claimed"
        ),
    )
    worker.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="requested lease per claim (default: the server's lease)",
    )
    worker.add_argument(
        "--id",
        default=None,
        metavar="WORKER_ID",
        help="worker identity (default: host:pid)",
    )
    worker.add_argument(
        "--max-jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="exit after executing N jobs (default: run until killed)",
    )
    worker.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append the worker's JSON-lines run journal to PATH",
    )
    runs = sub.add_parser(
        "runs",
        help="inspect recorded runs in an analytics database",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_common = argparse.ArgumentParser(add_help=False)
    runs_common.add_argument(
        "--db",
        required=True,
        metavar="PATH",
        help="analytics sqlite database (a service db or --runs-db file)",
    )
    runs_list = runs_sub.add_parser(
        "list", help="recorded runs, newest first", parents=[runs_common]
    )
    runs_list.add_argument(
        "--kind", default=None, help="filter by run kind (sweep/explore/...)"
    )
    runs_list.add_argument(
        "--state", default=None, help="filter by state (done/failed/running)"
    )
    runs_list.add_argument(
        "--limit", type=_positive_int, default=20, help="max rows (default 20)"
    )
    runs_show = runs_sub.add_parser(
        "show", help="one run with its rows as JSON", parents=[runs_common]
    )
    runs_show.add_argument("run_id", help="run id (see 'repro runs list')")
    runs_export = runs_sub.add_parser(
        "export",
        help="write a run's canonical CSV table",
        parents=[runs_common],
    )
    runs_export.add_argument("run_id", help="run id (see 'repro runs list')")
    runs_export.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the CSV here instead of stdout",
    )
    runs_compare = runs_sub.add_parser(
        "compare",
        help="diff two runs: row deltas + Pareto frontiers",
        parents=[runs_common],
    )
    runs_compare.add_argument("run_a", help="baseline run id")
    runs_compare.add_argument("run_b", help="candidate run id")
    runs_gc = runs_sub.add_parser(
        "gc", help="delete old recorded runs", parents=[runs_common]
    )
    runs_gc.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="SECONDS",
        help="delete runs started more than SECONDS ago",
    )
    runs_gc.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="always keep the N newest runs",
    )
    return parser


def _settings(args: argparse.Namespace) -> RunnerSettings:
    return RunnerSettings(
        scale=args.scale,
        max_visits=args.visits,
        max_workers=args.max_workers,
        job_timeout=args.job_timeout,
        job_retries=args.job_retries,
        trace_shipping=getattr(args, "trace_shipping", "auto"),
        count_parallelism=getattr(args, "count_parallelism", 1),
    )


def _benchmarks(args: argparse.Namespace) -> tuple[str, ...]:
    if args.benchmarks is None:
        return BENCHMARK_NAMES
    unknown = set(args.benchmarks) - set(BENCHMARK_NAMES)
    if unknown:
        raise SystemExit(
            f"unknown benchmarks: {sorted(unknown)}; "
            f"choose from {', '.join(BENCHMARK_NAMES)}"
        )
    return tuple(args.benchmarks)


def _explore_space():
    """Design space the ``explore`` command walks (patchable in tests)."""
    from repro.explore.spec import SystemDesignSpace

    return SystemDesignSpace()


def _cmd_explore(args: argparse.Namespace) -> str:
    from repro.explore.spacewalker import Spacewalker

    settings = _settings(args)
    policy = settings.executor_policy()
    recorder = _runs_recorder(
        args, "explore", {"benchmarks": list(_benchmarks(args))}
    )
    lines: list[str] = []
    with recorder if recorder is not None else nullcontext():
        # Every requested benchmark is walked (not just the first).
        for bench in _benchmarks(args):
            pipeline = get_pipeline(bench, settings)
            pareto = Spacewalker(
                _explore_space(),
                pipeline,
                max_workers=args.max_workers,
                policy=policy,
            ).walk()
            lines.append(
                f"Pareto frontier for {bench} ({len(pareto)} designs):"
            )
            for point in pareto.frontier():
                memory = point.design.memory
                if recorder is not None:
                    recorder.add_frontier_point(
                        {
                            "cost": point.cost,
                            "cycles": point.time,
                            "processor": point.design.processor,
                            "icache": memory.icache.__dict__,
                            "dcache": memory.dcache.__dict__,
                            "unified": memory.unified.__dict__,
                        },
                        benchmark=bench,
                    )
                lines.append(
                    f"  cost={point.cost:9.2f} cycles={point.time:13.0f} "
                    f"proc={point.design.processor} "
                    f"I={memory.icache.describe()} "
                    f"D={memory.dcache.describe()} "
                    f"U={memory.unified.describe()}"
                )
    if recorder is not None:
        lines.append(f"[runs] recorded {recorder.run_id} -> {args.runs_db}")
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.cache.config import CacheConfig

    try:
        configs = [
            CacheConfig(sets, assoc, line_size)
            for line_size in args.line_sizes
            for sets in args.sets
            for assoc in args.assocs
        ]
    except Exception as exc:  # noqa: BLE001 - CacheConfig validates
        raise SystemExit(f"infeasible cache configuration: {exc}")
    checkpoint = None
    if args.checkpoint:
        from repro.explore.evalcache import EvaluationCache

        checkpoint = EvaluationCache(args.checkpoint)
    plan = None
    if args.sample_intervals:
        from repro.trace.sampling import SamplePlan

        try:
            plan = SamplePlan(
                intervals=args.sample_intervals,
                interval_ranges=args.sample_interval_ranges,
                warmup_ranges=args.sample_warmup,
                mode=args.sample_mode,
            )
        except Exception as exc:  # noqa: BLE001 - SamplePlan validates
            raise SystemExit(f"bad sampling plan: {exc}")
    settings = _settings(args)
    recorder = _runs_recorder(
        args,
        "sweep",
        {
            "benchmarks": list(_benchmarks(args)),
            "role": args.role,
            "line_sizes": list(args.line_sizes),
            "sets": list(args.sets),
            "assocs": list(args.assocs),
            "sampled": bool(args.sample_intervals),
        },
    )
    lines: list[str] = []
    with recorder if recorder is not None else nullcontext():
        lines.extend(
            _run_sweep_benchmarks(
                args, settings, configs, checkpoint, plan, recorder
            )
        )
    if recorder is not None:
        lines.append(f"[runs] recorded {recorder.run_id} -> {args.runs_db}")
    return "\n".join(lines)


def _run_sweep_benchmarks(args, settings, configs, checkpoint, plan, recorder):
    from repro.cache.sweep import (
        sampled_sweep_design_space,
        sweep_design_space,
    )

    lines: list[str] = []
    for bench in _benchmarks(args):
        trace = get_pipeline(bench, settings).reference_artifacts().trace(
            args.role
        )
        trace_arg = (trace.starts, trace.sizes)
        tmpdir = None
        if args.trace_format == "chunked":
            import tempfile

            from repro.trace.chunkstore import write_chunked

            tmpdir = tempfile.TemporaryDirectory(prefix="repro-chunked-")
            kwargs = (
                {"chunk_ranges": args.chunk_ranges}
                if args.chunk_ranges
                else {}
            )
            trace_arg = write_chunked(
                f"{tmpdir.name}/{bench}-{args.role}.rct",
                trace.starts,
                trace.sizes,
                **kwargs,
            )
        try:
            if plan is not None:
                results = sampled_sweep_design_space(
                    configs, trace_arg, plan
                )
            else:
                results = sweep_design_space(
                    configs,
                    trace_arg,
                    max_workers=args.max_workers,
                    policy=settings.executor_policy(),
                    checkpoint=checkpoint,
                    strategy=args.strategy,
                )
        finally:
            if tmpdir is not None:
                trace_arg.close()
                tmpdir.cleanup()
        header = (
            f"{bench} {args.role}: {len(trace)} ranges, "
            f"{len(configs)} configurations"
        )
        if plan is not None:
            any_result = next(iter(results.values()))
            header += (
                f" (sampled: {any_result.intervals} intervals, "
                f"{any_result.sampled_fraction:.1%} of the trace)"
            )
        lines.append(header)
        columns = (
            f"  {'line':>5} {'sets':>6} {'assoc':>5} "
            f"{'misses':>12} {'rate':>8}"
        )
        if plan is not None:
            columns += f" {'error':>8}"
        lines.append(columns)
        for config in configs:
            result = results[config]
            rate = (
                result.misses / result.accesses if result.accesses else 0.0
            )
            row = (
                f"  {config.line_size:>5} {config.sets:>6} "
                f"{config.assoc:>5} {result.misses:>12} {rate:>8.4f}"
            )
            if plan is not None:
                error = (
                    f"{result.error:.2%}" if result.error is not None
                    else "n/a"
                )
                row += f" {error:>8}"
            lines.append(row)
        if recorder is not None:
            for config, result in results.items():
                recorder.add_row(
                    benchmark=bench,
                    role=args.role,
                    sets=config.sets,
                    assoc=config.assoc,
                    line_size=config.line_size,
                    accesses=result.accesses,
                    misses=float(result.misses),
                    estimated=plan is not None,
                    error=getattr(result, "error", None),
                    source="sampled" if plan is not None else "simulated",
                )
    return lines


def _cmd_dilation(args: argparse.Namespace) -> str:
    lines = []
    for bench in _benchmarks(args):
        pipeline = get_pipeline(bench, _settings(args))
        row = "  ".join(
            f"{p.name}={pipeline.dilation(p):.2f}" for p in PAPER_PROCESSORS
        )
        lines.append(f"{bench:>12}: {row}")
    return "\n".join(lines)


def _cmd_errors(args: argparse.Namespace) -> str:
    from repro.experiments.runner import run_table4
    from repro.experiments.summary import render_error_summary

    result = run_table4(benchmarks=_benchmarks(args), settings=_settings(args))
    return render_error_summary(result)


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.experiments.report import build_report, save_report

    if args.output:
        path = save_report(
            args.results,
            args.output,
            journal=args.journal,
            store=args.store,
        )
        return f"report written to {path}"
    return build_report(args.results, journal=args.journal, store=args.store)


def _runs_recorder(args: argparse.Namespace, kind: str, spec: dict):
    """A RunRecorder against ``--runs-db`` (None when not requested)."""
    if not getattr(args, "runs_db", None):
        return None
    from repro.analytics.runs import RunRecorder
    from repro.service.store import ResultStore

    return RunRecorder(
        ResultStore(args.runs_db), kind, spec=spec, label=f"cli:{kind}"
    )


def _cmd_runs(args: argparse.Namespace) -> str:
    import json
    import time as _time

    from repro.analytics.compare import compare_runs
    from repro.analytics.runs import gc_runs, get_run, get_run_rows, list_runs
    from repro.analytics.table import run_table_csv
    from repro.service.store import ResultStore

    store = ResultStore(args.db)
    if args.runs_command == "list":
        runs = list_runs(
            store, kind=args.kind, state=args.state, limit=args.limit
        )
        if not runs:
            return "no recorded runs"
        lines = [
            f"{'id':>20} {'kind':>8} {'state':>8} {'benchmark':>12} "
            f"{'rows':>6} {'wall_s':>9}  started"
        ]
        for run in runs:
            started = _time.strftime(
                "%Y-%m-%d %H:%M:%S", _time.localtime(run["started"])
            )
            wall = run.get("wall_s")
            lines.append(
                f"{run['id']:>20} {run['kind']:>8} {run['state']:>8} "
                f"{(run.get('benchmark') or '-'):>12} {run['rows']:>6} "
                f"{wall if wall is not None else '-':>9}  {started}"
            )
        return "\n".join(lines)
    if args.runs_command == "show":
        return json.dumps(
            {
                "run": get_run(store, args.run_id),
                "rows": get_run_rows(store, args.run_id),
            },
            indent=2,
        )
    if args.runs_command == "export":
        csv_text = run_table_csv(store, args.run_id)
        if args.output:
            with open(args.output, "w", encoding="utf-8", newline="") as fh:
                fh.write(csv_text)
            return f"table written to {args.output}"
        return csv_text.rstrip("\n")
    if args.runs_command == "compare":
        return json.dumps(
            compare_runs(store, args.run_a, args.run_b), indent=2
        )
    if args.runs_command == "gc":
        deleted = gc_runs(
            store, older_than=args.older_than, keep=args.keep
        )
        return f"deleted {deleted} run(s)"
    raise SystemExit(f"unknown runs command {args.runs_command!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.queue import DEFAULT_LEASE
    from repro.service.server import serve

    serve(
        args.db,
        host=args.host,
        port=args.port,
        workers=args.workers,
        journal_path=args.journal,
        lease=args.lease if args.lease is not None else DEFAULT_LEASE,
    )
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.service.worker import work

    work(
        args.server,
        tags=args.tags,
        lease=args.lease,
        worker_id=args.id,
        max_jobs=args.max_jobs,
        journal_path=args.journal,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> str:
    import json

    from repro.service.client import ServiceClient

    if args.spec == "-":
        spec = json.load(sys.stdin)
    else:
        with open(args.spec, encoding="utf-8") as handle:
            spec = json.load(handle)
    client = ServiceClient(args.url)
    job_id = client.submit(spec)
    if not args.wait:
        return json.dumps({"id": job_id, "state": "queued"})
    record = client.wait(job_id, timeout=args.timeout)
    return json.dumps(record.to_dict(), indent=2)


def _cmd_benchmarks(_: argparse.Namespace) -> str:
    from repro.workloads.suite import benchmark_profile

    lines = []
    for name in BENCHMARK_NAMES:
        profile = benchmark_profile(name)
        lines.append(
            f"{name:>12}: {profile.n_procedures} procedures, "
            f"blocks/proc {profile.blocks_per_proc}, "
            f"mix(i/f/m)={profile.op_mix}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        print(_cmd_report(args))
        return 0
    if args.command == "serve":
        # serve owns its journal (installed as the active journal for
        # the service's whole lifetime, not one command's).
        return _cmd_serve(args)
    if args.command == "submit":
        print(_cmd_submit(args))
        return 0
    if args.command == "work":
        # work owns its journal (it spans the worker's whole lifetime).
        return _cmd_work(args)
    if args.command == "runs":
        print(_cmd_runs(args))
        return 0
    journal = RunJournal(args.journal) if args.journal else None
    if journal is None and getattr(args, "runs_db", None):
        # Run recording derives wall/kernel/cache columns from journal
        # events; give it an in-memory journal when none was requested.
        journal = RunJournal()
    scope = use_journal(journal) if journal is not None else nullcontext()
    with scope:
        if journal is not None:
            journal.record("run_start", command=args.command)
        try:
            return _dispatch(args)
        finally:
            if journal is not None:
                journal.record("run_end", command=args.command)
                if journal.path is not None:
                    print(
                        f"[journal] {len(journal)} events -> {journal.path}",
                        file=sys.stderr,
                    )
                journal.close()


def _dispatch(args: argparse.Namespace) -> int:
    settings = _settings(args)
    benches = _benchmarks(args)
    if args.command == "table2":
        out = run_table2(benchmarks=benches, settings=settings).render()
    elif args.command == "table3":
        out = run_table3(benchmarks=benches, settings=settings).render()
    elif args.command == "table4":
        out = run_table4(benchmarks=benches, settings=settings).render()
    elif args.command == "fig5":
        out = run_figure5(settings=settings).render()
    elif args.command == "fig6":
        out = run_figure6(settings=settings).render()
    elif args.command == "fig7":
        out = run_figure7(settings=settings).render()
    elif args.command == "sweep":
        out = _cmd_sweep(args)
    elif args.command == "dilation":
        out = _cmd_dilation(args)
    elif args.command == "explore":
        out = _cmd_explore(args)
    elif args.command == "errors":
        out = _cmd_errors(args)
    elif args.command == "benchmarks":
        out = _cmd_benchmarks(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    print(out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
