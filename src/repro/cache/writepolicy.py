"""Write-policy-aware cache simulation.

The miss-count world of the paper's evaluation (and of Cheetah) is
write-oblivious: under write-allocate, loads and stores miss identically.
The paper's own validation found that its counts differed from IMPACT's
only in "slightly different handling of writes and write-buffer issues"
(Section 6.1).  This module supplies the missing write dimension:

* ``write-back`` + write-allocate (default): stores dirty their line;
  evicting a dirty line costs one *writeback* of memory traffic;
* ``write-through`` + no-write-allocate: stores always write memory and
  never allocate on miss.

Traces must be kind-tagged range traces (see :mod:`repro.trace.ranges`):
:data:`~repro.trace.ranges.KIND_WRITE` entries are stores, everything
else is treated as a read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.errors import ConfigurationError, TraceError
from repro.trace.ranges import KIND_WRITE, RangeTrace

POLICIES = ("write-back", "write-through")


@dataclass(frozen=True)
class WriteResult:
    """Outcome of one write-policy simulation."""

    config: CacheConfig
    policy: str
    accesses: int
    misses: int
    writebacks: int
    memory_writes: int

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def memory_traffic_bytes(self) -> int:
        """Bytes moved to/from memory: fills + writebacks/through-writes.

        Fills and writebacks move whole lines; write-through stores move
        one word (modeled as 4 bytes).
        """
        line = self.config.line_size
        if self.policy == "write-back":
            return (self.misses + self.writebacks) * line
        return self.misses * line + self.memory_writes * 4


def simulate_write_policy(
    config: CacheConfig,
    trace: RangeTrace,
    policy: str = "write-back",
    flush_at_end: bool = False,
) -> WriteResult:
    """Simulate ``trace`` with write semantics.

    ``flush_at_end`` counts the dirty lines still resident when the trace
    ends as writebacks (a whole-program accounting view); the default
    matches the steady-state view of the paper's miss counting.
    """
    if policy not in POLICIES:
        raise ConfigurationError(
            f"unknown write policy {policy!r}; expected one of {POLICIES}"
        )
    line_size = config.line_size
    nsets = config.sets
    assoc = config.assoc
    sets: list[list[int]] = [[] for _ in range(nsets)]
    dirty: set[int] = set()
    accesses = 0
    misses = 0
    writebacks = 0
    memory_writes = 0
    write_back = policy == "write-back"

    starts = trace.starts.tolist()
    sizes = trace.sizes.tolist()
    kinds = trace.kinds.tolist()
    for start, size, kind in zip(starts, sizes, kinds):
        if size <= 0:
            raise TraceError(f"range size must be positive, got {size}")
        is_write = kind == KIND_WRITE
        first = start // line_size
        last = (start + size - 1) // line_size
        for line in range(first, last + 1):
            accesses += 1
            lru = sets[line % nsets]
            if line in lru:
                if lru[-1] != line:
                    lru.remove(line)
                    lru.append(line)
                if is_write:
                    if write_back:
                        dirty.add(line)
                    else:
                        memory_writes += 1
                continue
            misses += 1
            if is_write and not write_back:
                # Write-through, no-write-allocate: memory takes the
                # store; the cache is untouched.
                memory_writes += 1
                continue
            if len(lru) >= assoc:
                victim = lru.pop(0)
                if victim in dirty:
                    dirty.discard(victim)
                    writebacks += 1
            lru.append(line)
            if is_write and write_back:
                dirty.add(line)

    if flush_at_end and write_back:
        writebacks += len(dirty)
        dirty.clear()

    return WriteResult(
        config=config,
        policy=policy,
        accesses=accesses,
        misses=misses,
        writebacks=writebacks,
        memory_writes=memory_writes,
    )
