"""Whole-design-space simulation: every line size from one sort.

:class:`~repro.cache.cheetah.CheetahSimulator` evaluates every cache of
*one* line size in a single trace pass; a design-space sweep still paid
one line-stream expansion plus one value sort per distinct line size.
Both costs are redundant: the line stream at size ``L`` is a
deterministic coarsening of the stream at any divisor of ``L``.

:class:`DesignSpaceSimulator` owns one :class:`CheetahSimulator` per
line size and feeds them all from shared work:

* **One expansion.**  Only the finest line size expands the byte ranges
  (memoized in :mod:`repro.cache.linestream`); every coarser stream is
  one floor division plus an MRU collapse of the finest stream.

* **One sort.**  With fine lines ``F`` and ``v_k = F >> k`` the values
  at granularity ``2^k``, the previous-occurrence links every simulator
  needs fall out of the order sorted by ``(v_k, time)``.  Since
  ``v_{k-1} = 2 v_k + bit``, stably splitting each equal-``v_k`` run by
  that next bit turns the ``(v_k, time)`` order into the
  ``(v_{k-1}, time)`` order — so one ``radix_argsort`` of the
  *coarsest* values plus one O(n) scatter per halving
  (:func:`~repro.cache.stackdist.split_value_groups`) yields every line
  size's sorted order.  (The reverse direction would be a k-way merge:
  fine-sorted runs are ``(fine value, time)``-ordered within a coarse
  value, not time-ordered.)

  Links extracted at granularity ``k`` are positions in ``F``; the
  coarse stream drops adjacent duplicates, so links map through the
  kept-position index (``cumsum(keep) - 1``).  A dropped occurrence's
  previous occurrence is exactly its predecessor — that's what made it
  a duplicate — so dropped links collapse onto their representative and
  the self-links are filtered out.

Line sizes whose ratio to the previous tower member exceeds
:data:`MAX_DERIVE_FACTOR` (or is not a power of two) start a fresh
*tower* with its own sort: a fresh 16-bit radix sort of the (smaller)
coarse stream costs about two bit-split passes over the fine stream, so
chaining splits across wide gaps would be slower than re-sorting.

Within a tower the simulator picks between two equivalent plans by a
measured cost model (``mode="auto"``):

* ``links`` — the one-sort derivation above.  Every split/remap pass
  runs at the *fine* stream's length, so its cost is
  ``levels x len(fine) x SPLIT_COST``.
* ``streams`` — derive each coarser stream through the
  :mod:`~repro.cache.linestream` memo (one shift + one collapse) and
  let each simulator's internal radix sort re-link the *collapsed*
  stream.  Cost is ``sum(len(coarse)) x sort passes``.

MRU-heavy traces collapse coarser streams far below the fine length,
making the small per-size sorts cheaper than full-length splits; the
linked plan wins when streams barely collapse and wide line indices
force multi-pass sorts.  Either plan is bit-identical — the choice is
journaled (``designspace`` event, ``mode`` field) and can be forced for
testing.  One trace fingerprint (:func:`~repro.cache.linestream.trace_digest`)
is shared across every line size of a batch either way.

Every per-line-size simulator stays a plain :class:`CheetahSimulator`
(same histograms, same :meth:`state` export, same checkpoint keys), so
results are bit-identical to independent per-line-size passes and
sweep checkpoints interoperate either way.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cache._util import as_int64_array
from repro.cache.cheetah import SCALAR_BATCH_LIMIT, CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.linestream import (
    LineStream,
    line_access_count,
    line_stream,
    trace_digest,
)
from repro.cache.simulator import MissResult
from repro.cache.stackdist import radix_argsort, split_value_groups
from repro.errors import ConfigurationError, TraceError
from repro.runtime.journal import active_journal

__all__ = ["MAX_DERIVE_FACTOR", "TOWER_MODES", "DesignSpaceSimulator"]

#: Derive a line size from the previous tower member only across this
#: ratio; wider jumps (or non-power-of-two ratios) re-sort from scratch.
#: One fresh 16-bit radix sort costs about two single-bit split passes.
MAX_DERIVE_FACTOR = 4

#: Per-tower plan: ``auto`` picks by the cost model, the others force.
TOWER_MODES = ("auto", "links", "streams")

#: Cost of one split + link-extraction + remap pass per fine-stream
#: element, in units of one 16-bit radix-sort pass per element
#: (measured on the epic workload: ~79ns vs ~24ns).
_SPLIT_COST_PASSES = 3.0


class DesignSpaceSimulator:
    """Simulate caches of *every* line size in one pass over the trace.

    Parameters
    ----------
    spec:
        ``{line_size: (set_counts, max_assoc)}`` — the same per-group
        metadata a sweep derives from its configurations.
    engine:
        Passed through to every per-line-size
        :class:`~repro.cache.cheetah.CheetahSimulator`.
    mode:
        Tower plan selection — one of :data:`TOWER_MODES`.  ``auto``
        (default) weighs full-length split passes against per-size
        sorts of the collapsed streams; ``links``/``streams`` force one
        plan (results are bit-identical either way).
    """

    def __init__(
        self,
        spec: Mapping[int, tuple[Sequence[int], int]],
        engine: str = "auto",
        mode: str = "auto",
    ):
        if not spec:
            raise ConfigurationError("design-space spec is empty")
        if mode not in TOWER_MODES:
            raise ConfigurationError(
                f"unknown design-space mode {mode!r}; "
                f"expected one of {TOWER_MODES}"
            )
        self.engine = engine
        self.mode = mode
        self.simulators: dict[int, CheetahSimulator] = {
            int(line_size): CheetahSimulator(
                int(line_size), set_counts, max_assoc, engine=engine
            )
            for line_size, (set_counts, max_assoc) in spec.items()
        }
        self._towers = _build_towers(sorted(self.simulators))
        #: Wall seconds spent in each line size's consume (cumulative);
        #: shared derivation time is journaled per tower instead.
        self.consume_seconds: dict[int, float] = {
            line_size: 0.0 for line_size in self.simulators
        }

    @classmethod
    def from_configs(
        cls,
        configs: Iterable[CacheConfig],
        engine: str = "auto",
        mode: str = "auto",
    ) -> "DesignSpaceSimulator":
        """Build from a configuration list (one group per line size)."""
        groups: dict[int, list[CacheConfig]] = {}
        for config in configs:
            groups.setdefault(config.line_size, []).append(config)
        return cls(
            {
                line_size: (
                    sorted({c.sets for c in group}),
                    max(c.assoc for c in group),
                )
                for line_size, group in groups.items()
            },
            engine=engine,
            mode=mode,
        )

    @classmethod
    def from_states(
        cls,
        states: Mapping[int, tuple[int, Mapping[int, Sequence[int]]]],
        engine: str = "auto",
    ) -> "DesignSpaceSimulator":
        """Rebuild a query-only simulator from exported :meth:`states`."""
        sim = cls.__new__(cls)
        sim.engine = engine
        sim.mode = "auto"
        sim.simulators = {
            int(line_size): CheetahSimulator.from_state(
                int(line_size),
                len(next(iter(hists.values()))) - 1,
                accesses,
                hists,
            )
            for line_size, (accesses, hists) in states.items()
        }
        if not sim.simulators:
            raise ConfigurationError("design-space state map is empty")
        sim._towers = _build_towers(sorted(sim.simulators))
        sim.consume_seconds = {ls: 0.0 for ls in sim.simulators}
        return sim

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------

    @property
    def line_sizes(self) -> list[int]:
        return sorted(self.simulators)

    @property
    def towers(self) -> list[list[int]]:
        """Line-size groups sharing one sort (diagnostics/tests)."""
        return [list(tower) for tower in self._towers]

    def simulate(
        self,
        starts: Sequence[int] | Iterable[int],
        sizes: Sequence[int] | Iterable[int],
    ) -> None:
        """Feed a whole range trace to every line size (appendable)."""
        starts_arr = as_int64_array(starts)
        sizes_arr = as_int64_array(sizes)
        if len(starts_arr) != len(sizes_arr):
            raise TraceError("starts and sizes must have equal length")
        digest = trace_digest(starts_arr, sizes_arr)
        for tower in self._towers:
            self._consume_tower(tower, starts_arr, sizes_arr, digest)

    def _consume_tower(
        self,
        tower: list[int],
        starts: np.ndarray,
        sizes: np.ndarray,
        digest: bytes,
    ) -> None:
        base = tower[0]
        fine = line_stream(starts, sizes, base, digest=digest)
        n = len(fine.lines)
        if n == 0:
            return
        # Precomputed links only help fresh kernel batches: a carrying
        # simulator re-links internally, and the scalar path never
        # links.  Gate on the fine length (coarser streams only
        # shrink); an individual coarse stream that falls under the
        # scalar limit just ignores its links.
        can_link = (
            self.engine != "scalar"
            and (self.engine == "kernel" or n > SCALAR_BATCH_LIMIT)
            and not any(
                self.simulators[ls].carrying_state() for ls in tower
            )
        )
        use_links = can_link and self.mode != "streams"
        coarse: dict[int, LineStream] = {}
        if can_link and self.mode == "auto" and len(tower) > 1:
            # Deriving the coarse streams is a shift + collapse each
            # (memoized), so the cost model can weigh real collapsed
            # lengths: the linked plan splits at the fine length once
            # per level, the streams plan re-sorts each collapsed
            # stream inside its simulator.
            coarse = {
                ls: line_stream(starts, sizes, ls, digest=digest)
                for ls in tower[1:]
            }
            split_cost = (len(tower) - 1) * n * _SPLIT_COST_PASSES
            vmax = fine.max_line if fine.min_line >= 0 else None
            passes = 1 if vmax is not None and vmax < (1 << 16) else 2
            sort_cost = passes * sum(len(s) for s in coarse.values())
            use_links = split_cost < sort_cost
        elif can_link and self.mode == "auto":
            use_links = False  # one size: its own sort is the shared sort
        journal = active_journal()
        with journal.timed(
            "designspace",
            line_sizes=list(tower),
            refs=n,
            mode="links" if use_links else "streams",
        ) as extra:
            if use_links:
                self._consume_tower_linked(
                    tower, fine, starts, sizes, extra, coarse
                )
            else:
                for line_size in tower:
                    stream = (
                        fine
                        if line_size == base
                        else coarse.get(line_size)
                        or line_stream(starts, sizes, line_size, digest=digest)
                    )
                    self._consume(line_size, stream, None)

    def _consume_tower_linked(
        self,
        tower: list[int],
        fine: LineStream,
        starts: np.ndarray,
        sizes: np.ndarray,
        extra: dict,
        coarse: Mapping[int, LineStream] | None = None,
    ) -> None:
        """One sort at the coarsest granularity, bit-splits downward."""
        base = tower[0]
        fine_lines = fine.lines
        n = len(fine_lines)
        wanted = {(ls // base).bit_length() - 1: ls for ls in tower}
        kmax = max(wanted)
        vmax = fine.max_line if fine.min_line >= 0 else None
        v = fine_lines if kmax == 0 else fine_lines >> kmax
        order = radix_argsort(v, (vmax >> kmax) if vmax is not None else None)
        vs = v[order]
        splits = 0
        for k in range(kmax, -1, -1):
            neq = vs[1:] != vs[:-1]
            line_size = wanted.get(k)
            if line_size is not None:
                # Adjacent sorted positions with equal values are
                # consecutive occurrences; compress by the mask instead
                # of materializing its (nearly n) indices.
                same = ~neq
                if k == 0:
                    self._consume(
                        line_size, fine, (order[:-1][same], order[1:][same])
                    )
                else:
                    keep = np.empty(n, dtype=bool)
                    keep[0] = True
                    np.not_equal(v[1:], v[:-1], out=keep[1:])
                    # Map fine-position links onto the collapsed coarse
                    # stream: each position's representative is the
                    # kept position at or before it; links that fold
                    # onto one representative were adjacent duplicates.
                    posmap = np.cumsum(keep, dtype=np.int32)
                    posmap -= 1
                    mapped = posmap[order]
                    mapped_from = mapped[:-1]
                    mapped_to = mapped[1:]
                    keep_link = same & (mapped_from != mapped_to)
                    # The collapsed coarse stream equals the memoized
                    # derivation when the caller already built it.
                    stream = (coarse or {}).get(line_size)
                    if stream is None:
                        stream = LineStream(
                            lines=v[keep],
                            accesses=line_access_count(
                                starts, sizes, line_size
                            ),
                        )
                    # >> is monotone, so the extrema coarsen in place.
                    stream.__dict__["max_line"] = fine.max_line >> k
                    stream.__dict__["min_line"] = fine.min_line >> k
                    self._consume(
                        line_size,
                        stream,
                        (mapped_from[keep_link], mapped_to[keep_link]),
                    )
            if k > 0:
                finer = fine_lines if k == 1 else fine_lines >> (k - 1)
                bounds = np.concatenate(
                    (
                        np.zeros(1, dtype=np.intp),
                        np.flatnonzero(neq) + 1,
                        np.array([n], dtype=np.intp),
                    )
                )
                order = split_value_groups(
                    order, np.diff(bounds), (finer & 1).astype(bool)
                )
                v = finer
                vs = v[order]
                splits += 1
        extra["sorts"] = 1
        extra["splits"] = splits

    def _consume(
        self,
        line_size: int,
        stream: LineStream,
        links: tuple[np.ndarray, np.ndarray] | None,
    ) -> None:
        t0 = time.perf_counter()
        self.simulators[line_size].consume(stream, links=links)
        self.consume_seconds[line_size] += time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Queries and state export.
    # ------------------------------------------------------------------

    def _simulator(self, line_size: int) -> CheetahSimulator:
        sim = self.simulators.get(line_size)
        if sim is None:
            raise ConfigurationError(
                f"line size {line_size} was not tracked "
                f"(have {self.line_sizes})"
            )
        return sim

    def misses(self, line_size: int, sets: int, assoc: int) -> int:
        """Misses of cache C(sets, assoc, line_size) on the trace so far."""
        return self._simulator(line_size).misses(sets, assoc)

    def result(self, config: CacheConfig) -> MissResult:
        """Miss result for one tracked configuration."""
        return self._simulator(config.line_size).result(config)

    def results(self) -> dict[CacheConfig, MissResult]:
        """Miss results for every tracked combination, all line sizes."""
        out: dict[CacheConfig, MissResult] = {}
        for line_size in self.line_sizes:
            out.update(self.simulators[line_size].results())
        return out

    def state(self, line_size: int) -> tuple[int, dict[int, list[int]]]:
        """One line size's exportable state (sweep-checkpoint format)."""
        return self._simulator(line_size).state()

    def states(self) -> dict[int, tuple[int, dict[int, list[int]]]]:
        """Exportable per-line-size states (see :meth:`from_states`)."""
        return {ls: self.simulators[ls].state() for ls in self.line_sizes}


def _build_towers(line_sizes: list[int]) -> list[list[int]]:
    """Group ascending line sizes into derivation towers."""
    towers: list[list[int]] = []
    current: list[int] = []
    for line_size in line_sizes:
        if current:
            prev = current[-1]
            ratio = line_size // prev if line_size % prev == 0 else 0
            if 1 <= ratio <= MAX_DERIVE_FACTOR and (ratio & (ratio - 1)) == 0:
                current.append(line_size)
                continue
        if current:
            towers.append(current)
        current = [line_size]
    if current:
        towers.append(current)
    return towers
