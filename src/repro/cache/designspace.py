"""Whole-design-space simulation: every line size from one sort.

:class:`~repro.cache.cheetah.CheetahSimulator` evaluates every cache of
*one* line size in a single trace pass; a design-space sweep still paid
one line-stream expansion plus one value sort per distinct line size.
Both costs are redundant: the line stream at size ``L`` is a
deterministic coarsening of the stream at any divisor of ``L``.

:class:`DesignSpaceSimulator` owns one :class:`CheetahSimulator` per
line size and feeds them all from shared work:

* **One expansion.**  Only the finest line size expands the byte ranges
  (memoized in :mod:`repro.cache.linestream`); every coarser stream is
  one floor division plus an MRU collapse of the finest stream.

* **One sort.**  With fine lines ``F`` and ``v_k = F >> k`` the values
  at granularity ``2^k``, the previous-occurrence links every simulator
  needs fall out of the order sorted by ``(v_k, time)``.  Since
  ``v_{k-1} = 2 v_k + bit``, stably splitting each equal-``v_k`` run by
  that next bit turns the ``(v_k, time)`` order into the
  ``(v_{k-1}, time)`` order — so one ``radix_argsort`` of the
  *coarsest* values plus one O(n) scatter per halving
  (:func:`~repro.cache.stackdist.split_value_groups`) yields every line
  size's sorted order.  (The reverse direction would be a k-way merge:
  fine-sorted runs are ``(fine value, time)``-ordered within a coarse
  value, not time-ordered.)

  Links extracted at granularity ``k`` are positions in ``F``; the
  coarse stream drops adjacent duplicates, so links map through the
  kept-position index (``cumsum(keep) - 1``).  A dropped occurrence's
  previous occurrence is exactly its predecessor — that's what made it
  a duplicate — so dropped links collapse onto their representative and
  the self-links are filtered out.

Line sizes whose ratio to the previous tower member exceeds
:data:`MAX_DERIVE_FACTOR` (or is not a power of two) start a fresh
*tower* with its own sort: a fresh 16-bit radix sort of the (smaller)
coarse stream costs about two bit-split passes over the fine stream, so
chaining splits across wide gaps would be slower than re-sorting.

Within a tower the simulator picks between two equivalent plans by a
measured cost model (``mode="auto"``):

* ``links`` — the one-sort derivation above.  Every split/remap pass
  runs at the *fine* stream's length, so its cost is
  ``levels x len(fine) x SPLIT_COST``.
* ``streams`` — derive each coarser stream through the
  :mod:`~repro.cache.linestream` memo (one shift + one collapse) and
  let each simulator's internal radix sort re-link the *collapsed*
  stream.  Cost is ``sum(len(coarse)) x sort passes``.

MRU-heavy traces collapse coarser streams far below the fine length,
making the small per-size sorts cheaper than full-length splits; the
linked plan wins when streams barely collapse and wide line indices
force multi-pass sorts.  Either plan is bit-identical — the choice is
journaled (``designspace`` event, ``mode`` field) and can be forced for
testing.  One trace fingerprint (:func:`~repro.cache.linestream.trace_digest`)
is shared across every line size of a batch either way.

Every per-line-size simulator stays a plain :class:`CheetahSimulator`
(same histograms, same :meth:`state` export, same checkpoint keys), so
results are bit-identical to independent per-line-size passes and
sweep checkpoints interoperate either way.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cache._util import as_int64_array
from repro.cache.cheetah import (
    SCALAR_BATCH_LIMIT,
    CheetahSimulator,
    _ensure_stacks,
    _PreparedFamily,
)
from repro.cache.config import CacheConfig
from repro.cache.linestream import (
    LineStream,
    line_access_count,
    line_stream,
    trace_digest,
)
from repro.cache.simulator import MissResult
from repro.cache.stackdist import (
    CountProblem,
    radix_argsort,
    split_value_groups,
    stack_distances,
    stack_distances_fused,
)
from repro.errors import ConfigurationError, TraceError
from repro.runtime.executor import (
    ExecutorPolicy,
    Job,
    SharedArrayHandle,
    run_jobs,
    segment_manager,
    shm_available,
)
from repro.runtime.journal import active_journal

__all__ = ["MAX_DERIVE_FACTOR", "TOWER_MODES", "DesignSpaceSimulator"]

#: Derive a line size from the previous tower member only across this
#: ratio; wider jumps (or non-power-of-two ratios) re-sort from scratch.
#: One fresh 16-bit radix sort costs about two single-bit split passes.
MAX_DERIVE_FACTOR = 4

#: Per-tower plan: ``auto``/``fused`` pick links-vs-streams derivation
#: by the cost model; ``links``/``streams`` force one derivation and
#: dispatch one stack-distance kernel per (line size, set count);
#: ``auto`` and ``fused`` additionally concatenate every family's
#: counting problem of a tower into one fused kernel dispatch
#: (:func:`repro.cache.stackdist.stack_distances_fused`) — ``auto``
#: only when the tower stays under :data:`FUSE_MAX_REFS`.
TOWER_MODES = ("auto", "links", "streams", "fused")

#: Fused-dispatch cost model: concatenating a tower's counting problems
#: saves one kernel dispatch per (line size, set count), but the scan
#: streams its uint8 working set once per window offset — and once the
#: concatenation outgrows the cache that per-problem blocks fit in, the
#: extra memory traffic outweighs every saved dispatch.  Measured
#: crossover on this class of machine is ~100k refs (1.7x fused below
#: 50k refs and 24 problems, 0.6x above 200k); ``auto`` fuses only
#: under this ceiling, ``fused`` always does.
FUSE_MAX_REFS = 96 * 1024

#: Cost of one split + link-extraction + remap pass per fine-stream
#: element, in units of one 16-bit radix-sort pass per element
#: (measured on the epic workload: ~79ns vs ~24ns).
_SPLIT_COST_PASSES = 3.0


class DesignSpaceSimulator:
    """Simulate caches of *every* line size in one pass over the trace.

    Parameters
    ----------
    spec:
        ``{line_size: (set_counts, max_assoc)}`` — the same per-group
        metadata a sweep derives from its configurations.
    engine:
        Passed through to every per-line-size
        :class:`~repro.cache.cheetah.CheetahSimulator`.
    mode:
        Tower plan selection — one of :data:`TOWER_MODES`.  ``auto``
        (default) weighs full-length split passes against per-size
        sorts of the collapsed streams, and fuses each tower's counting
        problems into one kernel dispatch when they stay under
        :data:`FUSE_MAX_REFS`; ``links``/``streams`` force one
        derivation plan with per-family dispatch; ``fused`` forces the
        fused dispatch at any size (results are bit-identical every
        way).
    policy:
        Optional :class:`~repro.runtime.executor.ExecutorPolicy`; its
        ``count_parallelism`` (> 1) fans per-line-size counting out
        over the fault-tolerant worker pool with shm-backed streams.
    """

    def __init__(
        self,
        spec: Mapping[int, tuple[Sequence[int], int]],
        engine: str = "auto",
        mode: str = "auto",
        policy: ExecutorPolicy | None = None,
    ):
        if not spec:
            raise ConfigurationError("design-space spec is empty")
        if mode not in TOWER_MODES:
            raise ConfigurationError(
                f"unknown design-space mode {mode!r}; "
                f"expected one of {TOWER_MODES}"
            )
        self.engine = engine
        self.mode = mode
        self.policy = policy
        self.simulators: dict[int, CheetahSimulator] = {
            int(line_size): CheetahSimulator(
                int(line_size), set_counts, max_assoc, engine=engine
            )
            for line_size, (set_counts, max_assoc) in spec.items()
        }
        self._towers = _build_towers(sorted(self.simulators))
        #: Wall seconds spent in each line size's consume (cumulative);
        #: shared derivation time is journaled per tower instead.
        self.consume_seconds: dict[int, float] = {
            line_size: 0.0 for line_size in self.simulators
        }
        #: The stack-distance *kernel* share of consume_seconds — what
        #: run recording reports as ``kernel_s`` per line size.
        self.kernel_seconds: dict[int, float] = {
            line_size: 0.0 for line_size in self.simulators
        }

    @classmethod
    def from_configs(
        cls,
        configs: Iterable[CacheConfig],
        engine: str = "auto",
        mode: str = "auto",
        policy: ExecutorPolicy | None = None,
    ) -> "DesignSpaceSimulator":
        """Build from a configuration list (one group per line size)."""
        groups: dict[int, list[CacheConfig]] = {}
        for config in configs:
            groups.setdefault(config.line_size, []).append(config)
        return cls(
            {
                line_size: (
                    sorted({c.sets for c in group}),
                    max(c.assoc for c in group),
                )
                for line_size, group in groups.items()
            },
            engine=engine,
            mode=mode,
            policy=policy,
        )

    @classmethod
    def from_states(
        cls,
        states: Mapping[int, tuple[int, Mapping[int, Sequence[int]]]],
        engine: str = "auto",
    ) -> "DesignSpaceSimulator":
        """Rebuild a query-only simulator from exported :meth:`states`."""
        sim = cls.__new__(cls)
        sim.engine = engine
        sim.mode = "auto"
        sim.policy = None
        sim.simulators = {
            int(line_size): CheetahSimulator.from_state(
                int(line_size),
                len(next(iter(hists.values()))) - 1,
                accesses,
                hists,
            )
            for line_size, (accesses, hists) in states.items()
        }
        if not sim.simulators:
            raise ConfigurationError("design-space state map is empty")
        sim._towers = _build_towers(sorted(sim.simulators))
        sim.consume_seconds = {ls: 0.0 for ls in sim.simulators}
        sim.kernel_seconds = {ls: 0.0 for ls in sim.simulators}
        return sim

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------

    @property
    def line_sizes(self) -> list[int]:
        return sorted(self.simulators)

    @property
    def towers(self) -> list[list[int]]:
        """Line-size groups sharing one sort (diagnostics/tests)."""
        return [list(tower) for tower in self._towers]

    def simulate(
        self,
        starts: Sequence[int] | Iterable[int],
        sizes: Sequence[int] | Iterable[int],
    ) -> None:
        """Feed a whole range trace to every line size (appendable)."""
        starts_arr = as_int64_array(starts)
        sizes_arr = as_int64_array(sizes)
        if len(starts_arr) != len(sizes_arr):
            raise TraceError("starts and sizes must have equal length")
        digest = trace_digest(starts_arr, sizes_arr)
        policy = self.policy
        if (
            policy is not None
            and policy.count_parallelism > 1
            and len(self.simulators) > 1
            and self.engine != "scalar"
            and shm_available()
            and not any(
                sim.carrying_state() for sim in self.simulators.values()
            )
            and self._simulate_parallel(starts_arr, sizes_arr, digest)
        ):
            return
        for tower in self._towers:
            self._consume_tower(tower, starts_arr, sizes_arr, digest)

    def _consume_tower(
        self,
        tower: list[int],
        starts: np.ndarray,
        sizes: np.ndarray,
        digest: bytes,
    ) -> None:
        base = tower[0]
        fine = line_stream(starts, sizes, base, digest=digest)
        n = len(fine.lines)
        if n == 0:
            return
        # Precomputed links only help fresh kernel batches: a carrying
        # simulator re-links internally, and the scalar path never
        # links.  Gate on the fine length (coarser streams only
        # shrink); an individual coarse stream that falls under the
        # scalar limit just ignores its links.
        can_link = (
            self.engine != "scalar"
            and (self.engine == "kernel" or n > SCALAR_BATCH_LIMIT)
            and not any(
                self.simulators[ls].carrying_state() for ls in tower
            )
        )
        use_links = can_link and self.mode != "streams"
        # Fused dispatch pools every family's counting problem of the
        # tower into one stack_distances_fused call (one scan/expand/
        # dominance pass and, for unlinked problems, one shared sort).
        # It composes with either derivation plan and is bit-identical.
        # Staging the problems is free (the prepare/fold split defers
        # the kernels either way), so auto mode collects them and lets
        # _finish_fused apply the FUSE_MAX_REFS cost model once the
        # real ref counts are known.
        fuse = self.mode in ("auto", "fused") and self.engine != "scalar"
        derive_auto = self.mode in ("auto", "fused")
        coarse: dict[int, LineStream] = {}
        if can_link and derive_auto and len(tower) > 1:
            # Deriving the coarse streams is a shift + collapse each
            # (memoized), so the cost model can weigh real collapsed
            # lengths: the linked plan splits at the fine length once
            # per level, the streams plan re-sorts each collapsed
            # stream inside its simulator.
            coarse = {
                ls: line_stream(starts, sizes, ls, digest=digest)
                for ls in tower[1:]
            }
            split_cost = (len(tower) - 1) * n * _SPLIT_COST_PASSES
            vmax = fine.max_line if fine.min_line >= 0 else None
            passes = 1 if vmax is not None and vmax < (1 << 16) else 2
            sort_cost = passes * sum(len(s) for s in coarse.values())
            use_links = split_cost < sort_cost
        elif can_link and derive_auto:
            use_links = False  # one size: its own sort is the shared sort
        journal = active_journal()
        collect: list[tuple[int, _PreparedFamily]] | None = (
            [] if fuse else None
        )
        with journal.timed(
            "designspace",
            line_sizes=list(tower),
            refs=n,
        ) as extra:
            # In the dict, not a timed() field: _finish_fused rewrites
            # it when the counting cost model rejects the fused plan.
            extra["mode"] = ("fused-" if fuse else "") + (
                "links" if use_links else "streams"
            )
            if use_links:
                self._consume_tower_linked(
                    tower, fine, starts, sizes, extra, coarse, collect
                )
            else:
                for line_size in tower:
                    stream = (
                        fine
                        if line_size == base
                        else coarse.get(line_size)
                        or line_stream(starts, sizes, line_size, digest=digest)
                    )
                    self._consume(line_size, stream, None, collect)
            if collect:
                self._finish_fused(collect, extra)

    def _consume_tower_linked(
        self,
        tower: list[int],
        fine: LineStream,
        starts: np.ndarray,
        sizes: np.ndarray,
        extra: dict,
        coarse: Mapping[int, LineStream] | None = None,
        collect: list[tuple[int, _PreparedFamily]] | None = None,
    ) -> None:
        """One sort at the coarsest granularity, bit-splits downward."""
        base = tower[0]
        fine_lines = fine.lines
        n = len(fine_lines)
        wanted = {(ls // base).bit_length() - 1: ls for ls in tower}
        kmax = max(wanted)
        vmax = fine.max_line if fine.min_line >= 0 else None
        v = fine_lines if kmax == 0 else fine_lines >> kmax
        order = radix_argsort(v, (vmax >> kmax) if vmax is not None else None)
        vs = v[order]
        splits = 0
        for k in range(kmax, -1, -1):
            neq = vs[1:] != vs[:-1]
            line_size = wanted.get(k)
            if line_size is not None:
                # Adjacent sorted positions with equal values are
                # consecutive occurrences; compress by the mask instead
                # of materializing its (nearly n) indices.
                same = ~neq
                if k == 0:
                    self._consume(
                        line_size,
                        fine,
                        (order[:-1][same], order[1:][same]),
                        collect,
                    )
                else:
                    keep = np.empty(n, dtype=bool)
                    keep[0] = True
                    np.not_equal(v[1:], v[:-1], out=keep[1:])
                    # Map fine-position links onto the collapsed coarse
                    # stream: each position's representative is the
                    # kept position at or before it; links that fold
                    # onto one representative were adjacent duplicates.
                    posmap = np.cumsum(keep, dtype=np.int32)
                    posmap -= 1
                    mapped = posmap[order]
                    mapped_from = mapped[:-1]
                    mapped_to = mapped[1:]
                    keep_link = same & (mapped_from != mapped_to)
                    # The collapsed coarse stream equals the memoized
                    # derivation when the caller already built it.
                    stream = (coarse or {}).get(line_size)
                    if stream is None:
                        stream = LineStream(
                            lines=v[keep],
                            accesses=line_access_count(
                                starts, sizes, line_size
                            ),
                        )
                    # >> is monotone, so the extrema coarsen in place.
                    stream.__dict__["max_line"] = fine.max_line >> k
                    stream.__dict__["min_line"] = fine.min_line >> k
                    self._consume(
                        line_size,
                        stream,
                        (mapped_from[keep_link], mapped_to[keep_link]),
                        collect,
                    )
            if k > 0:
                finer = fine_lines if k == 1 else fine_lines >> (k - 1)
                bounds = np.concatenate(
                    (
                        np.zeros(1, dtype=np.intp),
                        np.flatnonzero(neq) + 1,
                        np.array([n], dtype=np.intp),
                    )
                )
                order = split_value_groups(
                    order, np.diff(bounds), (finer & 1).astype(bool)
                )
                v = finer
                vs = v[order]
                splits += 1
        extra["sorts"] = 1
        extra["splits"] = splits

    def _consume(
        self,
        line_size: int,
        stream: LineStream,
        links: tuple[np.ndarray, np.ndarray] | None,
        collect: list[tuple[int, _PreparedFamily]] | None = None,
    ) -> None:
        t0 = time.perf_counter()
        sim = self.simulators[line_size]
        if collect is None:
            sim.consume(stream, links=links)
        else:
            for prep in sim.prepare_consume(stream, links):
                collect.append((line_size, prep))
        self.consume_seconds[line_size] += time.perf_counter() - t0

    def _finish_fused(
        self, collect: list[tuple[int, _PreparedFamily]], extra: dict
    ) -> None:
        """Count every staged family of a tower in one fused dispatch.

        ``auto`` mode applies the :data:`FUSE_MAX_REFS` cost model here,
        where the real per-family ref counts are known: towers whose
        concatenated counting problems would outgrow cache fall back to
        per-family dispatch (bit-identical, journaled as ordinary
        ``stackdist`` events).  ``mode="fused"`` always fuses.
        """
        journal = active_journal()
        total_refs = sum(len(prep.part) for _, prep in collect)
        if self.mode != "fused" and total_refs > FUSE_MAX_REFS:
            extra["mode"] = str(extra["mode"]).replace("fused-", "", 1)
            for line_size, prep in collect:
                t0 = time.perf_counter()
                with journal.timed(
                    "stackdist", line_size=line_size, nsets=prep.fam.nsets
                ) as sx:
                    dist, info = stack_distances(
                        prep.part,
                        prep.seg_lens,
                        prep.fam.max_assoc,
                        vmax=prep.vmax,
                        links=prep.links,
                    )
                    sx.update(prep.fold(dist, info))
                elapsed = time.perf_counter() - t0
                self.consume_seconds[line_size] += elapsed
                self.kernel_seconds[line_size] += elapsed
            return
        with journal.timed(
            "stackdist_fused",
            line_sizes=sorted({ls for ls, _ in collect}),
        ) as fx:
            t0 = time.perf_counter()
            results, fused_info = stack_distances_fused(
                [
                    CountProblem(
                        prep.part,
                        prep.seg_lens,
                        prep.fam.max_assoc,
                        vmax=prep.vmax,
                        links=prep.links,
                    )
                    for _, prep in collect
                ]
            )
            by_path: dict[str, int] = {}
            for (_, prep), (dist, info) in zip(collect, results):
                prep.fold(dist, info)
                by_path[info["path"]] = by_path.get(info["path"], 0) + 1
            wall = time.perf_counter() - t0
            fx.update(fused_info)
            fx["by_path"] = by_path
        extra["fused_problems"] = len(collect)
        # The fused kernel ran outside the per-size _consume timers;
        # attribute its wall clock by each size's share of the refs.
        per_size: dict[int, int] = {}
        for line_size, prep in collect:
            per_size[line_size] = per_size.get(line_size, 0) + len(prep.part)
        total = sum(per_size.values()) or 1
        for line_size, refs in per_size.items():
            share = wall * refs / total
            self.consume_seconds[line_size] += share
            self.kernel_seconds[line_size] += share

    def _simulate_parallel(
        self, starts: np.ndarray, sizes: np.ndarray, digest: bytes
    ) -> bool:
        """Fan per-line-size counting out over the worker pool.

        Streams for every line size derive in the parent (memoized
        cross-size derivation) and ship zero-copy through one shared
        segment; each worker counts one line size with a fresh
        :class:`CheetahSimulator` and returns its histograms plus
        materialized LRU stacks, folded back in ascending line-size
        order so results are independent of completion order.  Jobs
        that fail terminally (after the policy's retries) are recounted
        in-process with the same kernel — bit-identical either way.
        Returns False (nothing consumed) when the trace is empty.
        """
        policy = self.policy
        assert policy is not None
        line_sizes = self.line_sizes
        streams = {
            ls: line_stream(starts, sizes, ls, digest=digest)
            for ls in line_sizes
        }
        if not any(len(s.lines) for s in streams.values()):
            return False
        journal = active_journal()
        manager = segment_manager()
        key = f"dscount:{digest.hex()}:{'-'.join(map(str, line_sizes))}"
        with journal.timed(
            "designspace",
            line_sizes=line_sizes,
            refs=len(streams[line_sizes[0]].lines),
            mode="parallel",
            parallelism=policy.count_parallelism,
        ) as extra:
            handle = manager.acquire(
                key,
                {f"lines_{ls}": streams[ls].lines for ls in line_sizes},
                journal,
            )
            try:
                jobs = [
                    Job(
                        key=ls,
                        fn=_count_stream_job,
                        args=(
                            ls,
                            list(self.simulators[ls].set_counts),
                            self.simulators[ls].max_assoc,
                            self.engine,
                            handle,
                            f"lines_{ls}",
                            streams[ls].accesses,
                        ),
                    )
                    for ls in line_sizes
                ]
                t0 = time.perf_counter()
                outcome = run_jobs(
                    jobs,
                    replace(policy, max_workers=policy.count_parallelism),
                    journal=journal,
                )
                wall = time.perf_counter() - t0
                failed = []
                for ls in line_sizes:
                    result = outcome[ls]
                    if result.ok:
                        self._fold_counted(ls, result.value)
                        self.consume_seconds[ls] += result.wall_s
                    else:
                        failed.append(ls)
                for ls in failed:
                    self._consume(ls, streams[ls], None)
            finally:
                manager.release(key, journal)
            extra["failed"] = len(failed)
            extra["pool_wall_s"] = wall
        return True

    def _fold_counted(
        self,
        line_size: int,
        payload: tuple[int, dict[int, tuple[list[int], list[list[int]]]]],
    ) -> None:
        """Adopt one worker's counting result for one line size."""
        accesses, families = payload
        sim = self.simulators[line_size]
        sim.accesses += int(accesses)
        for nsets, (hist, stacks) in families.items():
            fam = sim._families[int(nsets)]
            fam.hist = [a + b for a, b in zip(fam.hist, hist)]
            fam.stacks = [list(stack) for stack in stacks]
            fam.pending = None

    # ------------------------------------------------------------------
    # Queries and state export.
    # ------------------------------------------------------------------

    def _simulator(self, line_size: int) -> CheetahSimulator:
        sim = self.simulators.get(line_size)
        if sim is None:
            raise ConfigurationError(
                f"line size {line_size} was not tracked "
                f"(have {self.line_sizes})"
            )
        return sim

    def misses(self, line_size: int, sets: int, assoc: int) -> int:
        """Misses of cache C(sets, assoc, line_size) on the trace so far."""
        return self._simulator(line_size).misses(sets, assoc)

    def result(self, config: CacheConfig) -> MissResult:
        """Miss result for one tracked configuration."""
        return self._simulator(config.line_size).result(config)

    def results(self) -> dict[CacheConfig, MissResult]:
        """Miss results for every tracked combination, all line sizes."""
        out: dict[CacheConfig, MissResult] = {}
        for line_size in self.line_sizes:
            out.update(self.simulators[line_size].results())
        return out

    def state(self, line_size: int) -> tuple[int, dict[int, list[int]]]:
        """One line size's exportable state (sweep-checkpoint format)."""
        return self._simulator(line_size).state()

    def states(self) -> dict[int, tuple[int, dict[int, list[int]]]]:
        """Exportable per-line-size states (see :meth:`from_states`)."""
        return {ls: self.simulators[ls].state() for ls in self.line_sizes}


def _count_stream_job(
    line_size: int,
    set_counts: list[int],
    max_assoc: int,
    engine: str,
    handle: SharedArrayHandle,
    field: str,
    accesses: int,
) -> tuple[int, dict[int, tuple[list[int], list[list[int]]]]]:
    """Worker: count one line size's stream from a shared segment.

    Returns ``(accesses, {nsets: (hist, stacks)})`` with the LRU stacks
    materialized — plain lists only, so nothing in the result references
    the shared segment after the handle closes, and the parent simulator
    stays appendable (a later batch splices the stacks back in exactly
    like any carried state).
    """
    with handle.open() as arrays:
        stream = LineStream(lines=arrays[field], accesses=int(accesses))
        sim = CheetahSimulator(
            line_size, set_counts, max_assoc, engine=engine
        )
        sim.consume(stream)
        out: dict[int, tuple[list[int], list[list[int]]]] = {}
        for nsets, fam in sim._families.items():
            _ensure_stacks(fam)
            out[nsets] = (
                list(fam.hist),
                [[int(line) for line in stack] for stack in fam.stacks],
            )
        return sim.accesses, out


def _build_towers(line_sizes: list[int]) -> list[list[int]]:
    """Group ascending line sizes into derivation towers."""
    towers: list[list[int]] = []
    current: list[int] = []
    for line_size in line_sizes:
        if current:
            prev = current[-1]
            ratio = line_size // prev if line_size % prev == 0 else 0
            if 1 <= ratio <= MAX_DERIVE_FACTOR and (ratio & (ratio - 1)) == 0:
                current.append(line_size)
                continue
        if current:
            towers.append(current)
        current = [line_size]
    if current:
        towers.append(current)
    return towers
