"""Small helpers shared by the cache simulators.

Historically :mod:`repro.cache.cheetah` imported the private ``_as_list``
helper from :mod:`repro.cache.simulator`; both now import from here so
neither module reaches into the other's internals.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def as_int_list(values: Sequence[int] | Iterable[int]) -> list[int]:
    """Coerce a sequence (possibly a numpy array) to a plain list of ints.

    Plain-int list iteration is measurably faster than elementwise numpy
    indexing in the simulator inner loops.
    """
    tolist = getattr(values, "tolist", None)
    if callable(tolist):
        return tolist()
    return list(values)


def as_int64_array(values: Sequence[int] | Iterable[int]) -> np.ndarray:
    """Coerce a sequence to a contiguous int64 numpy array."""
    return np.ascontiguousarray(np.asarray(values, dtype=np.int64))
