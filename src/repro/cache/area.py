"""Cache area/cost model ("CACTI-lite").

The paper notes that "the area cost of a particular cache configuration may
be readily computed from the cache parameters" inside the Evaluators module
(Section 5.1).  This transparent model captures the first-order effects the
spacewalker needs: cost grows with capacity, with associativity (extra tag
comparators and wider muxes), and quadratically with port count (each port
replicates wordlines/bitlines).
"""

from __future__ import annotations

import math

from repro.cache.config import CacheConfig

#: Cost units per kilobyte of data RAM.
_DATA_COST_PER_KB = 1.0

#: Cost units per kilobyte-equivalent of tag RAM.
_TAG_COST_PER_KB = 1.2

#: Address width assumed for tag sizing.
_ADDRESS_BITS = 32

#: Per-way comparator + mux overhead, in cost units.
_WAY_OVERHEAD = 0.15


def cache_cost(config: CacheConfig) -> float:
    """Area cost of a cache in the same arbitrary units as processor cost.

    tag bits per line = address bits - log2(sets) - log2(line size); the
    tag array is costed like RAM, associativity adds per-way overhead,
    and multi-porting multiplies the whole array cost by ``ports**1.8``
    (between linear replication and the quadratic worst case).
    """
    data_kb = config.size_bytes / 1024.0
    tag_bits = _ADDRESS_BITS - int(math.log2(config.sets)) - int(
        math.log2(config.line_size)
    )
    tag_bits = max(tag_bits, 1)
    lines = config.sets * config.assoc
    # +2 for valid and LRU state bits.
    tag_kb = lines * (tag_bits + 2) / 8.0 / 1024.0
    array_cost = _DATA_COST_PER_KB * data_kb + _TAG_COST_PER_KB * tag_kb
    way_cost = _WAY_OVERHEAD * config.assoc
    port_factor = config.ports ** 1.8
    return (array_cost + way_cost) * port_factor
