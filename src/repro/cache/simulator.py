"""Direct set-associative LRU cache simulator.

This is the plain, obviously-correct simulator; it plays the role the
IMPACT cache simulator plays in the paper's Section 6.1, cross-validating
the fast single-pass :mod:`repro.cache.cheetah` simulator.

Traces are *range traces*: parallel sequences ``starts[i], sizes[i]`` of
byte ranges.  Each range touches the cache lines it overlaps, once each in
ascending order.  A one-word data reference is a range of
:data:`~repro.cache.config.WORD_BYTES` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cache._util import as_int64_array, as_int_list
from repro.cache.config import CacheConfig
from repro.cache.linestream import line_stream
from repro.errors import TraceError
from repro.trace.sampling import SamplePlan, extrapolate, plan_windows

#: Backwards-compatible alias; the helper now lives in repro.cache._util
#: so repro.cache.cheetah no longer imports simulator internals.
_as_list = as_int_list


@dataclass(frozen=True)
class MissResult:
    """Outcome of simulating one cache on one trace."""

    config: CacheConfig
    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per line access; 0.0 for an empty trace."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def estimated(self) -> bool:
        """Whether the counts are a sampled extrapolation, not exact."""
        return False


@dataclass(frozen=True)
class SampledMissResult(MissResult):
    """Extrapolated outcome of an interval-sampled simulation.

    ``accesses`` and ``misses`` are scaled from the measured windows to
    the whole trace by the sampled fraction; ``error`` is the relative
    standard error of the miss estimate across intervals (``None`` when
    one interval or zero misses leave no spread to estimate from).
    """

    error: float | None = None
    intervals: int = 1
    sampled_ranges: int = 0
    total_ranges: int = 0

    @property
    def estimated(self) -> bool:
        return True

    @property
    def sampled_fraction(self) -> float:
        if self.total_ranges == 0:
            return 1.0
        return self.sampled_ranges / self.total_ranges


class CacheSimulator:
    """Stateful LRU set-associative cache.

    The per-set state is a list ordered least- to most-recently-used;
    Python list operations are fast for the small associativities
    (1..16) in the design space.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: list[list[int]] = [[] for _ in range(config.sets)]
        self.accesses = 0
        self.misses = 0

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        self._sets = [[] for _ in range(self.config.sets)]
        self.accesses = 0
        self.misses = 0

    def access_line(self, line: int) -> bool:
        """Touch one line; return True on hit."""
        self.accesses += 1
        index = line % self.config.sets
        lru = self._sets[index]
        if line in lru:
            lru.remove(line)
            lru.append(line)
            return True
        self.misses += 1
        if len(lru) >= self.config.assoc:
            del lru[0]
        lru.append(line)
        return False

    def access_range(self, start: int, size: int) -> int:
        """Touch every line overlapping ``[start, start+size)``.

        Returns the number of misses incurred.  ``size`` must be positive.
        """
        if size <= 0:
            raise TraceError(f"range size must be positive, got {size}")
        line_size = self.config.line_size
        first = start // line_size
        last = (start + size - 1) // line_size
        before = self.misses
        for line in range(first, last + 1):
            self.access_line(line)
        return self.misses - before

    def contains_line(self, line: int) -> bool:
        """True if the line is currently resident (no LRU update)."""
        return line in self._sets[line % self.config.sets]

    def resident_lines(self) -> set[int]:
        """The set of all currently resident lines."""
        out: set[int] = set()
        for lru in self._sets:
            out.update(lru)
        return out

    def result(self) -> MissResult:
        """Snapshot the counters as an immutable result."""
        return MissResult(self.config, self.accesses, self.misses)


def _lru_consume(
    sets: list[list[int]], nsets: int, assoc: int, lines: Sequence[int]
) -> int:
    """Feed a collapsed line stream through LRU state; return misses."""
    misses = 0
    for line in lines:
        lru = sets[line % nsets]
        if line in lru:
            if lru[-1] != line:
                lru.remove(line)
                lru.append(line)
        else:
            misses += 1
            if len(lru) >= assoc:
                del lru[0]
            lru.append(line)
    return misses


def simulate_trace(
    config: CacheConfig,
    starts: Sequence[int] | Iterable[int],
    sizes: Sequence[int] | Iterable[int],
    *,
    sample: SamplePlan | None = None,
) -> MissResult:
    """Simulate a full range trace on a single cache configuration.

    This is the hot path for "actual" and "dilated" miss measurement.
    The byte ranges are expanded to a line stream by the vectorized
    :func:`repro.cache.linestream.line_stream` kernel (which also drops
    immediate repeats — guaranteed depth-0 hits with no LRU effect), so
    the Python loop below only sees distinct consecutive lines.

    With ``sample`` (a :class:`~repro.trace.sampling.SamplePlan`), only
    the plan's windows are simulated — each warmed by its warm-up prefix
    with LRU state carried into the measured stretch — and the result is
    a :class:`SampledMissResult` extrapolating the counts to the whole
    trace with a cross-interval error estimate.
    """
    starts_arr = as_int64_array(starts)
    sizes_arr = as_int64_array(sizes)
    if len(starts_arr) != len(sizes_arr):
        raise TraceError(
            f"starts ({len(starts_arr)}) and sizes ({len(sizes_arr)}) "
            "must have equal length"
        )
    nsets = config.sets
    assoc = config.assoc

    if sample is None:
        stream = line_stream(starts_arr, sizes_arr, config.line_size)
        sets: list[list[int]] = [[] for _ in range(nsets)]
        misses = _lru_consume(sets, nsets, assoc, stream.lines.tolist())
        return MissResult(config, stream.accesses, misses)

    total = len(starts_arr)
    windows = plan_windows(total, sample)
    if not windows:
        return SampledMissResult(config, 0, 0, error=None, intervals=0)
    per_interval: list[tuple[int, int, int]] = []
    for w in windows:
        sets = [[] for _ in range(nsets)]
        if w.warm_lo < w.lo:
            warm = line_stream(
                starts_arr[w.warm_lo : w.lo],
                sizes_arr[w.warm_lo : w.lo],
                config.line_size,
                memoize=False,
            )
            _lru_consume(sets, nsets, assoc, warm.lines.tolist())
        stream = line_stream(
            starts_arr[w.lo : w.hi],
            sizes_arr[w.lo : w.hi],
            config.line_size,
            memoize=False,
        )
        misses = _lru_consume(sets, nsets, assoc, stream.lines.tolist())
        per_interval.append((w.measured, stream.accesses, misses))
    est = extrapolate(per_interval, total)
    return SampledMissResult(
        config,
        est.accesses,
        est.misses,
        error=est.error,
        intervals=est.intervals,
        sampled_ranges=est.sampled_ranges,
        total_ranges=est.total_ranges,
    )
