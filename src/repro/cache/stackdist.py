"""Offline, fully vectorized truncated-LRU stack-distance kernel.

This module removes the last per-reference Python loop from the
single-pass cache engine (:mod:`repro.cache.cheetah`): instead of
touching per-set LRU stacks one reference at a time, it computes the
stack distance of *every* reference of a set-partitioned line stream
with whole-array numpy operations, then bin-counts the distances into
the familiar depth histogram.

Identity
--------
Take a stream partitioned by set (segments contiguous, original time
order preserved within each segment).  Because a line's value determines
its set, equal values always live in the same segment, so linking every
reference ``i`` to the previous occurrence ``P_i`` of the same line (one
stable value sort) never crosses a segment boundary — and neither does
the reuse window ``(P_i, i)``.  The LRU stack distance of ``i`` is the
number of distinct lines referenced inside that window.  Every distinct
line in the window has exactly one *last* occurrence there, i.e. one
position ``j`` whose next occurrence ``nxt_j`` is at or after ``i``;
with ``gap_j = nxt_j - j`` that membership test becomes the shifted
comparison ``gap[i - o] >= o``:

    dist_i = #{ o in 1..wl_i : gap[i - o] >= o },   wl_i = i - P_i - 1

A cold reference (no previous occurrence) misses every cache, and the
existing ``max_assoc`` truncation means any distance >= ``max_assoc``
lands in the shared "deeper-or-absent" bucket, so distances only need to
be *resolved* up to ``max_assoc`` — clamping the exact infinite-stack
distance is bit-identical to simulating truncated stacks (truncation
preserves the order of the top ``max_assoc`` entries, and a line below
that depth is evicted in the truncated simulation, i.e. absent).

Tiers
-----
1. **Tail scan** — accumulate the summand above for ``o = 1..W`` with
   clipped ``uint8`` compares (sequential access, no gathers).  This is
   exact for every reference with ``wl <= W``; for longer windows it
   counts distinct lines in the window *tail*, a lower bound, so a count
   reaching ``max_assoc`` already proves the deeper-or-absent bucket.
   The scan widens adaptively (up to :data:`SCAN_MAX_WINDOW`) while many
   references remain unresolved.
2. **Window expansion** — the residue (long window, tail count still
   below ``max_assoc``) is expanded explicitly with ``repeat``/``arange``
   index arithmetic under a total-size budget, growing a per-reference
   cap geometrically so cheap residues never pay for pathological ones.
3. **Dominance fallback** — if the residue exceeds the budget, the whole
   family is recomputed with an exact offline dominance count
   (:func:`distances_dominance`): distance = (left neighbours with a
   smaller previous-occurrence slot) - (own slot), counted by a
   bit-sliced MSD radix pass in O(n log n) array operations.

The kernel is exact — histograms stay bit-identical to the scalar
``_touch`` path and to :mod:`repro.cache._legacy` — and the property
suite in ``tests/cache/test_stackdist.py`` pins that equivalence on
adversarial streams.  ``docs/PERFORMANCE.md`` documents the design.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "SCAN_BASE_WINDOW",
    "SCAN_MAX_WINDOW",
    "EXPAND_BUDGET_FACTOR",
    "count_left_less",
    "distances_dominance",
    "partition_by_set",
    "radix_argsort",
    "refine_partition",
    "split_value_groups",
    "stack_distances",
]

#: Initial tail-scan window (offsets scanned for every reference).
SCAN_BASE_WINDOW = 16

#: Hard ceiling for the adaptive tail scan; must stay < 255 because the
#: scan compares against uint8-clipped gaps and window lengths.
SCAN_MAX_WINDOW = 128

#: Expansion budget: total expanded window cells per kernel call,
#: as a multiple of the stream length, before falling back to the
#: dominance count.
EXPAND_BUDGET_FACTOR = 32

#: Group size below which the bit-sliced radix pass switches to
#: shifted-compare brute force.
_DOMINANCE_BRUTE_BELOW = 16


def radix_argsort(values: np.ndarray, vmax: int | None = None) -> np.ndarray:
    """Stable argsort of a non-negative integer array.

    Numpy's stable sort on ``uint16`` keys is a radix sort (~7x faster
    than comparison-sorting ``int32``), so wide values are sorted with
    two chained 16-bit passes.  Falls back to a plain stable argsort
    when values may be negative.
    """
    if values.size == 0:
        return np.empty(0, dtype=np.intp)
    if vmax is None:
        vmax = int(values.max())
    if vmax < 0 or int(values.min()) < 0:
        return np.argsort(values, kind="stable")
    lo = (values & 0xFFFF).astype(np.uint16)
    order = np.argsort(lo, kind="stable")
    if vmax >> 16:
        hi = (values >> 16).astype(np.uint16)
        order = order[np.argsort(hi[order], kind="stable")]
        if vmax >> 32:  # pragma: no cover - >48-bit line indices
            top = (values >> 32).astype(np.uint32)
            order = order[np.argsort(top[order], kind="stable")]
    return order


def partition_by_set(
    lines: np.ndarray, nsets: int, vmax: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Partition a line stream by set index, keeping within-set order.

    Returns ``(part, seg_lens, seg_sets, order)``: the reordered stream,
    one segment per set (possibly empty, so ``len(seg_lens) == nsets``),
    the set index of each segment, and the stable permutation such that
    ``part == lines[order]`` (``None`` for the identity when
    ``nsets == 1``).  Segment starts are ``cumsum(seg_lens) - seg_lens``.
    """
    n = len(lines)
    if nsets == 1:
        return (
            lines, np.array([n], dtype=np.intp), np.zeros(1, dtype=np.intp),
            None,
        )
    sidx = lines & (nsets - 1)
    key = sidx.astype(np.uint16) if nsets <= (1 << 16) else sidx
    order = np.argsort(key, kind="stable")
    seg_lens = np.bincount(key, minlength=nsets).astype(np.intp)
    return lines[order], seg_lens, np.arange(nsets, dtype=np.intp), order


def refine_partition(
    part: np.ndarray,
    seg_lens: np.ndarray,
    seg_sets: np.ndarray,
    old_nsets: int,
    new_nsets: int,
    order: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Refine a set partition from ``old_nsets`` to ``new_nsets`` sets.

    The set bits of family ``2k`` extend those of family ``k``, so each
    segment splits by one extra line-index bit per doubling — a stable
    O(n) scatter instead of a fresh argsort.  Segment order after a
    split is (parent order, new bit), which is irrelevant to the kernel;
    ``seg_sets`` tracks each segment's true set index.  When ``order``
    (the ``lines -> part`` permutation) is given it is carried through
    every split, so callers can keep mapping stream positions into the
    refined layout.
    """
    if new_nsets % old_nsets or new_nsets < old_nsets:
        raise ValueError(
            f"cannot refine a {old_nsets}-set partition into {new_nsets} sets"
        )
    m = len(part)
    bit = old_nsets
    while bit < new_nsets:
        nseg = len(seg_lens)
        ends = np.cumsum(seg_lens)
        starts = ends - seg_lens
        ones = (part & bit) != 0
        zeros = ~ones
        czpad = np.empty(m + 1, dtype=np.int32)
        czpad[0] = 0
        np.cumsum(zeros, out=czpad[1:])            # zeros up to position
        zex = czpad[:m]                            # zeros strictly before
        ztot = czpad[ends] - czpad[starts]         # zeros per segment
        seg_id = np.repeat(np.arange(nseg, dtype=np.intp), seg_lens)
        # dest(zero)  = start + zeros-before-in-segment
        #             = zex + (start - zeros-before-segment)
        # dest(one)   = start + ztot + ones-before-in-segment
        #             = i + (ztot + zeros-before-segment) - zex
        base_zero = (starts - czpad[starts]).astype(np.int32)
        base_one = (ztot + czpad[starts]).astype(np.int32)
        ar = np.arange(m, dtype=np.int32)
        dest = np.where(
            ones, ar + base_one[seg_id] - zex, zex + base_zero[seg_id]
        ).astype(np.intp)
        new_part = np.empty_like(part)
        new_part[dest] = part
        part = new_part
        if order is not None:
            new_order = np.empty_like(order)
            new_order[dest] = order
            order = new_order
        new_lens = np.empty(2 * nseg, dtype=np.intp)
        new_lens[0::2] = ztot
        new_lens[1::2] = seg_lens - ztot
        new_sets = np.empty(2 * nseg, dtype=np.intp)
        new_sets[0::2] = seg_sets
        new_sets[1::2] = seg_sets + bit
        seg_lens, seg_sets = new_lens, new_sets
        bit <<= 1
    return part, seg_lens, seg_sets, order


def split_value_groups(
    order: np.ndarray, group_lens: np.ndarray, ones: np.ndarray
) -> np.ndarray:
    """Stable split of consecutive equal-value groups by one extra bit.

    ``order`` is a permutation of stream positions sorted by
    ``(value, time)`` — equal values contiguous, time-ascending within
    each run; ``group_lens`` are those runs' lengths; ``ones`` flags,
    per *stream* position, the next lower value bit.  Each group
    stably partitions into its zero half then its one half, turning
    ``(v, time)`` order into ``(2v + bit, time)`` order — the sorted
    order one granularity finer — with one O(n) scatter instead of a
    fresh sort.  This is how the whole-design-space simulator derives
    every line size's previous-occurrence links from a single sort of
    the coarsest values (see :mod:`repro.cache.designspace`).
    """
    m = len(order)
    if m == 0:
        return order
    ob = ones[order]
    zeros = ~ob
    ends = np.cumsum(group_lens)
    starts = ends - group_lens
    # int32 bookkeeping throughout: destinations index a stream that is
    # always far below 2**31 elements, and halving the temporaries'
    # width roughly halves this pass's memory traffic.
    czpad = np.empty(m + 1, dtype=np.int32)
    czpad[0] = 0
    np.cumsum(zeros, out=czpad[1:])            # zeros up to position
    zex = czpad[:m]                            # zeros strictly before
    ztot = czpad[ends] - czpad[starts]         # zeros per group
    seg_id = np.repeat(
        np.arange(len(group_lens), dtype=np.int32), group_lens
    )
    # Same scatter arithmetic as refine_partition (which splits by a
    # *set* bit of the partitioned values; here the bit arrives as a
    # separate mask because it sits below the sorted values' lsb).
    base_zero = (starts - czpad[starts]).astype(np.int32)
    base_one = (ztot + czpad[starts]).astype(np.int32)
    ar = np.arange(m, dtype=np.int32)
    dest = np.where(ob, ar + base_one[seg_id] - zex, zex + base_zero[seg_id])
    new_order = np.empty_like(order)
    new_order[dest] = order
    return new_order


def count_left_less(
    v: np.ndarray,
    g0: np.ndarray,
    gnext: np.ndarray,
    brute_below: int = _DOMINANCE_BRUTE_BELOW,
) -> np.ndarray:
    """``c[i] = #{j < i : same group, v[j] < v[i]}`` for distinct-in-group v.

    MSD binary radix: at each bit, the ones of a group gain the count of
    zeros before them (all smaller), then every group stably partitions
    by the bit, preserving original relative order so "before" keeps its
    meaning.  Small residual groups finish with shifted compares.
    """
    m = len(v)
    c = np.zeros(m, np.int32)
    if m == 0:
        return c
    v = v.astype(np.int32, copy=True)
    idx = np.arange(m, dtype=np.intp)
    ar = np.arange(m, dtype=np.intp)
    g0 = g0.astype(np.intp, copy=True)
    gnext = gnext.astype(np.intp, copy=True)
    for bit in range(int(v.max()).bit_length() - 1, -1, -1):
        if int((gnext - g0).max()) <= brute_below:
            break
        ones = (v >> bit) & 1
        zeros = 1 - ones
        cz = np.cumsum(zeros, dtype=np.intp)
        zex = cz - zeros                    # zeros strictly before, global
        zstart = zex[g0]
        zb = zex - zstart                   # zeros strictly before, in group
        c += (zb * ones).astype(np.int32)
        zingrp = cz[gnext - 1] - zstart     # zeros in the whole group
        ones_b = ones.astype(bool)
        left = g0 + zingrp
        ob = ar - g0 - zb
        dest = np.where(ones_b, left + ob, g0 + zb)
        ng0 = np.where(ones_b, left, g0)
        ngnext = np.where(ones_b, gnext, left)
        v2 = np.empty_like(v); v2[dest] = v
        c2 = np.empty_like(c); c2[dest] = c
        i2 = np.empty_like(idx); i2[dest] = idx
        a2 = np.empty_like(g0); a2[dest] = ng0
        b2 = np.empty_like(gnext); b2[dest] = ngnext
        v, c, idx, g0, gnext = v2, c2, i2, a2, b2
    for off in range(1, int((gnext - g0).max())):
        ok = (v[:-off] < v[off:]) & (ar[off:] - off >= g0[off:])
        c[off:] += ok
    out = np.empty(m, np.int32)
    out[idx] = c
    return out


def distances_dominance(
    part: np.ndarray, seg_lens: np.ndarray, max_assoc: int
) -> np.ndarray:
    """Exact clamped stack distances via offline dominance counting.

    For non-cold reference ``i`` with previous-occurrence slot
    ``V_i = P_i + 1`` (segment-local), every window member contributes
    one position ``j < i`` in the segment with ``V_j < V_i`` (cold
    members via a cheap prefix count, warm members via
    :func:`count_left_less` on the all-distinct warm slots), so
    ``dist_i = c_i + cold_before_i - V_i``.  Cold references are
    excluded from the radix pass — their tied slots would keep groups
    from ever resolving.
    """
    m = len(part)
    seg_lens = np.asarray(seg_lens)
    seg_starts = np.cumsum(seg_lens) - seg_lens
    order = radix_argsort(part)
    pv = part[order]
    eq = np.flatnonzero(pv[1:] == pv[:-1])
    seg_start_per = np.repeat(seg_starts, seg_lens)
    P = np.full(m, -1, np.int64)
    P[order[eq + 1]] = order[eq]
    cold = P < 0
    noncold = ~cold
    V = np.where(cold, 0, P + 1 - seg_start_per)

    czc = np.cumsum(cold, dtype=np.int64)
    cold_before = (czc - cold) - (czc - cold)[seg_start_per]

    nc_idx = np.flatnonzero(noncold)
    c = np.zeros(m, np.int64)
    if len(nc_idx):
        czcomp = np.cumsum(noncold, dtype=np.int64)
        nc_excl = czcomp - noncold
        g0c = nc_excl[seg_start_per][nc_idx]
        seg_end_per = seg_start_per + np.repeat(seg_lens, seg_lens)
        gnextc = np.concatenate((nc_excl, [len(nc_idx)]))[seg_end_per][nc_idx]
        c[nc_idx] = count_left_less(V[nc_idx], g0c, gnextc)

    dist = c + cold_before - V
    dist[cold] = max_assoc
    np.minimum(dist, max_assoc, out=dist)
    return dist


def stack_distances(
    part: np.ndarray,
    seg_lens: np.ndarray,
    max_assoc: int,
    *,
    vmax: int | None = None,
    links: tuple[np.ndarray, np.ndarray] | None = None,
    base_window: int = SCAN_BASE_WINDOW,
    max_window: int = SCAN_MAX_WINDOW,
    expand_budget: int | None = None,
) -> tuple[np.ndarray, dict[str, Any]]:
    """Clamped LRU stack distance of every reference of a partitioned stream.

    ``part`` must be segment-contiguous with within-set time order (see
    :func:`partition_by_set`); ``seg_lens`` is only consulted by the
    dominance fallback.  Returns ``(dist, info)`` where ``dist[i]`` in
    ``[0, max_assoc]`` (``max_assoc`` = deeper-or-absent) and ``info``
    carries kernel telemetry (``path``, ``window``, ``residues``,
    ``expanded_cells``) plus ``recurs_idx``, the positions whose line
    recurs later in the stream — callers use it to rebuild final LRU
    stack contents without replaying the stream.

    ``links``, when given, is the precomputed ``(link_from, link_to)``
    pair of consecutive same-line occurrence positions *in part
    coordinates* and skips the value sort here.  Occurrence order of a
    line is the same in every set partition of one stream (equal lines
    share a set, and partitioning keeps within-set order), so one value
    sort of the raw stream serves every stack family — see
    :meth:`repro.cache.cheetah.CheetahSimulator.consume`.
    """
    m = len(part)
    A = int(max_assoc)
    info: dict[str, Any] = {
        "path": "scan",
        "refs": m,
        "window": 0,
        "residues": 0,
        "expanded_cells": 0,
        "recurs_idx": np.empty(0, dtype=np.intp),
    }
    if m == 0:
        return np.zeros(0, np.int32), info
    if expand_budget is None:
        expand_budget = max(EXPAND_BUDGET_FACTOR * m, 1 << 16)

    if links is None:
        order = radix_argsort(part, vmax)
        pv = part[order]
        eq = np.flatnonzero(pv[1:] == pv[:-1])
        link_from = order[eq]                  # has a later occurrence
        link_to = order[eq + 1]
    else:
        link_from, link_to = links
    info["recurs_idx"] = link_from

    P = np.full(m, -1, np.int32)
    P[link_to] = link_from
    gd = link_to - link_from                   # gap to next occurrence, >= 1
    gapF = np.full(m, m + 1, np.int32)         # m + 1 == "no next"
    gapF[link_from] = gd
    gap8 = np.full(m, 255, np.uint8)
    gap8[link_from] = np.minimum(gd, 255)

    ar = np.arange(m, dtype=np.int32)
    g = ar - P                                 # i - P_i  (cold: i + 1)
    g8 = np.minimum(g, 255).astype(np.uint8)
    cold = P < 0

    # Tier 1: adaptive tail scan.  dist_i = sum over o of
    # [gap[i-o] >= o and o <= wl_i]; uint8-clipped operands keep every
    # compare exact for o <= 254 while quartering memory traffic.
    w_lim = max(1, min(max_window, 254, m - 1))
    w_cur = min(max(base_window, 1), w_lim)
    unresolved_target = max(256, m >> 8)
    TD = np.zeros(m, np.uint8)
    buf_a = np.empty(m, bool)
    buf_b = np.empty(m, bool)
    o = 1
    while True:
        for o in range(o, w_cur + 1):
            n = m - o
            a = buf_a[:n]
            b = buf_b[:n]
            np.greater_equal(gap8[:n], o, out=a)
            np.greater(g8[o:], o, out=b)       # o <= wl  <=>  o < i - P_i
            np.logical_and(a, b, out=a)
            TD[o:] += a
        o = w_cur + 1
        if w_cur >= w_lim:
            break
        n_unres = int(((g8 > w_cur + 1) & (TD < A) & ~cold).sum())
        if n_unres <= unresolved_target:
            break
        w_cur = min(2 * w_cur, w_lim)
    info["window"] = w_cur

    dist = np.minimum(TD, A).astype(np.int32)
    dist[cold] = A

    # Tier 2: geometric window expansion of the residue.  TD undercounts
    # only when the window outruns the scan, so everything with
    # wl <= w_cur (i.e. g <= w_cur + 1) is already exact.
    resid = (g > w_cur + 1) & (TD < A) & ~cold
    unresolved = np.flatnonzero(resid).astype(np.intp)
    info["residues"] = int(unresolved.size)
    if unresolved.size:
        wls = (g[unresolved] - 1).astype(np.int32)
        cap = 8 * w_cur
        spent = 0
        while unresolved.size:
            k = np.minimum(wls, cap)
            total = int(k.sum())
            if spent + total > expand_budget:
                # Tier 3: exact dominance count for the whole family.
                info["path"] = "dominance"
                info["expanded_cells"] = spent
                return (
                    distances_dominance(part, seg_lens, A).astype(np.int32),
                    info,
                )
            cw = np.cumsum(k)
            sx = (cw - k).astype(np.intp)
            offs = np.arange(total, dtype=np.int32) - np.repeat(sx, k) + 1
            jpos = np.repeat(unresolved, k) - offs
            cnt = np.add.reduceat(gapF[jpos] >= offs, sx, dtype=np.int32)
            done = (cnt >= A) | (wls <= cap)
            sel = unresolved[done]
            dist[sel] = np.minimum(cnt[done], A)
            keep = ~done
            unresolved = unresolved[keep]
            wls = wls[keep]
            spent += total
            cap *= 8
        info["path"] = "scan+expand"
        info["expanded_cells"] = spent
    return dist, info
