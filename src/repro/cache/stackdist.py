"""Offline, fully vectorized truncated-LRU stack-distance kernel.

This module removes the last per-reference Python loop from the
single-pass cache engine (:mod:`repro.cache.cheetah`): instead of
touching per-set LRU stacks one reference at a time, it computes the
stack distance of *every* reference of a set-partitioned line stream
with whole-array numpy operations, then bin-counts the distances into
the familiar depth histogram.

Identity
--------
Take a stream partitioned by set (segments contiguous, original time
order preserved within each segment).  Because a line's value determines
its set, equal values always live in the same segment, so linking every
reference ``i`` to the previous occurrence ``P_i`` of the same line (one
stable value sort) never crosses a segment boundary — and neither does
the reuse window ``(P_i, i)``.  The LRU stack distance of ``i`` is the
number of distinct lines referenced inside that window.  Every distinct
line in the window has exactly one *last* occurrence there, i.e. one
position ``j`` whose next occurrence ``nxt_j`` is at or after ``i``;
with ``gap_j = nxt_j - j`` that membership test becomes the shifted
comparison ``gap[i - o] >= o``:

    dist_i = #{ o in 1..wl_i : gap[i - o] >= o },   wl_i = i - P_i - 1

A cold reference (no previous occurrence) misses every cache, and the
existing ``max_assoc`` truncation means any distance >= ``max_assoc``
lands in the shared "deeper-or-absent" bucket, so distances only need to
be *resolved* up to ``max_assoc`` — clamping the exact infinite-stack
distance is bit-identical to simulating truncated stacks (truncation
preserves the order of the top ``max_assoc`` entries, and a line below
that depth is evicted in the truncated simulation, i.e. absent).

Tiers
-----
1. **Tail scan** — accumulate the summand above for ``o = 1..W`` with
   clipped ``uint8`` compares (sequential access, no gathers).  This is
   exact for every reference with ``wl <= W``; for longer windows it
   counts distinct lines in the window *tail*, a lower bound, so a count
   reaching ``max_assoc`` already proves the deeper-or-absent bucket.
   The scan widens adaptively (up to :data:`SCAN_MAX_WINDOW`) while many
   references remain unresolved.
2. **Window expansion** — the residue (long window, tail count still
   below ``max_assoc``) is expanded explicitly with ``repeat``/``arange``
   index arithmetic under a total-size budget, growing a per-reference
   cap geometrically so cheap residues never pay for pathological ones.
3. **Dominance fallback** — if the residue exceeds the budget, the whole
   family is recomputed with an exact offline dominance count
   (:func:`distances_dominance`): distance = (left neighbours with a
   smaller previous-occurrence slot) - (own slot), counted by a
   bit-sliced MSD radix pass in O(n log n) array operations.

The kernel is exact — histograms stay bit-identical to the scalar
``_touch`` path and to :mod:`repro.cache._legacy` — and the property
suite in ``tests/cache/test_stackdist.py`` pins that equivalence on
adversarial streams.  ``docs/PERFORMANCE.md`` documents the design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

__all__ = [
    "SCAN_BASE_WINDOW",
    "SCAN_MAX_WINDOW",
    "EXPAND_BUDGET_FACTOR",
    "CountProblem",
    "count_left_less",
    "distances_dominance",
    "partition_by_set",
    "radix_argsort",
    "refine_partition",
    "split_value_groups",
    "stack_distances",
    "stack_distances_fused",
]

#: Initial tail-scan window (offsets scanned for every reference).
SCAN_BASE_WINDOW = 16

#: Hard ceiling for the adaptive tail scan; must stay < 255 because the
#: scan compares against uint8-clipped gaps and window lengths.
SCAN_MAX_WINDOW = 128

#: Expansion budget: total expanded window cells per kernel call,
#: as a multiple of the stream length, before falling back to the
#: dominance count.
EXPAND_BUDGET_FACTOR = 32

#: Group size below which the bit-sliced radix pass switches to
#: shifted-compare brute force.
_DOMINANCE_BRUTE_BELOW = 16


def radix_argsort(values: np.ndarray, vmax: int | None = None) -> np.ndarray:
    """Stable argsort of a non-negative integer array.

    Numpy's stable sort on ``uint16`` keys is a radix sort (~7x faster
    than comparison-sorting ``int32``), so wide values are sorted with
    two chained 16-bit passes.  Falls back to a plain stable argsort
    when values may be negative.
    """
    if values.size == 0:
        return np.empty(0, dtype=np.intp)
    if vmax is None:
        vmax = int(values.max())
    if vmax < 0 or int(values.min()) < 0:
        return np.argsort(values, kind="stable")
    lo = (values & 0xFFFF).astype(np.uint16)
    order = np.argsort(lo, kind="stable")
    if vmax >> 16:
        hi = (values >> 16).astype(np.uint16)
        order = order[np.argsort(hi[order], kind="stable")]
        if vmax >> 32:  # pragma: no cover - >48-bit line indices
            top = (values >> 32).astype(np.uint32)
            order = order[np.argsort(top[order], kind="stable")]
    return order


def partition_by_set(
    lines: np.ndarray, nsets: int, vmax: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Partition a line stream by set index, keeping within-set order.

    Returns ``(part, seg_lens, seg_sets, order)``: the reordered stream,
    one segment per set (possibly empty, so ``len(seg_lens) == nsets``),
    the set index of each segment, and the stable permutation such that
    ``part == lines[order]`` (``None`` for the identity when
    ``nsets == 1``).  Segment starts are ``cumsum(seg_lens) - seg_lens``.
    """
    n = len(lines)
    if nsets == 1:
        return (
            lines, np.array([n], dtype=np.intp), np.zeros(1, dtype=np.intp),
            None,
        )
    sidx = lines & (nsets - 1)
    key = sidx.astype(np.uint16) if nsets <= (1 << 16) else sidx
    order = np.argsort(key, kind="stable")
    seg_lens = np.bincount(key, minlength=nsets).astype(np.intp)
    return lines[order], seg_lens, np.arange(nsets, dtype=np.intp), order


def refine_partition(
    part: np.ndarray,
    seg_lens: np.ndarray,
    seg_sets: np.ndarray,
    old_nsets: int,
    new_nsets: int,
    order: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Refine a set partition from ``old_nsets`` to ``new_nsets`` sets.

    The set bits of family ``2k`` extend those of family ``k``, so each
    segment splits by one extra line-index bit per doubling — a stable
    O(n) scatter instead of a fresh argsort.  Segment order after a
    split is (parent order, new bit), which is irrelevant to the kernel;
    ``seg_sets`` tracks each segment's true set index.  When ``order``
    (the ``lines -> part`` permutation) is given it is carried through
    every split, so callers can keep mapping stream positions into the
    refined layout.
    """
    if new_nsets % old_nsets or new_nsets < old_nsets:
        raise ValueError(
            f"cannot refine a {old_nsets}-set partition into {new_nsets} sets"
        )
    m = len(part)
    bit = old_nsets
    while bit < new_nsets:
        nseg = len(seg_lens)
        ends = np.cumsum(seg_lens)
        starts = ends - seg_lens
        ones = (part & bit) != 0
        zeros = ~ones
        czpad = np.empty(m + 1, dtype=np.int32)
        czpad[0] = 0
        np.cumsum(zeros, out=czpad[1:])            # zeros up to position
        zex = czpad[:m]                            # zeros strictly before
        ztot = czpad[ends] - czpad[starts]         # zeros per segment
        seg_id = np.repeat(np.arange(nseg, dtype=np.intp), seg_lens)
        # dest(zero)  = start + zeros-before-in-segment
        #             = zex + (start - zeros-before-segment)
        # dest(one)   = start + ztot + ones-before-in-segment
        #             = i + (ztot + zeros-before-segment) - zex
        base_zero = (starts - czpad[starts]).astype(np.int32)
        base_one = (ztot + czpad[starts]).astype(np.int32)
        ar = np.arange(m, dtype=np.int32)
        dest = np.where(
            ones, ar + base_one[seg_id] - zex, zex + base_zero[seg_id]
        ).astype(np.intp)
        new_part = np.empty_like(part)
        new_part[dest] = part
        part = new_part
        if order is not None:
            new_order = np.empty_like(order)
            new_order[dest] = order
            order = new_order
        new_lens = np.empty(2 * nseg, dtype=np.intp)
        new_lens[0::2] = ztot
        new_lens[1::2] = seg_lens - ztot
        new_sets = np.empty(2 * nseg, dtype=np.intp)
        new_sets[0::2] = seg_sets
        new_sets[1::2] = seg_sets + bit
        seg_lens, seg_sets = new_lens, new_sets
        bit <<= 1
    return part, seg_lens, seg_sets, order


def split_value_groups(
    order: np.ndarray, group_lens: np.ndarray, ones: np.ndarray
) -> np.ndarray:
    """Stable split of consecutive equal-value groups by one extra bit.

    ``order`` is a permutation of stream positions sorted by
    ``(value, time)`` — equal values contiguous, time-ascending within
    each run; ``group_lens`` are those runs' lengths; ``ones`` flags,
    per *stream* position, the next lower value bit.  Each group
    stably partitions into its zero half then its one half, turning
    ``(v, time)`` order into ``(2v + bit, time)`` order — the sorted
    order one granularity finer — with one O(n) scatter instead of a
    fresh sort.  This is how the whole-design-space simulator derives
    every line size's previous-occurrence links from a single sort of
    the coarsest values (see :mod:`repro.cache.designspace`).
    """
    m = len(order)
    if m == 0:
        return order
    ob = ones[order]
    zeros = ~ob
    ends = np.cumsum(group_lens)
    starts = ends - group_lens
    # int32 bookkeeping throughout: destinations index a stream that is
    # always far below 2**31 elements, and halving the temporaries'
    # width roughly halves this pass's memory traffic.
    czpad = np.empty(m + 1, dtype=np.int32)
    czpad[0] = 0
    np.cumsum(zeros, out=czpad[1:])            # zeros up to position
    zex = czpad[:m]                            # zeros strictly before
    ztot = czpad[ends] - czpad[starts]         # zeros per group
    seg_id = np.repeat(
        np.arange(len(group_lens), dtype=np.int32), group_lens
    )
    # Same scatter arithmetic as refine_partition (which splits by a
    # *set* bit of the partitioned values; here the bit arrives as a
    # separate mask because it sits below the sorted values' lsb).
    base_zero = (starts - czpad[starts]).astype(np.int32)
    base_one = (ztot + czpad[starts]).astype(np.int32)
    ar = np.arange(m, dtype=np.int32)
    dest = np.where(ob, ar + base_one[seg_id] - zex, zex + base_zero[seg_id])
    new_order = np.empty_like(order)
    new_order[dest] = order
    return new_order


def count_left_less(
    v: np.ndarray,
    g0: np.ndarray,
    gnext: np.ndarray,
    brute_below: int = _DOMINANCE_BRUTE_BELOW,
) -> np.ndarray:
    """``c[i] = #{j < i : same group, v[j] < v[i]}`` for distinct-in-group v.

    MSD binary radix: at each bit, the ones of a group gain the count of
    zeros before them (all smaller), then every group stably partitions
    by the bit, preserving original relative order so "before" keeps its
    meaning.  Small residual groups finish with shifted compares.
    """
    m = len(v)
    c = np.zeros(m, np.int32)
    if m == 0:
        return c
    v = v.astype(np.int32, copy=True)
    idx = np.arange(m, dtype=np.intp)
    ar = np.arange(m, dtype=np.intp)
    g0 = g0.astype(np.intp, copy=True)
    gnext = gnext.astype(np.intp, copy=True)
    for bit in range(int(v.max()).bit_length() - 1, -1, -1):
        if int((gnext - g0).max()) <= brute_below:
            break
        ones = (v >> bit) & 1
        zeros = 1 - ones
        cz = np.cumsum(zeros, dtype=np.intp)
        zex = cz - zeros                    # zeros strictly before, global
        zstart = zex[g0]
        zb = zex - zstart                   # zeros strictly before, in group
        c += (zb * ones).astype(np.int32)
        zingrp = cz[gnext - 1] - zstart     # zeros in the whole group
        ones_b = ones.astype(bool)
        left = g0 + zingrp
        ob = ar - g0 - zb
        dest = np.where(ones_b, left + ob, g0 + zb)
        ng0 = np.where(ones_b, left, g0)
        ngnext = np.where(ones_b, gnext, left)
        v2 = np.empty_like(v); v2[dest] = v
        c2 = np.empty_like(c); c2[dest] = c
        i2 = np.empty_like(idx); i2[dest] = idx
        a2 = np.empty_like(g0); a2[dest] = ng0
        b2 = np.empty_like(gnext); b2[dest] = ngnext
        v, c, idx, g0, gnext = v2, c2, i2, a2, b2
    for off in range(1, int((gnext - g0).max())):
        ok = (v[:-off] < v[off:]) & (ar[off:] - off >= g0[off:])
        c[off:] += ok
    out = np.empty(m, np.int32)
    out[idx] = c
    return out


def distances_dominance(
    part: np.ndarray, seg_lens: np.ndarray, max_assoc: int
) -> np.ndarray:
    """Exact clamped stack distances via offline dominance counting.

    For non-cold reference ``i`` with previous-occurrence slot
    ``V_i = P_i + 1`` (segment-local), every window member contributes
    one position ``j < i`` in the segment with ``V_j < V_i`` (cold
    members via a cheap prefix count, warm members via
    :func:`count_left_less` on the all-distinct warm slots), so
    ``dist_i = c_i + cold_before_i - V_i``.  Cold references are
    excluded from the radix pass — their tied slots would keep groups
    from ever resolving.
    """
    m = len(part)
    seg_lens = np.asarray(seg_lens)
    seg_starts = np.cumsum(seg_lens) - seg_lens
    order = radix_argsort(part)
    pv = part[order]
    eq = np.flatnonzero(pv[1:] == pv[:-1])
    seg_start_per = np.repeat(seg_starts, seg_lens)
    P = np.full(m, -1, np.int64)
    P[order[eq + 1]] = order[eq]
    cold = P < 0
    noncold = ~cold
    V = np.where(cold, 0, P + 1 - seg_start_per)

    czc = np.cumsum(cold, dtype=np.int64)
    cold_before = (czc - cold) - (czc - cold)[seg_start_per]

    nc_idx = np.flatnonzero(noncold)
    c = np.zeros(m, np.int64)
    if len(nc_idx):
        czcomp = np.cumsum(noncold, dtype=np.int64)
        nc_excl = czcomp - noncold
        g0c = nc_excl[seg_start_per][nc_idx]
        seg_end_per = seg_start_per + np.repeat(seg_lens, seg_lens)
        gnextc = np.concatenate((nc_excl, [len(nc_idx)]))[seg_end_per][nc_idx]
        c[nc_idx] = count_left_less(V[nc_idx], g0c, gnextc)

    dist = c + cold_before - V
    dist[cold] = max_assoc
    np.minimum(dist, max_assoc, out=dist)
    return dist


def stack_distances(
    part: np.ndarray,
    seg_lens: np.ndarray,
    max_assoc: int,
    *,
    vmax: int | None = None,
    links: tuple[np.ndarray, np.ndarray] | None = None,
    base_window: int = SCAN_BASE_WINDOW,
    max_window: int = SCAN_MAX_WINDOW,
    expand_budget: int | None = None,
) -> tuple[np.ndarray, dict[str, Any]]:
    """Clamped LRU stack distance of every reference of a partitioned stream.

    ``part`` must be segment-contiguous with within-set time order (see
    :func:`partition_by_set`); ``seg_lens`` is only consulted by the
    dominance fallback.  Returns ``(dist, info)`` where ``dist[i]`` in
    ``[0, max_assoc]`` (``max_assoc`` = deeper-or-absent) and ``info``
    carries kernel telemetry (``path``, ``window``, ``residues``,
    ``expanded_cells``) plus ``recurs_idx``, the positions whose line
    recurs later in the stream — callers use it to rebuild final LRU
    stack contents without replaying the stream.

    ``links``, when given, is the precomputed ``(link_from, link_to)``
    pair of consecutive same-line occurrence positions *in part
    coordinates* and skips the value sort here.  Occurrence order of a
    line is the same in every set partition of one stream (equal lines
    share a set, and partitioning keeps within-set order), so one value
    sort of the raw stream serves every stack family — see
    :meth:`repro.cache.cheetah.CheetahSimulator.consume`.
    """
    m = len(part)
    A = int(max_assoc)
    info: dict[str, Any] = {
        "path": "scan",
        "refs": m,
        "window": 0,
        "residues": 0,
        "expanded_cells": 0,
        "recurs_idx": np.empty(0, dtype=np.intp),
    }
    if m == 0:
        return np.zeros(0, np.int32), info
    if expand_budget is None:
        expand_budget = max(EXPAND_BUDGET_FACTOR * m, 1 << 16)

    if links is None:
        order = radix_argsort(part, vmax)
        pv = part[order]
        eq = np.flatnonzero(pv[1:] == pv[:-1])
        link_from = order[eq]                  # has a later occurrence
        link_to = order[eq + 1]
    else:
        link_from, link_to = links
    info["recurs_idx"] = link_from

    P = np.full(m, -1, np.int32)
    P[link_to] = link_from
    gd = link_to - link_from                   # gap to next occurrence, >= 1
    gapF = np.full(m, m + 1, np.int32)         # m + 1 == "no next"
    gapF[link_from] = gd
    gap8 = np.full(m, 255, np.uint8)
    gap8[link_from] = np.minimum(gd, 255)

    ar = np.arange(m, dtype=np.int32)
    g = ar - P                                 # i - P_i  (cold: i + 1)
    g8 = np.minimum(g, 255).astype(np.uint8)
    cold = P < 0

    # Tier 1: adaptive tail scan.  dist_i = sum over o of
    # [gap[i-o] >= o and o <= wl_i]; uint8-clipped operands keep every
    # compare exact for o <= 254 while quartering memory traffic.
    w_lim = max(1, min(max_window, 254, m - 1))
    w_cur = min(max(base_window, 1), w_lim)
    unresolved_target = max(256, m >> 8)
    TD = np.zeros(m, np.uint8)
    buf_a = np.empty(m, bool)
    buf_b = np.empty(m, bool)
    o = 1
    while True:
        for o in range(o, w_cur + 1):
            n = m - o
            a = buf_a[:n]
            b = buf_b[:n]
            np.greater_equal(gap8[:n], o, out=a)
            np.greater(g8[o:], o, out=b)       # o <= wl  <=>  o < i - P_i
            np.logical_and(a, b, out=a)
            TD[o:] += a
        o = w_cur + 1
        if w_cur >= w_lim:
            break
        n_unres = int(((g8 > w_cur + 1) & (TD < A) & ~cold).sum())
        if n_unres <= unresolved_target:
            break
        w_cur = min(2 * w_cur, w_lim)
    info["window"] = w_cur

    dist = np.minimum(TD, A).astype(np.int32)
    dist[cold] = A

    # Tier 2: geometric window expansion of the residue.  TD undercounts
    # only when the window outruns the scan, so everything with
    # wl <= w_cur (i.e. g <= w_cur + 1) is already exact.
    resid = (g > w_cur + 1) & (TD < A) & ~cold
    unresolved = np.flatnonzero(resid).astype(np.intp)
    info["residues"] = int(unresolved.size)
    if unresolved.size:
        wls = (g[unresolved] - 1).astype(np.int32)
        cap = 8 * w_cur
        spent = 0
        while unresolved.size:
            k = np.minimum(wls, cap)
            total = int(k.sum())
            if spent + total > expand_budget:
                # Tier 3: exact dominance count for the whole family.
                info["path"] = "dominance"
                info["expanded_cells"] = spent
                return (
                    distances_dominance(part, seg_lens, A).astype(np.int32),
                    info,
                )
            cw = np.cumsum(k)
            sx = (cw - k).astype(np.intp)
            offs = np.arange(total, dtype=np.int32) - np.repeat(sx, k) + 1
            jpos = np.repeat(unresolved, k) - offs
            cnt = np.add.reduceat(gapF[jpos] >= offs, sx, dtype=np.int32)
            done = (cnt >= A) | (wls <= cap)
            sel = unresolved[done]
            dist[sel] = np.minimum(cnt[done], A)
            keep = ~done
            unresolved = unresolved[keep]
            wls = wls[keep]
            spent += total
            cap *= 8
        info["path"] = "scan+expand"
        info["expanded_cells"] = spent
    return dist, info


@dataclass(frozen=True)
class CountProblem:
    """One partitioned counting problem for :func:`stack_distances_fused`.

    Exactly the argument tuple of one :func:`stack_distances` call:
    ``part`` segment-contiguous with within-set time order, ``seg_lens``
    the per-set segment lengths, ``links`` the optional precomputed
    previous-occurrence pairs in ``part`` coordinates.  ``vmax`` (the
    largest value, when the values are known non-negative) lets the
    fused sort offset this problem's values into a private key range.
    """

    part: np.ndarray
    seg_lens: np.ndarray
    max_assoc: int
    vmax: int | None = None
    links: tuple[np.ndarray, np.ndarray] | None = None


def _fused_dominance(
    problems: Sequence[CountProblem],
    sel: list[int],
    off: list[int],
    ms: list[int],
    P: np.ndarray,
    cold: np.ndarray,
    dist: np.ndarray,
) -> None:
    """Exact dominance recount of the selected problems, one radix pass.

    The fused twin of :func:`distances_dominance`: previous-occurrence
    slots are already known (``P`` is global, links were applied), and
    the per-problem segment structures concatenate into one global
    ``g0``/``gnext`` group layout, so *one* :func:`count_left_less`
    ladder — its depth driven by the largest slot across every selected
    problem — resolves them all.  Results overwrite ``dist`` in place.
    """
    segl = np.concatenate(
        [np.asarray(problems[i].seg_lens, dtype=np.int64) for i in sel]
    )
    slices = [slice(off[i], off[i] + ms[i]) for i in sel]
    Ps = np.concatenate([P[s] for s in slices]).astype(np.int64)
    colds = np.concatenate([cold[s] for s in slices])
    Asub = np.repeat(
        np.array([int(problems[i].max_assoc) for i in sel], dtype=np.int64),
        np.array([ms[i] for i in sel], dtype=np.intp),
    )
    mtot = len(Ps)
    # Two coordinate systems: global segment starts recover each
    # reference's segment-local previous-occurrence slot; sub-
    # concatenation starts index the prefix sums and group bounds.
    seg_starts_g = np.concatenate(
        [
            off[i]
            + np.cumsum(np.asarray(problems[i].seg_lens, dtype=np.int64))
            - np.asarray(problems[i].seg_lens, dtype=np.int64)
            for i in sel
        ]
    )
    seg_starts_sub = np.cumsum(segl) - segl
    seg_start_per_g = np.repeat(seg_starts_g, segl)
    seg_start_per_sub = np.repeat(seg_starts_sub, segl)
    V = np.where(colds, 0, Ps + 1 - seg_start_per_g)

    czc = np.cumsum(colds, dtype=np.int64)
    cold_excl = czc - colds
    cold_before = cold_excl - cold_excl[seg_start_per_sub]

    noncold = ~colds
    nc_idx = np.flatnonzero(noncold)
    c = np.zeros(mtot, np.int64)
    if len(nc_idx):
        czcomp = np.cumsum(noncold, dtype=np.int64)
        nc_excl = czcomp - noncold
        g0c = nc_excl[seg_start_per_sub][nc_idx]
        seg_end_per = seg_start_per_sub + np.repeat(segl, segl)
        gnextc = np.concatenate((nc_excl, [len(nc_idx)]))[seg_end_per][nc_idx]
        c[nc_idx] = count_left_less(V[nc_idx], g0c, gnextc)

    dsub = c + cold_before - V
    dsub[colds] = Asub[colds]
    np.minimum(dsub, Asub, out=dsub)
    pos = 0
    for i in sel:
        dist[off[i] : off[i] + ms[i]] = dsub[pos : pos + ms[i]]
        pos += ms[i]


def stack_distances_fused(
    problems: Sequence[CountProblem],
    *,
    base_window: int = SCAN_BASE_WINDOW,
    max_window: int = SCAN_MAX_WINDOW,
    expand_budget: int | None = None,
) -> tuple[list[tuple[np.ndarray, dict[str, Any]]], dict[str, Any]]:
    """Clamped LRU stack distances of many independent problems at once.

    Concatenating partitioned streams is safe for every tier: the scan's
    window guard ``o < i - P_i`` confines each reference's reuse window
    to its own segment (previous occurrences never cross problem
    boundaries, segment boundaries are a superset of problem
    boundaries), the expansion indexes only ``(P_i, i)`` windows, and
    the dominance fallback takes explicit global group bounds.  So one
    pass of each tier over the concatenation replaces one kernel
    dispatch per (line size, set count) — the per-size counting floor
    the whole-design-space simulator otherwise pays N times.

    Problems that arrive without ``links`` share the linking sort too:
    when the summed per-problem ``vmax`` ranges fit one 16-bit radix
    pass, their values are offset into disjoint key ranges and a single
    :func:`radix_argsort` links them all; wider towers use the
    equivalent segmented plan (one single-pass radix per problem block)
    because a second radix pass over the concatenation costs more than
    the dispatches it saves.

    Returns ``(results, fused_info)``: per problem the same
    ``(dist, info)`` pair :func:`stack_distances` yields (bit-identical
    distances; ``window``/``residues`` telemetry reflects the fused
    run), plus per-tier timing/accounting for the whole fused dispatch.
    """
    k = len(problems)
    ms = [len(p.part) for p in problems]
    off: list[int] = []
    total = 0
    for m in ms:
        off.append(total)
        total += m
    M = total
    fused_info: dict[str, Any] = {
        "problems": k,
        "refs": M,
        "window": 0,
        "residues": 0,
        "expanded_cells": 0,
        "sorted_refs": 0,
        "dominance_refs": 0,
        "sort_s": 0.0,
        "scan_s": 0.0,
        "expand_s": 0.0,
        "dominance_s": 0.0,
    }
    infos: list[dict[str, Any]] = [
        {
            "path": "scan",
            "refs": m,
            "window": 0,
            "residues": 0,
            "expanded_cells": 0,
            "recurs_idx": np.empty(0, dtype=np.intp),
        }
        for m in ms
    ]
    if M == 0:
        return [(np.zeros(0, np.int32), info) for info in infos], fused_info
    if expand_budget is None:
        expand_budget = max(EXPAND_BUDGET_FACTOR * M, 1 << 16)

    # -- previous-occurrence links, one fused sort for unlinked problems
    t0 = time.perf_counter()
    P = np.full(M, -1, np.int32)
    gapF = np.full(M, M + 1, np.int32)
    sortable: list[int] = []
    for i, problem in enumerate(problems):
        if ms[i] == 0:
            continue
        if problem.links is not None:
            lf, lt = problem.links
            infos[i]["recurs_idx"] = lf
            gf = lf + off[i]
            gt = lt + off[i]
            P[gt] = gf
            gapF[gf] = gt - gf
        elif problem.vmax is not None:
            sortable.append(i)
        else:
            # Unknown value range (possibly negative): this problem
            # sorts alone, but still joins the fused counting tiers.
            order = radix_argsort(problem.part)
            pv = problem.part[order]
            eq = np.flatnonzero(pv[1:] == pv[:-1])
            gf = order[eq] + off[i]
            gt = order[eq + 1] + off[i]
            infos[i]["recurs_idx"] = order[eq]
            P[gt] = gf
            gapF[gf] = gt - gf
    if sortable:
        span = sum(int(problems[i].vmax) + 1 for i in sortable)
        fused_info["sorted_refs"] = sum(ms[i] for i in sortable)
        if span - 1 <= 0xFFFF:
            # Offset each problem's values into a private key range: the
            # combined range still fits one 16-bit radix pass, so a
            # single stable sort orders every problem by (value, time)
            # without ever interleaving problems.
            key_parts = []
            adjusts = []
            lens = []
            base = 0
            sub = 0
            for i in sortable:
                key_parts.append(problems[i].part.astype(np.int64) + base)
                adjusts.append(off[i] - sub)
                lens.append(ms[i])
                base += int(problems[i].vmax) + 1
                sub += ms[i]
            cat = np.concatenate(key_parts)
            del key_parts
            order = radix_argsort(cat, base - 1)
            sv = cat[order]
            same = sv[1:] == sv[:-1]
            lf = order[:-1][same]
            lt = order[1:][same]
            # cat coordinates -> global coordinates (per-problem shift).
            adjust = np.repeat(
                np.array(adjusts, dtype=np.int64),
                np.array(lens, dtype=np.intp),
            )
            gf = lf + adjust[lf]
            gt = lt + adjust[lt]
            P[gt] = gf
            gapF[gf] = gt - gf
            del cat, sv, same, order, adjust, lf, lt, gf, gt
            for i in sortable:
                infos[i]["recurs_idx"] = np.flatnonzero(
                    gapF[off[i] : off[i] + ms[i]] <= M
                )
        else:
            # Disjoint offset keys would push the combined range past a
            # single 16-bit radix pass, and the second pass (plus its
            # gathers) measures ~2x the per-problem sorts it replaces.
            # The concatenation is already grouped by problem, so the
            # equivalent segmented plan — one single-pass radix per
            # block — is the cheaper way to share the dispatch.
            for i in sortable:
                order = radix_argsort(problems[i].part, int(problems[i].vmax))
                pv = problems[i].part[order]
                eq = np.flatnonzero(pv[1:] == pv[:-1])
                infos[i]["recurs_idx"] = order[eq]
                gf = order[eq] + off[i]
                gt = order[eq + 1] + off[i]
                P[gt] = gf
                gapF[gf] = gt - gf
    fused_info["sort_s"] = time.perf_counter() - t0

    # -- fused tiers: identical math to stack_distances, with the
    # scalar clamp A generalized to the per-position array A_pos.
    t0 = time.perf_counter()
    gap8 = np.minimum(gapF, 255).astype(np.uint8)
    ar = np.arange(M, dtype=np.int32)
    g = ar - P
    g8 = np.minimum(g, 255).astype(np.uint8)
    cold = P < 0
    A_pos = np.repeat(
        np.array([int(p.max_assoc) for p in problems], dtype=np.int32),
        np.array(ms, dtype=np.intp),
    )

    # Segmented adaptive scan: each problem keeps the per-size stopping
    # rule (its own unresolved target, checked after every doubling),
    # and converged problems are compacted out of the working
    # concatenation so late window doublings only touch the refs that
    # still need them — a problem that would have stopped at window 16
    # alone must not pay for a sibling that scans to 64.  Scanning a
    # block past its solo ``w_lim`` is harmless: the ``o < i - P_i``
    # guard masks every out-of-window (and cross-block) compare, and a
    # fully scanned window means TD is exact, not approximate.
    w_lim = max(1, min(max_window, 254, M - 1))
    w_cur = min(max(base_window, 1), w_lim)
    windows = [0] * k
    TD = np.zeros(M, np.uint8)
    buf_a = np.empty(M, bool)
    buf_b = np.empty(M, bool)
    gap8w, g8w, TDw, coldw = gap8, g8, TD, cold
    active = [(i, off[i]) for i in range(k) if ms[i]]
    Cw = M
    o = 1
    while active:
        for o in range(o, w_cur + 1):
            n = Cw - o
            a = buf_a[:n]
            b = buf_b[:n]
            np.greater_equal(gap8w[:n], o, out=a)
            np.greater(g8w[o:Cw], o, out=b)
            np.logical_and(a, b, out=a)
            TDw[o:Cw] += a
        o = w_cur + 1
        if w_cur >= w_lim:
            for i, _s in active:
                windows[i] = w_cur
            break
        still = []
        for i, s in active:
            blk = slice(s, s + ms[i])
            n_unres = int(
                (
                    (g8w[blk] > w_cur + 1)
                    & (TDw[blk] < int(problems[i].max_assoc))
                    & ~coldw[blk]
                ).sum()
            )
            if n_unres <= max(256, ms[i] >> 8):
                windows[i] = w_cur
                if TDw is not TD:
                    TD[off[i] : off[i] + ms[i]] = TDw[blk]
            else:
                still.append((i, s))
        if not still:
            break
        if len(still) < len(active):
            gap8w = np.concatenate([gap8w[s : s + ms[i]] for i, s in still])
            g8w = np.concatenate([g8w[s : s + ms[i]] for i, s in still])
            TDw = np.concatenate([TDw[s : s + ms[i]] for i, s in still])
            coldw = np.concatenate([coldw[s : s + ms[i]] for i, s in still])
            pos = 0
            compacted = []
            for i, _s in still:
                compacted.append((i, pos))
                pos += ms[i]
            active = compacted
            Cw = pos
            w_lim = max(1, min(max_window, 254, Cw - 1))
        w_cur = min(2 * w_cur, w_lim)
    if TDw is not TD:
        for i, s in active:
            TD[off[i] : off[i] + ms[i]] = TDw[s : s + ms[i]]
    fused_info["window"] = max(windows, default=0)
    for i in range(k):
        infos[i]["window"] = windows[i]

    dist = np.minimum(TD, A_pos).astype(np.int32)
    dist[cold] = A_pos[cold]
    fused_info["scan_s"] = time.perf_counter() - t0

    w_per = np.repeat(np.array(windows, dtype=np.int32), ms)
    resid = (g > w_per + 1) & (TD < A_pos) & ~cold
    unresolved = np.flatnonzero(resid).astype(np.intp)
    fused_info["residues"] = int(unresolved.size)
    fallback: list[int] = []
    if unresolved.size:
        t0 = time.perf_counter()
        bounds = np.cumsum(np.array(ms, dtype=np.int64))
        per = np.bincount(
            np.searchsorted(bounds, unresolved, side="right"), minlength=k
        )
        for i in range(k):
            if per[i]:
                infos[i]["residues"] = int(per[i])
                infos[i]["path"] = "scan+expand"
        wls = (g[unresolved] - 1).astype(np.int32)
        Ares = A_pos[unresolved]
        cap = 8 * w_per[unresolved]
        spent = 0
        while unresolved.size:
            kk = np.minimum(wls, cap)
            step = int(kk.sum())
            if spent + step > expand_budget:
                # Budget exhausted: recount the still-unresolved
                # problems wholesale with the fused dominance pass.
                fallback = sorted(
                    set(
                        np.searchsorted(
                            bounds, unresolved, side="right"
                        ).tolist()
                    )
                )
                break
            cw = np.cumsum(kk)
            sx = (cw - kk).astype(np.intp)
            offs = np.arange(step, dtype=np.int32) - np.repeat(sx, kk) + 1
            jpos = np.repeat(unresolved, kk) - offs
            cnt = np.add.reduceat(gapF[jpos] >= offs, sx, dtype=np.int32)
            done = (cnt >= Ares) | (wls <= cap)
            sel = unresolved[done]
            dist[sel] = np.minimum(cnt[done], Ares[done])
            keep = ~done
            unresolved = unresolved[keep]
            wls = wls[keep]
            Ares = Ares[keep]
            cap = cap[keep]
            spent += step
            cap *= 8
        fused_info["expanded_cells"] = spent
        for i in range(k):
            if infos[i]["path"] == "scan+expand":
                infos[i]["expanded_cells"] = spent
        fused_info["expand_s"] = time.perf_counter() - t0

    if fallback:
        t0 = time.perf_counter()
        _fused_dominance(problems, fallback, off, ms, P, cold, dist)
        for i in fallback:
            infos[i]["path"] = "dominance"
        fused_info["dominance_refs"] = int(sum(ms[i] for i in fallback))
        fused_info["dominance_s"] = time.perf_counter() - t0

    results = [
        (dist[off[i] : off[i] + ms[i]], infos[i]) for i in range(k)
    ]
    return results, fused_info
