"""Multi-level inclusion checks (Section 3.1).

The paper requires the memory-system parameters to satisfy *inclusion*
between the L1 caches and the L2 unified cache: the unified cache contains
everything the L1s contain, which decouples unified-cache misses from the
L1 configurations and lets each cache be evaluated independently.

We use the standard sufficient conditions for LRU inclusion of an L1
C(S1, A1, L1) inside an L2 C(S2, A2, L2) fed by the same reference stream:

* the L2 line size is at least the L1 line size (an L2 line covers whole
  L1 lines);
* the L2 has at least as many sets worth of reach per line: every L1 set's
  lines land in at most ``L2_assoc``-worth of L2 ways, i.e.
  ``A2 >= A1 * ceil((S1 * L1) / (S2 * L2))`` — with power-of-two
  geometries this is ``A2 >= A1 * max(1, (S1*L1)/(S2*L2))``.
"""

from __future__ import annotations

from repro.cache.config import CacheConfig


def satisfies_inclusion(l1: CacheConfig, l2: CacheConfig) -> bool:
    """True if ``l2`` can maintain inclusion of ``l1`` under LRU."""
    if l2.line_size < l1.line_size:
        return False
    if l2.size_bytes < l1.size_bytes:
        return False
    l1_span = l1.sets * l1.line_size
    l2_span = l2.sets * l2.line_size
    # Number of L1 sets that alias onto one L2 set (>= 1 when the L1's
    # address reach exceeds the L2's).
    alias = max(1, l1_span // l2_span)
    return l2.assoc >= l1.assoc * alias


def check_hierarchy(
    icache: CacheConfig, dcache: CacheConfig, unified: CacheConfig
) -> list[str]:
    """Return a list of inclusion violations (empty = legal hierarchy)."""
    problems: list[str] = []
    if not satisfies_inclusion(icache, unified):
        problems.append(
            f"unified {unified} cannot include instruction cache {icache}"
        )
    if not satisfies_inclusion(dcache, unified):
        problems.append(
            f"unified {unified} cannot include data cache {dcache}"
        )
    return problems
