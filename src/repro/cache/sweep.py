"""Design-space sweep driver.

Implements the paper's first efficiency technique (Section 1): group the
cache design space by line size and run one single-pass Cheetah simulation
per distinct line size, rather than one simulation per configuration.

Distinct line-size groups are independent single-pass simulations, so the
driver can optionally fan them out over worker processes
(``max_workers``): each worker simulates one group and ships back the
stack-depth histograms, which the parent folds into the ordinary
:class:`~repro.cache.simulator.MissResult` mapping — callers see the same
API either way.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cache._util import as_int64_array
from repro.cache.cheetah import CheetahSimulator, simulate_many
from repro.cache.config import CacheConfig
from repro.cache.simulator import MissResult

#: A range trace: callable returning (starts, sizes).  Sweeps accept a
#: factory rather than arrays so multi-gigabyte traces can be re-generated
#: lazily per pass instead of held resident.
TraceFactory = Callable[[], tuple[Sequence[int], Sequence[int]]]


def simulate_group_state(
    line_size: int,
    set_counts: Sequence[int],
    max_assoc: int,
    starts: np.ndarray,
    sizes: np.ndarray,
) -> tuple[int, dict[int, list[int]]]:
    """Run one single-pass simulation and export its histogram state.

    Module-level (picklable) so it can serve as a process-pool work unit;
    also used by :meth:`repro.explore.evaluators.MemoryEvaluator.prime`.
    """
    sim = CheetahSimulator(line_size, set_counts, max_assoc)
    sim.simulate(starts, sizes)
    return sim.state()


def sweep_design_space(
    configs: Iterable[CacheConfig],
    trace: tuple[Sequence[int], Sequence[int]] | TraceFactory,
    max_workers: int | None = None,
) -> dict[CacheConfig, MissResult]:
    """Simulate every configuration, one pass per distinct line size.

    ``trace`` is either a ``(starts, sizes)`` pair or a zero-argument
    callable producing one (called once per line-size group).

    With ``max_workers`` > 1 and more than one line-size group, the
    groups run concurrently in worker processes.  Traces are always
    materialized in the parent (the factory need not be picklable); only
    the plain ``(starts, sizes)`` arrays cross the process boundary.
    """
    groups: dict[int, list[CacheConfig]] = {}
    for config in configs:
        groups.setdefault(config.line_size, []).append(config)

    if max_workers is not None and max_workers > 1 and len(groups) > 1:
        return _sweep_parallel(groups, trace, max_workers)

    results: dict[CacheConfig, MissResult] = {}
    for line_size in sorted(groups):
        starts, sizes = trace() if callable(trace) else trace
        results.update(simulate_many(groups[line_size], starts, sizes))
    return results


def _sweep_parallel(
    groups: dict[int, list[CacheConfig]],
    trace: tuple[Sequence[int], Sequence[int]] | TraceFactory,
    max_workers: int,
) -> dict[CacheConfig, MissResult]:
    jobs: list[tuple[int, list[CacheConfig], tuple]] = []
    for line_size in sorted(groups):
        starts, sizes = trace() if callable(trace) else trace
        group = groups[line_size]
        set_counts = sorted({c.sets for c in group})
        max_assoc = max(c.assoc for c in group)
        jobs.append(
            (
                line_size,
                group,
                (
                    line_size,
                    set_counts,
                    max_assoc,
                    as_int64_array(starts),
                    as_int64_array(sizes),
                ),
            )
        )

    results: dict[CacheConfig, MissResult] = {}
    workers = min(max_workers, len(jobs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(simulate_group_state, *args) for _, _, args in jobs]
        for (line_size, group, args), future in zip(jobs, futures):
            accesses, hists = future.result()
            sim = CheetahSimulator.from_state(
                line_size, args[2], accesses, hists
            )
            for config in group:
                results[config] = sim.result(config)
    return results


def simulation_passes_required(configs: Iterable[CacheConfig]) -> int:
    """Number of trace passes a sweep needs (= distinct line sizes).

    This is the quantity behind the paper's order-of-magnitude reduction
    claim: "if all 20 caches in the design space have only one of two
    distinct line sizes, the overall computation effort is reduced by an
    order of magnitude."
    """
    return len({c.line_size for c in configs})
