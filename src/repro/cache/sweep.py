"""Design-space sweep driver.

Implements the paper's first efficiency technique (Section 1): group the
cache design space by line size and run one single-pass Cheetah simulation
per distinct line size, rather than one simulation per configuration.

Distinct line-size groups are independent single-pass simulations, so the
driver can fan them out over worker processes (``max_workers``) through
the fault-tolerant executor in :mod:`repro.runtime`: each worker
simulates one group and ships back the stack-depth histograms, which the
parent folds — in completion order, keyed by line size — into the
ordinary :class:`~repro.cache.simulator.MissResult` mapping.  Callers
see the same API either way, and a crashed or hung worker costs a retry
(or an in-process fallback), not the sweep.

In-process sweeps use the whole-design-space kernel
(:class:`~repro.cache.designspace.DesignSpaceSimulator`): one line-stream
expansion and one value sort shared by every line size, instead of one
of each per line size.  ``strategy="perline"`` keeps the independent
per-line-size passes (the equivalence oracle; results are bit-identical
either way).

Trace residency: each group's trace is materialized only when its job is
submitted and the parent's copy is dropped right after submission, so
parent-side residency is bounded by the executor's in-flight window
(``max_workers + 1`` groups), never the whole design space.  When the
trace is supplied as a *picklable* factory, the factory itself is
shipped to the workers and the parent never materializes the arrays at
all (unless checkpointing needs a digest).  Otherwise, when the platform
has POSIX shared memory, the arrays are materialized **once** into a
refcounted shared segment and each job ships only a ~200-byte
:class:`~repro.runtime.executor.SharedArrayHandle`; workers map the
arrays zero-copy (``policy.trace_shipping`` selects the mode).

Sweeps can checkpoint completed groups into an
:class:`~repro.explore.evalcache.EvaluationCache` (one durable flush per
group, via :meth:`~repro.explore.evalcache.EvaluationCache.bulk`), so a
killed run resumes from the finished groups instead of restarting.
"""

from __future__ import annotations

import hashlib
import pickle
from functools import partial
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.cache._util import as_int64_array
from repro.cache.cheetah import CheetahSimulator
from repro.cache.config import CacheConfig
from repro.cache.designspace import DesignSpaceSimulator
from repro.cache.simulator import MissResult, SampledMissResult
from repro.errors import ConfigurationError, RuntimeExecutionError
from repro.runtime.executor import (
    ExecutorPolicy,
    Job,
    SharedArrayHandle,
    run_jobs,
    segment_manager,
    shm_available,
)
from repro.runtime.journal import RunJournal, resolve_journal
from repro.trace.chunkstore import ChunkedTrace
from repro.trace.sampling import SamplePlan, extrapolate, plan_windows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.explore.evalcache import EvaluationCache

#: A range trace: callable returning (starts, sizes).  Sweeps accept a
#: factory rather than arrays so multi-gigabyte traces can be re-generated
#: lazily per pass instead of held resident.
TraceFactory = Callable[[], tuple[Sequence[int], Sequence[int]]]

#: A trace argument: the (starts, sizes) pair, a factory, or an on-disk
#: chunked trace fed to the engines chunk-at-a-time.
Trace = "tuple[Sequence[int], Sequence[int]] | TraceFactory | ChunkedTrace"


def simulate_group_state(
    line_size: int,
    set_counts: Sequence[int],
    max_assoc: int,
    starts: np.ndarray,
    sizes: np.ndarray,
) -> tuple[int, dict[int, list[int]]]:
    """Run one single-pass simulation and export its histogram state.

    Module-level (picklable) so it can serve as a process-pool work unit;
    also used by :meth:`repro.explore.evaluators.MemoryEvaluator.prime`.
    """
    sim = CheetahSimulator(line_size, set_counts, max_assoc)
    sim.simulate(starts, sizes)
    return sim.state()


def simulate_group_from_factory(
    line_size: int,
    set_counts: Sequence[int],
    max_assoc: int,
    factory: TraceFactory,
) -> tuple[int, dict[int, list[int]]]:
    """Worker-side variant: materialize the trace *inside* the worker.

    Used when the trace factory is picklable, so the parent process never
    holds the expanded arrays.
    """
    starts, sizes = factory()
    return simulate_group_state(
        line_size,
        set_counts,
        max_assoc,
        as_int64_array(starts),
        as_int64_array(sizes),
    )


def simulate_group_from_shm(
    line_size: int,
    set_counts: Sequence[int],
    max_assoc: int,
    handle: SharedArrayHandle,
) -> tuple[int, dict[int, list[int]]]:
    """Worker-side variant: map the trace from shared memory (zero-copy).

    The parent owns the segment and unlinks it after the sweep; the
    simulation only reads the arrays, so the read-only mapped views feed
    it directly.
    """
    with handle.open() as arrays:
        return simulate_group_state(
            line_size,
            set_counts,
            max_assoc,
            arrays["starts"],
            arrays["sizes"],
        )


def simulate_group_from_chunks(
    line_size: int,
    set_counts: Sequence[int],
    max_assoc: int,
    path: str,
    digest: str,
) -> tuple[int, dict[int, list[int]]]:
    """Worker-side variant: mmap an on-disk chunked trace by path.

    Ships only the path and expected content digest (a few hundred
    bytes); the worker maps the file and feeds the engine one chunk at a
    time, so neither side ever holds the whole trace decoded.
    """
    with ChunkedTrace(path) as ctrace:
        if ctrace.digest != digest:
            raise RuntimeExecutionError(
                f"chunked trace at {path} has digest {ctrace.digest}, "
                f"job expected {digest}"
            )
        sim = CheetahSimulator(line_size, set_counts, max_assoc)
        for starts, sizes in ctrace.iter_chunks():
            sim.simulate(starts, sizes)
        return sim.state()


def _materialize(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(trace, ChunkedTrace):
        return trace.materialize()
    starts, sizes = trace() if callable(trace) else trace
    return as_int64_array(starts), as_int64_array(sizes)


def _group_args(
    line_size: int,
    set_counts: list[int],
    max_assoc: int,
    trace: Trace,
    journal: RunJournal,
) -> tuple:
    """Late argument materialization for one group's job (parent side)."""
    starts, sizes = _materialize(trace)
    journal.record(
        "trace_materialized", line_size=line_size, trace_ranges=len(starts)
    )
    return (line_size, set_counts, max_assoc, starts, sizes)


def _is_picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:  # noqa: BLE001 - any pickling failure means "no"
        return False
    return True


# ----------------------------------------------------------------------
# Group-state checkpointing codec (shared with evaluator priming and the
# evaluation service, so every layer's checkpoints interoperate in one
# store).
# ----------------------------------------------------------------------


def trace_digest(starts: np.ndarray, sizes: np.ndarray) -> str:
    """Content address of a materialized trace (``sha256=<24 hex>``)."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(starts).tobytes())
    digest.update(np.ascontiguousarray(sizes).tobytes())
    return f"sha256={digest.hexdigest()[:24]}"


def group_state_key(
    trace_id: str,
    line_size: int,
    set_counts: Sequence[int],
    max_assoc: int,
    prefix: str = "sweep",
) -> str:
    """Cache key of one line-size group's simulation state."""
    sets = ",".join(str(s) for s in set_counts)
    return (
        f"{prefix}:{trace_id}:line={line_size}:sets={sets}:assoc={max_assoc}"
    )


def encode_group_state(state: tuple[int, dict[int, list[int]]]) -> list:
    """JSON-representable form of an exported single-pass state."""
    accesses, hists = state
    return [int(accesses), {str(s): list(h) for s, h in hists.items()}]


def decode_group_state(value) -> tuple[int, dict[int, list[int]]] | None:
    """Inverse of :func:`encode_group_state`; None for foreign values."""
    if (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and isinstance(value[1], dict)
    ):
        return int(value[0]), {
            int(sets): list(hist) for sets, hist in value[1].items()
        }
    return None


def encode_chunk_state(
    next_chunk: int, full_state: tuple[int, dict[int, dict]]
) -> list:
    """JSON form of a mid-trace snapshot (histograms **and** LRU stacks).

    Stored between chunks of a chunked-trace sweep so a killed run
    resumes from the last finished chunk rather than the last finished
    group.  The stacks are truncated at ``max_assoc`` per set, so the
    payload is bounded by the design space, not the trace.
    """
    accesses, families = full_state
    return [
        int(next_chunk),
        int(accesses),
        {
            str(nsets): [list(snap["hist"]), [list(s) for s in snap["stacks"]]]
            for nsets, snap in families.items()
        },
    ]


def decode_chunk_state(value) -> tuple[int, int, dict[int, dict]] | None:
    """Inverse of :func:`encode_chunk_state`; None for foreign values."""
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 3
        or not isinstance(value[2], dict)
    ):
        return None
    families = {
        int(nsets): {"hist": list(snap[0]), "stacks": [list(s) for s in snap[1]]}
        for nsets, snap in value[2].items()
    }
    return int(value[0]), int(value[1]), families


class _SweepCheckpoint:
    """Group-state checkpointing through an EvaluationCache.

    One entry per (trace, line size, set counts, max assoc): the exported
    single-pass histogram state.  Stores flush durably per group (inside
    :meth:`EvaluationCache.bulk`, one write each), so a killed sweep
    resumes from its completed groups.
    """

    def __init__(
        self,
        cache: "EvaluationCache",
        trace: Trace,
        trace_key: str | None,
        journal: RunJournal,
    ):
        self.cache = cache
        self.journal = journal
        if trace_key is not None:
            self.trace_id = f"key={trace_key}"
        elif isinstance(trace, ChunkedTrace):
            # The chunk index already carries a content digest; no need
            # to materialize anything.
            self.trace_id = trace.trace_id
        else:
            # All line-size groups share one trace, so one digest
            # identifies the whole sweep; materialize once and drop.
            starts, sizes = _materialize(trace)
            self.trace_id = trace_digest(starts, sizes)

    def key(
        self, line_size: int, set_counts: Sequence[int], max_assoc: int
    ) -> str:
        return group_state_key(self.trace_id, line_size, set_counts, max_assoc)

    def lookup(
        self, line_size: int, set_counts: Sequence[int], max_assoc: int
    ) -> tuple[int, dict[int, list[int]]] | None:
        key = self.key(line_size, set_counts, max_assoc)
        state = decode_group_state(self.cache.get(key))
        if state is not None:
            self.journal.record("checkpoint", action="hit", key=key)
            return state
        self.journal.record("checkpoint", action="miss", key=key)
        return None

    def store(
        self,
        line_size: int,
        set_counts: Sequence[int],
        max_assoc: int,
        state: tuple[int, dict[int, list[int]]],
    ) -> None:
        key = self.key(line_size, set_counts, max_assoc)
        with self.cache.bulk():
            self.cache.put(key, encode_group_state(state))
        self.journal.record("checkpoint", action="store", key=key)

    def chunk_key(
        self, line_size: int, set_counts: Sequence[int], max_assoc: int
    ) -> str:
        return group_state_key(
            self.trace_id, line_size, set_counts, max_assoc, prefix="sweepchunk"
        )

    def lookup_chunk(
        self, line_size: int, set_counts: Sequence[int], max_assoc: int
    ) -> tuple[int, int, dict[int, dict]] | None:
        key = self.chunk_key(line_size, set_counts, max_assoc)
        state = decode_chunk_state(self.cache.get(key))
        if state is not None:
            self.journal.record(
                "checkpoint", action="chunk_hit", key=key, chunk=state[0]
            )
            return state
        return None

    def store_chunk(
        self,
        line_size: int,
        set_counts: Sequence[int],
        max_assoc: int,
        next_chunk: int,
        full_state: tuple[int, dict[int, dict]],
    ) -> None:
        key = self.chunk_key(line_size, set_counts, max_assoc)
        with self.cache.bulk():
            self.cache.put(key, encode_chunk_state(next_chunk, full_state))
        self.journal.record(
            "checkpoint", action="chunk_store", key=key, chunk=next_chunk
        )


def sweep_design_space(
    configs: Iterable[CacheConfig],
    trace: "tuple[Sequence[int], Sequence[int]] | TraceFactory",
    max_workers: int | None = None,
    *,
    policy: ExecutorPolicy | None = None,
    journal: RunJournal | None = None,
    checkpoint: "EvaluationCache | None" = None,
    trace_key: str | None = None,
    on_error: str = "raise",
    strategy: str = "auto",
) -> dict[CacheConfig, MissResult]:
    """Simulate every configuration, one pass per distinct line size.

    ``trace`` is either a ``(starts, sizes)`` pair or a zero-argument
    callable producing one (called once per line-size group, at job
    submission time).

    With ``max_workers`` > 1 (or ``policy.max_workers`` > 1) and more
    than one line-size group, the groups run concurrently in worker
    processes under the fault-tolerant executor: failed attempts are
    retried per ``policy``, a broken pool degrades to in-process serial
    execution, and results fold in completion order.

    ``strategy`` selects the in-process engine: ``"auto"`` feeds every
    pending line size through one
    :class:`~repro.cache.designspace.DesignSpaceSimulator` (one
    expansion, one sort) whenever the sweep runs in-process without
    fault injection; ``"designspace"`` forces that kernel (in-process,
    even when workers were requested — one shared sort usually beats a
    per-line-size fan-out); ``"perline"`` forces the independent
    per-line-size passes.  Results are bit-identical across strategies.

    ``checkpoint`` (an :class:`~repro.explore.evalcache.EvaluationCache`)
    persists each completed group's simulation state, keyed by a trace
    digest — or by ``trace_key`` when the caller has a cheaper stable
    identity — so re-running the same sweep resumes instead of
    re-simulating.

    ``on_error`` controls what happens when a group still fails after
    retries and fallback: ``"raise"`` (default) raises
    :class:`~repro.errors.RuntimeExecutionError`; ``"partial"`` returns
    results for the surviving groups only (the failure is journaled).
    """
    if on_error not in ("raise", "partial"):
        raise ConfigurationError(
            f"on_error must be 'raise' or 'partial', got {on_error!r}"
        )
    if strategy not in ("auto", "designspace", "perline"):
        raise ConfigurationError(
            "strategy must be 'auto', 'designspace' or 'perline', "
            f"got {strategy!r}"
        )
    journal = resolve_journal(journal)
    policy = (policy or ExecutorPolicy()).with_workers(max_workers)

    groups: dict[int, list[CacheConfig]] = {}
    for config in configs:
        groups.setdefault(config.line_size, []).append(config)
    if not groups:
        return {}
    meta = {
        line_size: (
            sorted({c.sets for c in group}),
            max(c.assoc for c in group),
        )
        for line_size, group in groups.items()
    }

    ck = (
        _SweepCheckpoint(checkpoint, trace, trace_key, journal)
        if checkpoint is not None
        else None
    )

    results: dict[CacheConfig, MissResult] = {}
    pending: list[int] = []
    for line_size in sorted(groups):
        set_counts, max_assoc = meta[line_size]
        state = ck.lookup(line_size, set_counts, max_assoc) if ck else None
        if state is not None:
            _fold_group(results, groups[line_size], line_size, max_assoc, state)
        else:
            pending.append(line_size)
    if not pending:
        if ck is not None:
            journal.observe_cache(ck.cache, label="sweep-checkpoint")
        return results

    if isinstance(trace, ChunkedTrace):
        # Chunked traces bypass the whole-design-space kernel (it wants
        # the full arrays); each group streams the chunks through one
        # carrying CheetahSimulator instead, and parallel groups ship
        # only the file path.  Results are bit-identical either way.
        return _sweep_chunked(
            trace, groups, meta, pending, results, policy, journal, ck,
            on_error,
        )

    parallel = (
        policy.max_workers is not None
        and policy.max_workers > 1
        and len(pending) > 1
        and strategy != "designspace"
    )
    # The whole-design-space simulator runs all pending line sizes from
    # shared work; with count_parallelism > 1 it also owns the parallel
    # fan-out of the per-size counting (through the same fault-tolerant
    # pool), so a fault plan no longer forces the per-group path.
    use_designspace = (
        not parallel
        and (
            strategy == "designspace"
            or (strategy == "auto" and len(pending) > 1)
        )
        and (policy.fault is None or policy.count_parallelism > 1)
    )
    if use_designspace:
        starts, sizes = _materialize(trace)
        journal.record(
            "trace_materialized", line_size="all", trace_ranges=len(starts)
        )
        space = DesignSpaceSimulator(
            {line_size: meta[line_size] for line_size in pending},
            policy=policy,
        )
        space.simulate(starts, sizes)
        trace_ranges = len(starts)
        del starts, sizes
        for line_size in pending:
            set_counts, max_assoc = meta[line_size]
            state = space.state(line_size)
            journal.record(
                "pass",
                role="sweep",
                line_size=line_size,
                where="serial",
                trace_ranges=trace_ranges,
                wall_s=round(space.consume_seconds[line_size], 6),
                kernel_s=round(
                    space.kernel_seconds.get(line_size, 0.0), 6
                ),
            )
            if ck is not None:
                ck.store(line_size, set_counts, max_assoc, state)
            _fold_group(
                results, groups[line_size], line_size, max_assoc, state
            )
        if ck is not None:
            journal.observe_cache(ck.cache, label="sweep-checkpoint")
        return results
    if not parallel and policy.fault is None:
        for line_size in pending:
            set_counts, max_assoc = meta[line_size]
            with journal.timed(
                "pass", role="sweep", line_size=line_size, where="serial"
            ) as extra:
                # Attribute this pass's stack-distance kernel time: the
                # simulator records one "stackdist" event per family into
                # the same (active) journal, so the events appended while
                # the pass runs are exactly this pass's kernel calls.
                # Serial/in-process only — worker events never cross the
                # pool boundary, so parallel passes carry no kernel_s.
                kernels_before = len(journal.select("stackdist"))
                starts, sizes = _materialize(trace)
                extra["trace_ranges"] = len(starts)
                state = simulate_group_state(
                    line_size, set_counts, max_assoc, starts, sizes
                )
                extra["kernel_s"] = round(
                    sum(
                        e.get("wall_s", 0.0)
                        for e in journal.select("stackdist")[kernels_before:]
                    ),
                    6,
                )
            del starts, sizes
            if ck is not None:
                ck.store(line_size, set_counts, max_assoc, state)
            _fold_group(results, groups[line_size], line_size, max_assoc, state)
        if ck is not None:
            journal.observe_cache(ck.cache, label="sweep-checkpoint")
        return results

    # Resolve the shipping mode.  A picklable factory beats everything
    # (workers materialize their own trace, the parent never holds the
    # arrays); otherwise shared memory materializes the arrays exactly
    # once and ships a ~200-byte handle per job; per-job pickling is the
    # legacy fallback.  "shm"/"pickle" force their respective paths.
    ship_factory = callable(trace) and _is_picklable(trace)
    mode = policy.trace_shipping
    if mode == "auto":
        mode = (
            "factory"
            if ship_factory
            else "shm" if shm_available() else "pickle"
        )
    elif mode == "shm":
        if not shm_available():
            raise RuntimeExecutionError(
                "trace_shipping='shm' requested but POSIX shared memory "
                "is unavailable on this platform"
            )
    elif ship_factory:  # "pickle": legacy behavior shipped the factory
        mode = "factory"

    manager = shm_key = handle = None
    try:
        if mode == "shm":
            starts, sizes = _materialize(trace)
            journal.record(
                "trace_materialized",
                line_size="all",
                trace_ranges=len(starts),
            )
            if ck is not None:
                trace_id = ck.trace_id
            elif trace_key is not None:
                trace_id = f"key={trace_key}"
            else:
                trace_id = trace_digest(starts, sizes)
            shm_key = f"sweep:{trace_id}"
            manager = segment_manager()
            handle = manager.acquire(
                shm_key, {"starts": starts, "sizes": sizes}, journal
            )
            handle_bytes = len(pickle.dumps(handle))
            del starts, sizes

        jobs = []
        for line_size in pending:
            set_counts, max_assoc = meta[line_size]
            if mode == "shm":
                jobs.append(
                    Job(
                        key=line_size,
                        fn=simulate_group_from_shm,
                        args=(line_size, set_counts, max_assoc, handle),
                    )
                )
                journal.record(
                    "shm_attach",
                    key=str(line_size),
                    segment=handle.name,
                    bytes_shipped=handle_bytes,
                    bytes_mapped=handle.nbytes,
                )
            elif mode == "factory":
                jobs.append(
                    Job(
                        key=line_size,
                        fn=simulate_group_from_factory,
                        args=(line_size, set_counts, max_assoc, trace),
                    )
                )
            else:
                jobs.append(
                    Job(
                        key=line_size,
                        fn=simulate_group_state,
                        args_factory=partial(
                            _group_args,
                            line_size,
                            set_counts,
                            max_assoc,
                            trace,
                            journal,
                        ),
                    )
                )
        journal.record("trace_shipping", mode=mode, jobs=len(jobs))
        outcomes = run_jobs(jobs, policy, journal)
    finally:
        # Parent-owned unlink on every exit path: worker kills, pool
        # restarts and serial fallback all funnel through here.
        if manager is not None:
            manager.release(shm_key, journal)

    failures: list[tuple[int, str]] = []
    for line_size in pending:
        outcome = outcomes[line_size]
        set_counts, max_assoc = meta[line_size]
        if not outcome.ok:
            failures.append((line_size, outcome.error or "unknown error"))
            journal.record(
                "group_failed",
                line_size=line_size,
                configs=len(groups[line_size]),
                error=outcome.error,
            )
            continue
        journal.record(
            "pass",
            role="sweep",
            line_size=line_size,
            where=outcome.where,
            wall_s=round(outcome.wall_s, 6),
        )
        if ck is not None:
            ck.store(line_size, set_counts, max_assoc, outcome.value)
        _fold_group(
            results, groups[line_size], line_size, max_assoc, outcome.value
        )
    if ck is not None:
        journal.observe_cache(ck.cache, label="sweep-checkpoint")
    if failures and on_error == "raise":
        line_size, error = failures[0]
        raise RuntimeExecutionError(
            f"{len(failures)} line-size group(s) failed after retries "
            f"(first: line {line_size}: {error})"
        )
    return results


def _sweep_chunked(
    ctrace: ChunkedTrace,
    groups: dict[int, list[CacheConfig]],
    meta: dict[int, tuple[list[int], int]],
    pending: list[int],
    results: dict[CacheConfig, MissResult],
    policy: ExecutorPolicy,
    journal: RunJournal,
    ck: "_SweepCheckpoint | None",
    on_error: str,
) -> dict[CacheConfig, MissResult]:
    """Run the pending groups of a sweep over an on-disk chunked trace.

    Serial groups stream chunk-at-a-time through one carrying simulator,
    snapshotting full state (histograms + LRU stacks) into the
    checkpoint between chunks so a killed run resumes mid-trace.
    Parallel groups ship ``(path, digest)`` to the workers — a few
    hundred bytes per job — and each worker mmaps the file itself.
    """
    parallel = (
        policy.max_workers is not None
        and policy.max_workers > 1
        and len(pending) > 1
    )
    if not parallel and policy.fault is None:
        for line_size in pending:
            set_counts, max_assoc = meta[line_size]
            with journal.timed(
                "pass", role="sweep", line_size=line_size, where="serial"
            ) as extra:
                sim = None
                first_chunk = 0
                if ck is not None:
                    resume = ck.lookup_chunk(line_size, set_counts, max_assoc)
                    if resume is not None and 0 < resume[0] <= ctrace.n_chunks:
                        first_chunk, accesses, families = resume
                        if sorted(families) == list(set_counts):
                            sim = CheetahSimulator.from_full_state(
                                line_size, max_assoc, accesses, families
                            )
                        else:
                            first_chunk = 0
                if sim is None:
                    sim = CheetahSimulator(line_size, set_counts, max_assoc)
                for index in range(first_chunk, ctrace.n_chunks):
                    starts, sizes = ctrace.chunk(index)
                    sim.simulate(starts, sizes)
                    del starts, sizes
                    if ck is not None and index + 1 < ctrace.n_chunks:
                        ck.store_chunk(
                            line_size,
                            set_counts,
                            max_assoc,
                            index + 1,
                            sim.full_state(),
                        )
                state = sim.state()
                extra["trace_ranges"] = ctrace.n_ranges
                extra["chunks"] = ctrace.n_chunks
                if first_chunk:
                    extra["resumed_at_chunk"] = first_chunk
            del sim
            if ck is not None:
                ck.store(line_size, set_counts, max_assoc, state)
            _fold_group(results, groups[line_size], line_size, max_assoc, state)
        if ck is not None:
            journal.observe_cache(ck.cache, label="sweep-checkpoint")
        return results

    jobs = []
    for line_size in pending:
        set_counts, max_assoc = meta[line_size]
        jobs.append(
            Job(
                key=line_size,
                fn=simulate_group_from_chunks,
                args=(
                    line_size,
                    set_counts,
                    max_assoc,
                    str(ctrace.path),
                    ctrace.digest,
                ),
            )
        )
    journal.record(
        "trace_shipping",
        mode="chunkpath",
        jobs=len(jobs),
        trace_ranges=ctrace.n_ranges,
        chunks=ctrace.n_chunks,
    )
    outcomes = run_jobs(jobs, policy, journal)

    failures: list[tuple[int, str]] = []
    for line_size in pending:
        outcome = outcomes[line_size]
        set_counts, max_assoc = meta[line_size]
        if not outcome.ok:
            failures.append((line_size, outcome.error or "unknown error"))
            journal.record(
                "group_failed",
                line_size=line_size,
                configs=len(groups[line_size]),
                error=outcome.error,
            )
            continue
        journal.record(
            "pass",
            role="sweep",
            line_size=line_size,
            where=outcome.where,
            wall_s=round(outcome.wall_s, 6),
        )
        if ck is not None:
            ck.store(line_size, set_counts, max_assoc, outcome.value)
        _fold_group(
            results, groups[line_size], line_size, max_assoc, outcome.value
        )
    if ck is not None:
        journal.observe_cache(ck.cache, label="sweep-checkpoint")
    if failures and on_error == "raise":
        line_size, error = failures[0]
        raise RuntimeExecutionError(
            f"{len(failures)} line-size group(s) failed after retries "
            f"(first: line {line_size}: {error})"
        )
    return results


def sampled_sweep_design_space(
    configs: Iterable[CacheConfig],
    trace: "tuple[Sequence[int], Sequence[int]] | TraceFactory | ChunkedTrace",
    plan: SamplePlan,
    *,
    journal: RunJournal | None = None,
) -> dict[CacheConfig, SampledMissResult]:
    """Estimate every configuration's misses from sampled intervals.

    Groups by line size like :func:`sweep_design_space`, but simulates
    only the plan's windows: per window, a fresh single-pass simulator
    is warmed on the warm-up prefix (its counts discarded) and then
    measures the window, and per-config misses extrapolate to the whole
    trace by the sampled fraction with a cross-interval error estimate.

    Over a :class:`~repro.trace.chunkstore.ChunkedTrace` each window
    reads only the chunks it overlaps, so a sampled sweep of an
    arbitrarily long on-disk trace stays in bounded memory.  Results are
    estimates — they are never written into exact-result checkpoints.
    """
    journal = resolve_journal(journal)
    groups: dict[int, list[CacheConfig]] = {}
    for config in configs:
        groups.setdefault(config.line_size, []).append(config)
    if not groups:
        return {}

    if isinstance(trace, ChunkedTrace):
        total = trace.n_ranges
        read = trace.window
    else:
        starts, sizes = _materialize(trace)
        total = len(starts)

        def read(lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
            return starts[lo:hi], sizes[lo:hi]

    windows = plan_windows(total, plan)
    results: dict[CacheConfig, SampledMissResult] = {}
    if not windows:  # empty trace
        for group in groups.values():
            for config in group:
                results[config] = SampledMissResult(
                    config, 0, 0, error=None, intervals=0
                )
        return results
    for line_size in sorted(groups):
        group = groups[line_size]
        set_counts = sorted({c.sets for c in group})
        max_assoc = max(c.assoc for c in group)
        per_interval: list[tuple[int, int, dict]] = []
        with journal.timed(
            "pass", role="sampled-sweep", line_size=line_size, where="serial"
        ) as extra:
            for w in windows:
                sim = CheetahSimulator(line_size, set_counts, max_assoc)
                if w.warm_lo < w.lo:
                    sim.simulate(*read(w.warm_lo, w.lo))
                acc0, hists0 = sim.state()
                sim.simulate(*read(w.lo, w.hi))
                acc1, hists1 = sim.state()
                delta = {
                    nsets: [
                        b - a for a, b in zip(hists0[nsets], hists1[nsets])
                    ]
                    for nsets in hists1
                }
                per_interval.append((w.measured, acc1 - acc0, delta))
            extra["intervals"] = len(windows)
            extra["sampled_ranges"] = sum(w.measured for w in windows)
            extra["trace_ranges"] = total
        for config in group:
            tuples = []
            for ranges, accesses, delta in per_interval:
                hist = delta[config.sets]
                hits = sum(hist[: config.assoc])
                tuples.append((ranges, accesses, accesses - hits))
            est = extrapolate(tuples, total)
            results[config] = SampledMissResult(
                config,
                est.accesses,
                est.misses,
                error=est.error,
                intervals=est.intervals,
                sampled_ranges=est.sampled_ranges,
                total_ranges=est.total_ranges,
            )
        journal.record(
            "sampled_pass",
            line_size=line_size,
            intervals=len(windows),
            sampled_ranges=sum(w.measured for w in windows),
            trace_ranges=total,
            configs=len(group),
        )
    return results


def _fold_group(
    results: dict[CacheConfig, MissResult],
    group: list[CacheConfig],
    line_size: int,
    max_assoc: int,
    state: tuple[int, dict[int, list[int]]],
) -> None:
    accesses, hists = state
    sim = CheetahSimulator.from_state(line_size, max_assoc, accesses, hists)
    for config in group:
        results[config] = sim.result(config)


def simulation_passes_required(configs: Iterable[CacheConfig]) -> int:
    """Number of trace passes a sweep needs (= distinct line sizes).

    This is the quantity behind the paper's order-of-magnitude reduction
    claim: "if all 20 caches in the design space have only one of two
    distinct line sizes, the overall computation effort is reduced by an
    order of magnitude."
    """
    return len({c.line_size for c in configs})
