"""Design-space sweep driver.

Implements the paper's first efficiency technique (Section 1): group the
cache design space by line size and run one single-pass Cheetah simulation
per distinct line size, rather than one simulation per configuration.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.cache.cheetah import simulate_many
from repro.cache.config import CacheConfig
from repro.cache.simulator import MissResult

#: A range trace: callable returning (starts, sizes).  Sweeps accept a
#: factory rather than arrays so multi-gigabyte traces can be re-generated
#: lazily per pass instead of held resident.
TraceFactory = Callable[[], tuple[Sequence[int], Sequence[int]]]


def sweep_design_space(
    configs: Iterable[CacheConfig],
    trace: tuple[Sequence[int], Sequence[int]] | TraceFactory,
) -> dict[CacheConfig, MissResult]:
    """Simulate every configuration, one pass per distinct line size.

    ``trace`` is either a ``(starts, sizes)`` pair or a zero-argument
    callable producing one (called once per line-size group).
    """
    groups: dict[int, list[CacheConfig]] = {}
    for config in configs:
        groups.setdefault(config.line_size, []).append(config)

    results: dict[CacheConfig, MissResult] = {}
    for line_size in sorted(groups):
        starts, sizes = trace() if callable(trace) else trace
        results.update(simulate_many(groups[line_size], starts, sizes))
    return results


def simulation_passes_required(configs: Iterable[CacheConfig]) -> int:
    """Number of trace passes a sweep needs (= distinct line sizes).

    This is the quantity behind the paper's order-of-magnitude reduction
    claim: "if all 20 caches in the design space have only one of two
    distinct line sizes, the overall computation effort is reduced by an
    order of magnitude."
    """
    return len({c.line_size for c in configs})
