"""The seed (pre-vectorization) single-pass simulator, kept verbatim.

This is the original per-line-reference ``_touch`` implementation of
:class:`repro.cache.cheetah.CheetahSimulator`.  It survives for two
reasons:

* ``benchmarks/bench_cheetah_perf.py`` measures the vectorized engine's
  speedup against this exact code;
* the property tests cross-validate the vectorized engine against it
  (and against the direct :class:`~repro.cache.simulator.CacheSimulator`)
  so any divergence is caught three ways.

Do not optimize this module; its value is being the known-good baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cache._util import as_int_list
from repro.errors import TraceError


@dataclass
class _StackFamily:
    """Per-set truncated LRU stacks for one set count."""

    nsets: int
    max_assoc: int
    stacks: list[list[int]]
    # hist[k] = number of references found at stack depth k (0 = MRU).
    # hist[max_assoc] accumulates "deeper than we track, or absent".
    hist: list[int]

    @classmethod
    def create(cls, nsets: int, max_assoc: int) -> "_StackFamily":
        return cls(
            nsets=nsets,
            max_assoc=max_assoc,
            stacks=[[] for _ in range(nsets)],
            hist=[0] * (max_assoc + 1),
        )


class LegacyCheetahSimulator:
    """Seed implementation: one ``_touch`` call per line per family."""

    def __init__(
        self, line_size: int, set_counts: Sequence[int], max_assoc: int = 8
    ):
        self.line_size = line_size
        self.max_assoc = max_assoc
        self._families = [
            _StackFamily.create(nsets, max_assoc) for nsets in set_counts
        ]
        self.accesses = 0

    def simulate(
        self,
        starts: Sequence[int] | Iterable[int],
        sizes: Sequence[int] | Iterable[int],
    ) -> None:
        starts_list = as_int_list(starts)
        sizes_list = as_int_list(sizes)
        if len(starts_list) != len(sizes_list):
            raise TraceError("starts and sizes must have equal length")
        line_size = self.line_size
        families = self._families
        accesses = 0
        for start, size in zip(starts_list, sizes_list):
            if size <= 0:
                raise TraceError(f"range size must be positive, got {size}")
            first = start // line_size
            last = (start + size - 1) // line_size
            accesses += last - first + 1
            for line in range(first, last + 1):
                for fam in families:
                    _touch(fam, line)
        self.accesses += accesses

    def misses(self, sets: int, assoc: int) -> int:
        for fam in self._families:
            if fam.nsets == sets:
                return self.accesses - sum(fam.hist[:assoc])
        raise KeyError(sets)


def _touch(fam: _StackFamily, line: int) -> None:
    """Record one line touch in a stack family (seed hot path)."""
    stack = fam.stacks[line % fam.nsets]
    try:
        depth = stack.index(line)
    except ValueError:
        fam.hist[fam.max_assoc] += 1
        stack.insert(0, line)
        if len(stack) > fam.max_assoc:
            stack.pop()
        return
    fam.hist[depth] += 1
    if depth:
        del stack[depth]
        stack.insert(0, line)
