"""Vectorized range-trace -> line-stream expansion (the simulators' front end).

The seed simulators expanded every byte range into its cache lines with a
Python ``range()`` loop per range — the single hottest loop in the code
base.  This module performs the same expansion as three numpy primitives
(`cumsum`/`repeat`/`arange`), then applies an **MRU-collapse** pre-pass
that drops *immediate repeats* (a line referenced twice in a row).

The collapse is miss-equivalent for every cache sharing the line size:
an immediate repeat touches the line that is most-recently-used in its
set — for any set count and any associativity — so it hits at stack
depth 0 and leaves all LRU state unchanged.  Consumers add the dropped
count back into their access totals (and depth-0 histogram buckets).

Expanded streams are memoized per ``(trace fingerprint, line_size)`` so
one expansion is shared by every stack family, by repeated
:class:`~repro.cache.cheetah.CheetahSimulator` passes over the same
trace, and by :func:`~repro.cache.sweep.sweep_design_space`.  The memo
is LRU-bounded by entries *and* bytes (default 256 MiB,
:func:`set_line_stream_cache_budget`), with evictions counted in
:func:`line_stream_cache_stats` and journaled, so long-lived fleet
workers seeing an endless stream of distinct traces stay bounded.

The memo also derives across line sizes: the line stream at size ``L``
is a deterministic coarsening of the stream at any divisor ``L'`` —
every ``L'``-line maps to the ``L``-line containing it, and adjacent
equal values collapse — so a cache miss for ``(trace, L)`` that finds
``(trace, L')`` in the memo derives the coarser stream with one integer
division and one collapse pass instead of re-expanding the byte ranges.
Only the access *count* needs the original ranges (coarser lines merge
differently per range), and it is a closed-form sum.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cache._util import as_int64_array
from repro.errors import TraceError

#: Maximum number of memoized (trace, line size) expansions held at once.
_CACHE_ENTRIES = 32

#: Maximum bytes of line data the memo may hold.  Long-lived ``repro
#: work`` fleet workers see an unbounded stream of distinct traces; an
#: entry cap alone still lets 32 epic-sized expansions pin gigabytes.
_DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

_cache: OrderedDict[tuple[bytes, int], "LineStream"] = OrderedDict()
_cache_lock = threading.Lock()
_cache_bytes = 0
_cache_budget = _DEFAULT_CACHE_BYTES
_cache_stats = {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "evicted_bytes": 0,
}


def _stream_nbytes(stream: "LineStream") -> int:
    return int(stream.lines.nbytes)


def _evict_to_budget_locked() -> None:
    """Pop LRU entries until the cache fits; caller holds the lock."""
    global _cache_bytes
    evicted = evicted_bytes = 0
    while _cache and (
        len(_cache) > _CACHE_ENTRIES or _cache_bytes > _cache_budget
    ):
        _, stream = _cache.popitem(last=False)
        nbytes = _stream_nbytes(stream)
        _cache_bytes -= nbytes
        evicted += 1
        evicted_bytes += nbytes
    if evicted:
        _cache_stats["evictions"] += evicted
        _cache_stats["evicted_bytes"] += evicted_bytes
        # Lazy import: journal lives above the cache layer.
        from repro.runtime.journal import active_journal

        active_journal().record(
            "linestream_evict",
            entries=evicted,
            bytes=evicted_bytes,
            resident_entries=len(_cache),
            resident_bytes=_cache_bytes,
        )


def set_line_stream_cache_budget(max_bytes: int) -> int:
    """Set the memo's byte budget; returns the previous budget.

    Oversized entries (a single stream larger than the budget) are still
    admitted and evicted on the next insert — the cache never refuses a
    stream, it just does not keep it long.
    """
    global _cache_budget
    if max_bytes < 0:
        raise TraceError(f"cache budget must be >= 0, got {max_bytes}")
    with _cache_lock:
        previous = _cache_budget
        _cache_budget = max_bytes
        _evict_to_budget_locked()
    return previous


def line_stream_cache_stats() -> dict[str, int]:
    """Point-in-time memo statistics (hits/misses/evictions/residency)."""
    with _cache_lock:
        return {
            **_cache_stats,
            "resident_entries": len(_cache),
            "resident_bytes": _cache_bytes,
            "budget_bytes": _cache_budget,
        }


@dataclass(frozen=True)
class LineStream:
    """An expanded, MRU-collapsed line-reference stream.

    Attributes
    ----------
    lines:
        Line indices in reference order with immediate repeats removed.
        Stored as int32 when the line indices fit (faster to sort,
        gather and convert), int64 otherwise.
    accesses:
        Number of line touches the original trace performs, *including*
        the collapsed repeats.
    """

    lines: np.ndarray
    accesses: int

    @property
    def repeats(self) -> int:
        """Immediate-repeat references removed by the MRU collapse."""
        return self.accesses - len(self.lines)

    @cached_property
    def max_line(self) -> int:
        """Largest line index (0 for an empty stream), computed once.

        Memoized streams are consumed by many stack families and many
        sweep passes; the stack-distance kernel keys its radix-sort pass
        count off this bound, so it is cached on the stream.
        """
        return int(self.lines.max()) if len(self.lines) else 0

    @cached_property
    def min_line(self) -> int:
        """Smallest line index (0 for an empty stream), computed once."""
        return int(self.lines.min()) if len(self.lines) else 0

    def __len__(self) -> int:
        return len(self.lines)


def expand_lines(
    starts: np.ndarray, sizes: np.ndarray, line_size: int
) -> np.ndarray:
    """Expand byte ranges to the full line-index stream, no Python loops.

    Each range ``[start, start+size)`` contributes the ascending run of
    line indices it overlaps, exactly as the seed simulators' nested
    ``range()`` loops did.
    """
    starts = as_int64_array(starts)
    sizes = as_int64_array(sizes)
    if len(starts) == 0:
        return np.empty(0, dtype=np.int64)
    if int(sizes.min()) <= 0:
        bad = int(sizes[sizes <= 0][0])
        raise TraceError(f"range size must be positive, got {bad}")
    first = starts // line_size
    counts = (starts + sizes - 1) // line_size - first + 1
    total = int(counts.sum())
    # Offset of each output slot within its source range: a global
    # arange minus each range's starting slot, broadcast via repeat.
    slot_starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(slot_starts, counts)
    return np.repeat(first, counts) + offsets


def collapse_repeats(lines: np.ndarray) -> np.ndarray:
    """Drop references identical to their immediate predecessor."""
    if len(lines) < 2:
        return lines
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    if keep.all():
        return lines
    return lines[keep]


def line_access_count(
    starts: np.ndarray, sizes: np.ndarray, line_size: int
) -> int:
    """Line touches of a range trace at one line size (closed form).

    Equal to ``len(expand_lines(starts, sizes, line_size))`` without
    materializing the expansion: each range touches its spanned lines.
    """
    if len(starts) == 0:
        return 0
    first = starts // line_size
    return int(((starts + sizes - 1) // line_size - first + 1).sum())


def derive_stream(
    base: LineStream,
    factor: int,
    starts: np.ndarray,
    sizes: np.ndarray,
    line_size: int,
) -> LineStream:
    """Coarsen a finer-granularity stream to ``line_size`` (= base * factor).

    Each fine line maps onto the coarse line containing it (one floor
    division), and mapping preserves adjacency, so collapsing the mapped
    stream equals collapsing the direct expansion — the MRU-collapse of
    the base stream never merges references that the coarse collapse
    would keep apart.  Access counts come from the ranges, since a
    coarser line can absorb several of a range's fine lines.
    """
    lines = collapse_repeats(base.lines // factor)
    if lines.dtype != np.int32 and len(lines):
        if int(lines.min()) >= -(2**31) and int(lines.max()) < 2**31:
            lines = lines.astype(np.int32)
    return LineStream(
        lines=lines, accesses=line_access_count(starts, sizes, line_size)
    )


def _derivation_base(
    digest: bytes, line_size: int
) -> tuple[int, LineStream] | None:
    """Best memoized finer stream of the same trace (largest divisor)."""
    best: tuple[int, LineStream] | None = None
    for (cached_digest, cached_size), stream in _cache.items():
        if (
            cached_digest == digest
            and cached_size < line_size
            and line_size % cached_size == 0
            and (best is None or cached_size > best[0])
        ):
            best = (cached_size, stream)
    return best


def trace_digest(starts: np.ndarray, sizes: np.ndarray) -> bytes:
    """Content fingerprint of a range trace (the memo key's trace part).

    Hashing a large trace costs a few milliseconds; callers touching
    many line sizes of one batch (the whole-design-space simulator)
    compute this once and pass it to every :func:`line_stream` call
    instead of re-fingerprinting per size.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(len(starts).to_bytes(8, "little"))
    digest.update(starts.tobytes())
    digest.update(sizes.tobytes())
    return digest.digest()


def line_stream(
    starts: np.ndarray,
    sizes: np.ndarray,
    line_size: int,
    *,
    memoize: bool = True,
    digest: bytes | None = None,
) -> LineStream:
    """Expanded+collapsed stream for a range trace, memoized by content.

    The memo key is a content fingerprint of the arrays, so distinct
    array objects holding the same trace share one expansion.  A miss at
    ``line_size`` that finds the same trace memoized at a finer
    granularity dividing it derives the coarser stream from that entry
    (see :func:`derive_stream`) instead of re-expanding the ranges.
    ``digest`` supplies a precomputed :func:`trace_digest` so one
    fingerprint pass serves every line size of a batch.
    """
    starts = as_int64_array(starts)
    sizes = as_int64_array(sizes)
    if len(starts) != len(sizes):
        raise TraceError("starts and sizes must have equal length")

    key: tuple[bytes, int] | None = None
    base: tuple[int, LineStream] | None = None
    if memoize:
        if digest is None:
            digest = trace_digest(starts, sizes)
        key = (digest, line_size)
        with _cache_lock:
            cached = _cache.get(key)
            if cached is not None:
                _cache.move_to_end(key)
                _cache_stats["hits"] += 1
                return cached
            _cache_stats["misses"] += 1
            base = _derivation_base(key[0], line_size)

    if base is not None:
        base_size, base_stream = base
        stream = derive_stream(
            base_stream, line_size // base_size, starts, sizes, line_size
        )
    else:
        lines = expand_lines(starts, sizes, line_size)
        accesses = len(lines)
        lines = collapse_repeats(lines)
        if (
            len(lines)
            and int(lines.min()) >= -(2**31)
            and int(lines.max()) < 2**31
        ):
            lines = lines.astype(np.int32)
        stream = LineStream(lines=lines, accesses=accesses)

    if key is not None:
        with _cache_lock:
            global _cache_bytes
            previous = _cache.pop(key, None)
            if previous is not None:
                _cache_bytes -= _stream_nbytes(previous)
            _cache[key] = stream
            _cache_bytes += _stream_nbytes(stream)
            _evict_to_budget_locked()
    return stream


def clear_line_stream_cache() -> None:
    """Drop all memoized expansions (mainly for tests and benchmarks)."""
    global _cache_bytes
    with _cache_lock:
        _cache.clear()
        _cache_bytes = 0
        for stat in _cache_stats:
            _cache_stats[stat] = 0
