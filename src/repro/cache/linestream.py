"""Vectorized range-trace -> line-stream expansion (the simulators' front end).

The seed simulators expanded every byte range into its cache lines with a
Python ``range()`` loop per range — the single hottest loop in the code
base.  This module performs the same expansion as three numpy primitives
(`cumsum`/`repeat`/`arange`), then applies an **MRU-collapse** pre-pass
that drops *immediate repeats* (a line referenced twice in a row).

The collapse is miss-equivalent for every cache sharing the line size:
an immediate repeat touches the line that is most-recently-used in its
set — for any set count and any associativity — so it hits at stack
depth 0 and leaves all LRU state unchanged.  Consumers add the dropped
count back into their access totals (and depth-0 histogram buckets).

Expanded streams are memoized per ``(trace fingerprint, line_size)`` so
one expansion is shared by every stack family, by repeated
:class:`~repro.cache.cheetah.CheetahSimulator` passes over the same
trace, and by :func:`~repro.cache.sweep.sweep_design_space`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cache._util import as_int64_array
from repro.errors import TraceError

#: Maximum number of memoized (trace, line size) expansions held at once.
_CACHE_ENTRIES = 32

_cache: OrderedDict[tuple[bytes, int], "LineStream"] = OrderedDict()
_cache_lock = threading.Lock()


@dataclass(frozen=True)
class LineStream:
    """An expanded, MRU-collapsed line-reference stream.

    Attributes
    ----------
    lines:
        Line indices in reference order with immediate repeats removed.
        Stored as int32 when the line indices fit (faster to sort,
        gather and convert), int64 otherwise.
    accesses:
        Number of line touches the original trace performs, *including*
        the collapsed repeats.
    """

    lines: np.ndarray
    accesses: int

    @property
    def repeats(self) -> int:
        """Immediate-repeat references removed by the MRU collapse."""
        return self.accesses - len(self.lines)

    @cached_property
    def max_line(self) -> int:
        """Largest line index (0 for an empty stream), computed once.

        Memoized streams are consumed by many stack families and many
        sweep passes; the stack-distance kernel keys its radix-sort pass
        count off this bound, so it is cached on the stream.
        """
        return int(self.lines.max()) if len(self.lines) else 0

    @cached_property
    def min_line(self) -> int:
        """Smallest line index (0 for an empty stream), computed once."""
        return int(self.lines.min()) if len(self.lines) else 0

    def __len__(self) -> int:
        return len(self.lines)


def expand_lines(
    starts: np.ndarray, sizes: np.ndarray, line_size: int
) -> np.ndarray:
    """Expand byte ranges to the full line-index stream, no Python loops.

    Each range ``[start, start+size)`` contributes the ascending run of
    line indices it overlaps, exactly as the seed simulators' nested
    ``range()`` loops did.
    """
    starts = as_int64_array(starts)
    sizes = as_int64_array(sizes)
    if len(starts) == 0:
        return np.empty(0, dtype=np.int64)
    if int(sizes.min()) <= 0:
        bad = int(sizes[sizes <= 0][0])
        raise TraceError(f"range size must be positive, got {bad}")
    first = starts // line_size
    counts = (starts + sizes - 1) // line_size - first + 1
    total = int(counts.sum())
    # Offset of each output slot within its source range: a global
    # arange minus each range's starting slot, broadcast via repeat.
    slot_starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(slot_starts, counts)
    return np.repeat(first, counts) + offsets


def collapse_repeats(lines: np.ndarray) -> np.ndarray:
    """Drop references identical to their immediate predecessor."""
    if len(lines) < 2:
        return lines
    keep = np.empty(len(lines), dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    if keep.all():
        return lines
    return lines[keep]


def line_stream(
    starts: np.ndarray,
    sizes: np.ndarray,
    line_size: int,
    *,
    memoize: bool = True,
) -> LineStream:
    """Expanded+collapsed stream for a range trace, memoized by content.

    The memo key is a content fingerprint of the arrays, so distinct
    array objects holding the same trace share one expansion.
    """
    starts = as_int64_array(starts)
    sizes = as_int64_array(sizes)
    if len(starts) != len(sizes):
        raise TraceError("starts and sizes must have equal length")

    key: tuple[bytes, int] | None = None
    if memoize:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(len(starts).to_bytes(8, "little"))
        digest.update(starts.tobytes())
        digest.update(sizes.tobytes())
        key = (digest.digest(), line_size)
        with _cache_lock:
            cached = _cache.get(key)
            if cached is not None:
                _cache.move_to_end(key)
                return cached

    lines = expand_lines(starts, sizes, line_size)
    accesses = len(lines)
    lines = collapse_repeats(lines)
    if len(lines) and int(lines.min()) >= -(2**31) and int(lines.max()) < 2**31:
        lines = lines.astype(np.int32)
    stream = LineStream(lines=lines, accesses=accesses)

    if key is not None:
        with _cache_lock:
            _cache[key] = stream
            while len(_cache) > _CACHE_ENTRIES:
                _cache.popitem(last=False)
    return stream


def clear_line_stream_cache() -> None:
    """Drop all memoized expansions (mainly for tests and benchmarks)."""
    with _cache_lock:
        _cache.clear()
