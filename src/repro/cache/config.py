"""Cache geometry: the C(S, A, L) notation of the paper (Table 1).

A cache is described by its number of sets ``S``, associativity ``A`` and
line size ``L`` in bytes.  The paper calls a cache *feasible* when its line
size and number of sets are powers of two and its associativity is an
integer (Section 4.1); :class:`CacheConfig` enforces feasibility, while the
dilation model internally reasons about infeasible line sizes ``L/d``
without ever constructing one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Word size in bytes; the AHH model works in word addresses.
WORD_BYTES = 4


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True, order=True)
class CacheConfig:
    """A feasible cache configuration C(S, A, L).

    Parameters
    ----------
    sets:
        Number of sets ``S`` (power of two).
    assoc:
        Associativity ``A`` (a positive integer).
    line_size:
        Line size ``L`` in bytes (power of two, at least one word).
    ports:
        Number of access ports (cost-relevant only; the simulators are
        port-oblivious, as in the paper).
    """

    sets: int
    assoc: int
    line_size: int
    ports: int = 1

    def __post_init__(self) -> None:
        if not _is_pow2(self.sets):
            raise ConfigurationError(f"sets must be a power of two, got {self.sets}")
        if self.assoc < 1:
            raise ConfigurationError(f"assoc must be >= 1, got {self.assoc}")
        if not _is_pow2(self.line_size) or self.line_size < WORD_BYTES:
            raise ConfigurationError(
                f"line_size must be a power of two >= {WORD_BYTES}, "
                f"got {self.line_size}"
            )
        if self.ports < 1:
            raise ConfigurationError(f"ports must be >= 1, got {self.ports}")

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes: S * A * L."""
        return self.sets * self.assoc * self.line_size

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0

    def line_of(self, addr: int) -> int:
        """Line index (global, not set-relative) containing byte ``addr``."""
        return addr // self.line_size

    def set_of_line(self, line: int) -> int:
        """Set a line maps to."""
        return line % self.sets

    def with_line_size(self, line_size: int) -> "CacheConfig":
        """Same cache with a different line size (Lemma 1 transformations)."""
        return CacheConfig(self.sets, self.assoc, line_size, self.ports)

    @classmethod
    def from_size(
        cls, size_bytes: int, assoc: int, line_size: int, ports: int = 1
    ) -> "CacheConfig":
        """Build from total capacity instead of set count.

        ``CacheConfig.from_size(16 * 1024, 2, 32)`` is the paper's 16KB
        two-way cache with 32-byte lines.
        """
        denom = assoc * line_size
        if size_bytes % denom:
            raise ConfigurationError(
                f"size {size_bytes} not divisible by assoc*line_size={denom}"
            )
        return cls(size_bytes // denom, assoc, line_size, ports)

    def describe(self) -> str:
        """Human-readable summary like ``16KB 2-way L=32 (S=256)``."""
        size = self.size_kb
        size_str = f"{size:g}KB" if size >= 1 else f"{self.size_bytes}B"
        way = "direct-mapped" if self.assoc == 1 else f"{self.assoc}-way"
        return f"{size_str} {way} L={self.line_size} (S={self.sets})"

    def __str__(self) -> str:
        return f"C(S={self.sets},A={self.assoc},L={self.line_size})"
