"""Cache configurations and simulators.

Two independent simulators are provided, mirroring the paper's tooling:

* :class:`~repro.cache.simulator.CacheSimulator` — a direct set-associative
  LRU simulator (plays the role of the IMPACT simulator used for validation
  in Section 6.1).
* :class:`~repro.cache.cheetah.CheetahSimulator` — a single-pass
  multi-configuration simulator (plays the role of Cheetah [17]): one pass
  over a trace yields the misses of every cache with a common line size.

Traces are *range traces*: parallel arrays ``(starts, sizes)`` of byte
ranges.  A data reference is a one-word range; an instruction basic-block
visit is the block's whole byte range.  Touching each line of a range once,
in order, is miss-equivalent to touching every word: consecutive words of a
line hit the already-MRU line without changing LRU state.
"""

from repro.cache.area import cache_cost
from repro.cache.cheetah import CheetahSimulator, simulate_many
from repro.cache.config import CacheConfig
from repro.cache.inclusion import satisfies_inclusion
from repro.cache.linestream import (
    LineStream,
    clear_line_stream_cache,
    collapse_repeats,
    expand_lines,
    line_stream,
    line_stream_cache_stats,
    set_line_stream_cache_budget,
)
from repro.cache.simulator import (
    CacheSimulator,
    MissResult,
    SampledMissResult,
    simulate_trace,
)
from repro.cache.sweep import sampled_sweep_design_space, sweep_design_space
from repro.cache.writepolicy import WriteResult, simulate_write_policy

__all__ = [
    "CacheConfig",
    "CacheSimulator",
    "MissResult",
    "SampledMissResult",
    "simulate_trace",
    "CheetahSimulator",
    "simulate_many",
    "sweep_design_space",
    "sampled_sweep_design_space",
    "satisfies_inclusion",
    "cache_cost",
    "simulate_write_policy",
    "WriteResult",
    "LineStream",
    "line_stream",
    "expand_lines",
    "collapse_repeats",
    "clear_line_stream_cache",
    "line_stream_cache_stats",
    "set_line_stream_cache_budget",
]
