"""Single-pass multi-configuration cache simulation (the Cheetah role).

The paper (Sections 1 and 3.3) relies on the Cheetah simulator [17] to
evaluate *every* cache with a common line size in one pass over the trace.
This module implements the same capability with the classic
all-associativity algorithm: for each set-mapping, per-set LRU stacks
record the *stack distance* of every reference, and the misses of an
A-way cache are exactly the references whose distance is >= A (plus cold
references).  Maintaining one stack family per candidate set count still
requires only a single pass over the trace.

The stacks are truncated at the maximum associativity of interest, so
memory stays bounded regardless of trace length.

Engine
------
The batch path (:meth:`CheetahSimulator.simulate`) is vectorized.  Per
trace it runs one memoized numpy expansion of byte ranges into a line
stream with immediate repeats removed (:mod:`repro.cache.linestream`),
then per stack family:

1. partitions the stream by set with one radix ``argsort`` of the
   (small-dtype) set indices — per-set LRU state is independent of other
   sets, so stack distances only depend on the within-set order, which a
   stable sort preserves;
2. removes *within-set* immediate repeats vectorially — each is a
   depth-0 hit that leaves LRU state unchanged (``hist[0]`` credit);
3. removes period-2 alternations (``x y x y ...``) pairwise — each
   removed reference sits at stack depth exactly 1, and removing an
   adjacent ``x, y`` pair swaps the set's top two stack entries twice,
   leaving state unchanged (``hist[1]`` credit; for ``max_assoc == 1``
   that bucket is the shared "deeper-or-absent" bucket the seed's miss
   path used, so accounting still matches bit-for-bit);
4. feeds only the surviving references (typically < 15% of the stream)
   to a tight Python LRU-stack loop.

``docs/PERFORMANCE.md`` documents the design and its invariants; the
seed implementation is preserved in :mod:`repro.cache._legacy` as the
benchmark baseline and property-test oracle.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cache._util import as_int64_array
from repro.cache.config import CacheConfig
from repro.cache.linestream import LineStream, line_stream
from repro.cache.simulator import MissResult
from repro.errors import ConfigurationError, TraceError


class _Family:
    """Per-set-count truncated LRU stacks plus the depth histogram."""

    __slots__ = ("nsets", "max_assoc", "stacks", "hist")

    def __init__(self, nsets: int, max_assoc: int):
        self.nsets = nsets
        self.max_assoc = max_assoc
        self.stacks: list[list[int]] = [[] for _ in range(nsets)]
        # hist[k] = number of references found at stack depth k (0 = MRU).
        # hist[max_assoc] accumulates "deeper than we track, or absent".
        self.hist: list[int] = [0] * (max_assoc + 1)


class CheetahSimulator:
    """Simulate all caches of one line size in a single trace pass.

    Parameters
    ----------
    line_size:
        Common line size in bytes of every simulated configuration.
    set_counts:
        The distinct set counts to track (each a power of two).  Any
        iterable is accepted, including one-shot iterators.
    max_assoc:
        Largest associativity of interest.  After a pass,
        :meth:`misses` answers for any ``A <= max_assoc``.
    """

    def __init__(
        self, line_size: int, set_counts: Sequence[int] | Iterable[int],
        max_assoc: int = 8,
    ):
        if max_assoc < 1:
            raise ConfigurationError(f"max_assoc must be >= 1, got {max_assoc}")
        # Materialize once so one-shot iterables are safe.
        counts = [int(nsets) for nsets in set_counts]
        # CacheConfig validates line size / set count feasibility for us.
        for nsets in counts:
            CacheConfig(nsets, 1, line_size)
        if len(set(counts)) != len(counts):
            raise ConfigurationError("set_counts contains duplicates")
        self.line_size = line_size
        self.max_assoc = max_assoc
        # Keyed by set count for O(1) lookup in :meth:`misses`.
        self._families: dict[int, _Family] = {
            nsets: _Family(nsets, max_assoc) for nsets in counts
        }
        self.accesses = 0
        self._sealed = False

    @classmethod
    def from_state(
        cls,
        line_size: int,
        max_assoc: int,
        accesses: int,
        hists: Mapping[int, Sequence[int]],
    ) -> "CheetahSimulator":
        """Rebuild a query-only simulator from exported :meth:`state`.

        Used to merge results simulated in worker processes back into
        the parent's API objects.  The rebuilt simulator answers
        :meth:`misses`/:meth:`result` queries but refuses further trace
        feeding (its LRU stacks were not shipped along).
        """
        sim = cls(line_size, list(hists), max_assoc)
        sim.accesses = accesses
        for nsets, hist in hists.items():
            if len(hist) != max_assoc + 1:
                raise ConfigurationError(
                    f"histogram for {nsets} sets has {len(hist)} buckets, "
                    f"expected {max_assoc + 1}"
                )
            sim._families[nsets].hist = [int(h) for h in hist]
        sim._sealed = True
        return sim

    def state(self) -> tuple[int, dict[int, list[int]]]:
        """Exportable (accesses, {set count: depth histogram}) snapshot."""
        return self.accesses, {
            nsets: list(fam.hist) for nsets, fam in self._families.items()
        }

    @property
    def set_counts(self) -> list[int]:
        return list(self._families)

    def reset(self) -> None:
        """Empty every stack family and zero the counters."""
        self._families = {
            nsets: _Family(nsets, fam.max_assoc)
            for nsets, fam in self._families.items()
        }
        self.accesses = 0
        self._sealed = False

    def _check_unsealed(self) -> None:
        if self._sealed:
            raise ConfigurationError(
                "this CheetahSimulator was rebuilt from exported state and "
                "is query-only; it cannot consume further references"
            )

    def access_line(self, line: int) -> None:
        """Feed one line reference to every stack family."""
        self._check_unsealed()
        self.accesses += 1
        for fam in self._families.values():
            _touch(fam, line)

    def simulate(
        self,
        starts: Sequence[int] | Iterable[int],
        sizes: Sequence[int] | Iterable[int],
    ) -> None:
        """Feed a whole range trace (may be called repeatedly to append)."""
        self._check_unsealed()
        starts_arr = as_int64_array(starts)
        sizes_arr = as_int64_array(sizes)
        if len(starts_arr) != len(sizes_arr):
            raise TraceError("starts and sizes must have equal length")
        stream = line_stream(starts_arr, sizes_arr, self.line_size)
        self.consume(stream)

    def consume(self, stream: LineStream) -> None:
        """Feed a pre-expanded line stream to every stack family."""
        self._check_unsealed()
        self.accesses += stream.accesses
        for fam in self._families.values():
            _process_family(fam, stream)

    def misses(self, sets: int, assoc: int) -> int:
        """Misses of cache C(sets, assoc, line_size) on the trace seen so far.

        A reference hits an A-way LRU cache iff its per-set stack distance
        is < A, so misses = accesses - sum(hist[0:A]).
        """
        if assoc < 1 or assoc > self.max_assoc:
            raise ConfigurationError(
                f"assoc {assoc} outside tracked range 1..{self.max_assoc}"
            )
        fam = self._families.get(sets)
        if fam is None:
            raise ConfigurationError(f"set count {sets} was not tracked")
        return self.accesses - sum(fam.hist[:assoc])

    def result(self, config: CacheConfig) -> MissResult:
        """Miss result for one tracked configuration."""
        if config.line_size != self.line_size:
            raise ConfigurationError(
                f"config line size {config.line_size} != simulator "
                f"line size {self.line_size}"
            )
        return MissResult(
            config, self.accesses, self.misses(config.sets, config.assoc)
        )

    def results(self) -> dict[CacheConfig, MissResult]:
        """Miss results for every tracked (sets, assoc) combination."""
        out: dict[CacheConfig, MissResult] = {}
        for nsets in self._families:
            for assoc in range(1, self.max_assoc + 1):
                config = CacheConfig(nsets, assoc, self.line_size)
                out[config] = self.result(config)
        return out


def _touch(fam: _Family, line: int) -> None:
    """Record one line touch in a stack family (scalar path)."""
    stack = fam.stacks[line % fam.nsets]
    try:
        depth = stack.index(line)
    except ValueError:
        fam.hist[fam.max_assoc] += 1
        stack.insert(0, line)
        if len(stack) > fam.max_assoc:
            stack.pop()
        return
    fam.hist[depth] += 1
    if depth:
        del stack[depth]
        stack.insert(0, line)


def _process_family(fam: _Family, stream: LineStream) -> None:
    """Batch-process one family: vectorized pre-passes + survivor loop."""
    hist = fam.hist
    hist[0] += stream.repeats
    lines = stream.lines
    n = len(lines)
    if n == 0:
        return
    nsets = fam.nsets

    if nsets == 1:
        # Already "partitioned": one set, stream order, repeats removed.
        part = lines
        setkeys = None
    else:
        sidx = lines & (nsets - 1)
        # Radix-sortable small dtype: integer stable argsort in numpy is
        # ~8x faster on uint16 keys than on int64.
        key = sidx.astype(np.uint16) if nsets <= (1 << 16) else sidx
        order = np.argsort(key, kind="stable")
        part = lines[order]
        setkeys = key[order]
        # Within-set immediate repeats are depth-0 hits with no state
        # change (the line is its set's MRU); count and drop vectorially.
        dup = (part[1:] == part[:-1]) & (setkeys[1:] == setkeys[:-1])
        ndup = int(dup.sum())
        if ndup:
            hist[0] += ndup
            keep = np.empty(n, dtype=bool)
            keep[0] = True
            np.logical_not(dup, out=keep[1:])
            part = part[keep]
            setkeys = setkeys[keep]

    # Period-2 alternation pre-pass: in a consecutive-duplicate-free
    # per-set sequence, a reference equal to the one two back sits at
    # stack depth exactly 1 (one distinct line touched in between).
    # Removing such references *in adjacent pairs* is state-neutral:
    # the pair swaps the set's top two stack entries twice.  For runs of
    # odd length the last alternating reference is kept for the loop.
    m = len(part)
    if m > 2:
        if setkeys is None:
            alt = part[2:] == part[:-2]
        else:
            alt = (part[2:] == part[:-2]) & (setkeys[2:] == setkeys[:-2])
        if alt.any():
            altf = np.zeros(m, dtype=bool)
            altf[2:] = alt
            idx = np.arange(m)
            # 1-based position of each reference within its run of
            # consecutive alternating references.
            pos = idx - np.maximum.accumulate(np.where(~altf, idx, -1))
            run_start = altf.copy()
            run_start[1:] &= ~altf[:-1]
            run_id = np.cumsum(run_start)
            run_len = np.bincount(run_id[altf], minlength=int(run_id[-1]) + 1)[
                run_id
            ]
            keep_last = altf & ((run_len & 1) == 1) & (pos == run_len)
            remove = altf & ~keep_last
            nremove = int(remove.sum())
            if nremove:
                hist[1] += nremove
                keepm = ~remove
                part = part[keepm]
                if setkeys is not None:
                    setkeys = setkeys[keepm]

    seq = part.tolist()
    m = len(seq)
    if m == 0:
        return

    # Per-set segment boundaries in the partitioned survivor stream.
    if setkeys is None:
        bounds = [0, m]
        segment_sets = [0]
    else:
        change = np.flatnonzero(setkeys[1:] != setkeys[:-1]) + 1
        bounds = [0, *change.tolist(), m]
        segment_sets = setkeys[
            np.concatenate((np.zeros(1, dtype=np.int64), change))
        ].tolist()

    stacks = fam.stacks
    max_assoc = fam.max_assoc
    for seg in range(len(segment_sets)):
        lo = bounds[seg]
        hi = bounds[seg + 1]
        stack = stacks[segment_sets[seg]]
        if stack:
            # Only the first reference of a segment can equal the MRU
            # left by a previous simulate()/access_line() call; later
            # ones differ from their predecessor by construction.
            line = seq[lo]
            if line == stack[0]:
                hist[0] += 1
            elif line in stack:
                depth = stack.index(line, 1)
                hist[depth] += 1
                stack.insert(0, stack.pop(depth))
            else:
                hist[max_assoc] += 1
                stack.insert(0, line)
                if len(stack) > max_assoc:
                    stack.pop()
            lo += 1
        index = stack.index
        insert = stack.insert
        pop = stack.pop
        depth_here = len(stack)
        for line in seq[lo:hi]:
            if line in stack:
                # Depth >= 1 always: the predecessor reference is the
                # current MRU and differs from this line.
                depth = index(line, 1)
                hist[depth] += 1
                insert(0, pop(depth))
            else:
                hist[max_assoc] += 1
                insert(0, line)
                depth_here += 1
                if depth_here > max_assoc:
                    pop()
                    depth_here = max_assoc


def simulate_many(
    configs: Sequence[CacheConfig],
    starts: Sequence[int] | Iterable[int],
    sizes: Sequence[int] | Iterable[int],
) -> dict[CacheConfig, MissResult]:
    """Simulate several same-line-size configurations in one pass.

    Convenience wrapper used when the caller already knows all configs
    share a line size; :func:`repro.cache.sweep.sweep_design_space`
    handles the general mixed-line-size case.
    """
    if not configs:
        return {}
    line_sizes = {c.line_size for c in configs}
    if len(line_sizes) != 1:
        raise ConfigurationError(
            "simulate_many requires a common line size; got "
            f"{sorted(line_sizes)} (use sweep_design_space instead)"
        )
    set_counts = sorted({c.sets for c in configs})
    max_assoc = max(c.assoc for c in configs)
    sim = CheetahSimulator(configs[0].line_size, set_counts, max_assoc)
    sim.simulate(starts, sizes)
    return {c: sim.result(c) for c in configs}
