"""Single-pass multi-configuration cache simulation (the Cheetah role).

The paper (Sections 1 and 3.3) relies on the Cheetah simulator [17] to
evaluate *every* cache with a common line size in one pass over the trace.
This module implements the same capability with the classic
all-associativity algorithm: for each set-mapping, per-set LRU stacks
record the *stack distance* of every reference, and the misses of an
A-way cache are exactly the references whose distance is >= A (plus cold
references).  Maintaining one stack family per candidate set count still
requires only a single pass over the trace.

The stacks are truncated at the maximum associativity of interest, so
memory stays bounded regardless of trace length.

Engine
------
The batch path (:meth:`CheetahSimulator.simulate`) is vectorized end to
end.  Per trace it runs one memoized numpy expansion of byte ranges into
a line stream with immediate repeats removed
(:mod:`repro.cache.linestream`); per batch it value-sorts the stream
*once* to link every reference to its previous occurrence (occurrence
order of a line is identical in every set partition, because equal
lines share a set and partitioning keeps within-set order); per family
it:

1. radix-partitions the stream by the family's set bits — refining the
   previous family's partition by one stable per-bit split when the set
   counts double (the set bits of family ``2k`` extend those of family
   ``k``), re-sorting across wider jumps where the chain of splits
   would cost more than one fresh 16-bit radix sort;
2. maps the shared occurrence links into the partition and hands the
   partitioned stream to the offline stack-distance kernel
   (:mod:`repro.cache.stackdist`), which resolves every reference's
   clamped LRU stack distance in O(n log n) whole-array operations, and
   bin-counts the distances into the depth histogram (within-set
   immediate repeats simply come out at depth 0);
3. prepends the family's carried per-set LRU stacks as synthetic
   references (deepest first) when the simulator already consumed
   earlier batches — each synthetic is cold by construction, so its
   histogram contribution is known and subtracted afterwards, and the
   batch references then see exactly the stack state they would have
   seen scalar-stepped.

Small batches (and explicit ``engine="scalar"``) take the previous
generation of the engine instead: vectorized dedup + period-2
alternation pre-passes feeding a per-reference Python LRU loop.  That
scalar path and the per-line :func:`_touch` are kept as the property
-test oracle alongside :mod:`repro.cache._legacy`, and as the baseline
the benchmarks measure the kernel against.

Per-family kernel timings are recorded into the active
:class:`~repro.runtime.journal.RunJournal` (event ``stackdist``), so
``repro report --journal`` shows where pass time goes.

``docs/PERFORMANCE.md`` documents the design and its invariants; the
seed implementation is preserved in :mod:`repro.cache._legacy` as the
benchmark baseline and property-test oracle.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.cache._util import as_int64_array
from repro.cache.config import CacheConfig
from repro.cache.linestream import LineStream, line_stream
from repro.cache.simulator import MissResult
from repro.cache.stackdist import (
    partition_by_set,
    radix_argsort,
    refine_partition,
    stack_distances,
)
from repro.errors import ConfigurationError, TraceError
from repro.runtime.journal import active_journal

#: Batches at or below this many references take the scalar survivor
#: loop under ``engine="auto"`` — the kernel's fixed vectorization
#: overhead only pays for itself on larger streams.
SCALAR_BATCH_LIMIT = 2048

#: Refine an existing partition only across this factor (one doubling);
#: wider jumps re-sort from scratch — a fresh 16-bit radix sort costs
#: about as much as two single-bit split passes.
_MAX_REFINE_FACTOR = 2

#: Compact within-set immediate repeats before the kernel when they
#: exceed 1/16 of the partitioned stream; below that the kernel scores
#: them as depth-0 hits at no extra cost.
_DUP_COMPACT_DIVISOR = 16


class _Family:
    """Per-set-count truncated LRU stacks plus the depth histogram."""

    __slots__ = ("nsets", "max_assoc", "stacks", "hist", "pending")

    def __init__(self, nsets: int, max_assoc: int):
        self.nsets = nsets
        self.max_assoc = max_assoc
        self.stacks: list[list[int]] = [[] for _ in range(nsets)]
        # hist[k] = number of references found at stack depth k (0 = MRU).
        # hist[max_assoc] accumulates "deeper than we track, or absent".
        self.hist: list[int] = [0] * (max_assoc + 1)
        # Deferred stack materialization after a kernel batch: the
        # partitioned stream plus which positions recur later.  Most
        # simulations never read the stacks again, so the rebuild only
        # happens when another batch or access_line() needs them.
        self.pending: tuple | None = None


class CheetahSimulator:
    """Simulate all caches of one line size in a single trace pass.

    Parameters
    ----------
    line_size:
        Common line size in bytes of every simulated configuration.
    set_counts:
        The distinct set counts to track (each a power of two).  Any
        iterable is accepted, including one-shot iterators.
    max_assoc:
        Largest associativity of interest.  After a pass,
        :meth:`misses` answers for any ``A <= max_assoc``.
    engine:
        ``"auto"`` (default) uses the vectorized stack-distance kernel
        for batches larger than :data:`SCALAR_BATCH_LIMIT` and the
        scalar survivor loop otherwise; ``"kernel"`` / ``"scalar"``
        force one path.  All three produce bit-identical histograms.
    """

    def __init__(
        self, line_size: int, set_counts: Sequence[int] | Iterable[int],
        max_assoc: int = 8, engine: str = "auto",
    ):
        if max_assoc < 1:
            raise ConfigurationError(f"max_assoc must be >= 1, got {max_assoc}")
        if engine not in ("auto", "kernel", "scalar"):
            raise ConfigurationError(
                f"engine must be 'auto', 'kernel' or 'scalar', got {engine!r}"
            )
        # Materialize once so one-shot iterables are safe.
        counts = [int(nsets) for nsets in set_counts]
        # CacheConfig validates line size / set count feasibility for us.
        for nsets in counts:
            CacheConfig(nsets, 1, line_size)
        if len(set(counts)) != len(counts):
            raise ConfigurationError("set_counts contains duplicates")
        self.line_size = line_size
        self.max_assoc = max_assoc
        self.engine = engine
        # Keyed by set count for O(1) lookup in :meth:`misses`.
        self._families: dict[int, _Family] = {
            nsets: _Family(nsets, max_assoc) for nsets in counts
        }
        self.accesses = 0
        self._sealed = False

    @classmethod
    def from_state(
        cls,
        line_size: int,
        max_assoc: int,
        accesses: int,
        hists: Mapping[int, Sequence[int]],
    ) -> "CheetahSimulator":
        """Rebuild a query-only simulator from exported :meth:`state`.

        Used to merge results simulated in worker processes back into
        the parent's API objects.  The rebuilt simulator answers
        :meth:`misses`/:meth:`result` queries but refuses further trace
        feeding (its LRU stacks were not shipped along).
        """
        sim = cls(line_size, list(hists), max_assoc)
        sim.accesses = accesses
        for nsets, hist in hists.items():
            if len(hist) != max_assoc + 1:
                raise ConfigurationError(
                    f"histogram for {nsets} sets has {len(hist)} buckets, "
                    f"expected {max_assoc + 1}"
                )
            sim._families[nsets].hist = [int(h) for h in hist]
        sim._sealed = True
        return sim

    def state(self) -> tuple[int, dict[int, list[int]]]:
        """Exportable (accesses, {set count: depth histogram}) snapshot."""
        return self.accesses, {
            nsets: list(fam.hist) for nsets, fam in self._families.items()
        }

    def full_state(self) -> tuple[int, dict[int, dict]]:
        """Exportable mid-trace snapshot including the LRU stacks.

        Unlike :meth:`state`, a simulator rebuilt from this snapshot
        (:meth:`from_full_state`) can keep consuming references — the
        hook chunk-at-a-time sweeps use to checkpoint between chunks.
        Deferred stacks are materialized first, so this is not free;
        call it at chunk boundaries, not per batch.
        """
        out: dict[int, dict] = {}
        for nsets, fam in self._families.items():
            _ensure_stacks(fam)
            out[nsets] = {
                "hist": list(fam.hist),
                "stacks": [list(stack) for stack in fam.stacks],
            }
        return self.accesses, out

    @classmethod
    def from_full_state(
        cls,
        line_size: int,
        max_assoc: int,
        accesses: int,
        families: Mapping[int, Mapping],
        engine: str = "auto",
    ) -> "CheetahSimulator":
        """Rebuild a *resumable* simulator from :meth:`full_state`."""
        sim = cls(line_size, list(families), max_assoc, engine=engine)
        sim.accesses = accesses
        for nsets, snap in families.items():
            fam = sim._families[nsets]
            hist = list(snap["hist"])
            if len(hist) != max_assoc + 1:
                raise ConfigurationError(
                    f"histogram for {nsets} sets has {len(hist)} buckets, "
                    f"expected {max_assoc + 1}"
                )
            stacks = snap["stacks"]
            if len(stacks) != nsets:
                raise ConfigurationError(
                    f"snapshot for {nsets} sets carries {len(stacks)} "
                    "stacks"
                )
            fam.hist = [int(h) for h in hist]
            fam.stacks = [[int(line) for line in stack] for stack in stacks]
        return sim

    @property
    def set_counts(self) -> list[int]:
        return list(self._families)

    def carrying_state(self) -> bool:
        """Whether any stack family holds LRU state from earlier batches.

        A carrying simulator splices its stacks into the next batch as
        synthetic references and re-links internally, so precomputed
        stream links (``consume(..., links=...)``) would be ignored.
        """
        return any(
            fam.pending is not None or any(fam.stacks)
            for fam in self._families.values()
        )

    def reset(self) -> None:
        """Empty every stack family and zero the counters."""
        self._families = {
            nsets: _Family(nsets, fam.max_assoc)
            for nsets, fam in self._families.items()
        }
        self.accesses = 0
        self._sealed = False

    def _check_unsealed(self) -> None:
        if self._sealed:
            raise ConfigurationError(
                "this CheetahSimulator was rebuilt from exported state and "
                "is query-only; it cannot consume further references"
            )

    def access_line(self, line: int) -> None:
        """Feed one line reference to every stack family."""
        self._check_unsealed()
        self.accesses += 1
        for fam in self._families.values():
            _ensure_stacks(fam)
            _touch(fam, line)

    def simulate(
        self,
        starts: Sequence[int] | Iterable[int],
        sizes: Sequence[int] | Iterable[int],
    ) -> None:
        """Feed a whole range trace (may be called repeatedly to append)."""
        self._check_unsealed()
        starts_arr = as_int64_array(starts)
        sizes_arr = as_int64_array(sizes)
        if len(starts_arr) != len(sizes_arr):
            raise TraceError("starts and sizes must have equal length")
        stream = line_stream(starts_arr, sizes_arr, self.line_size)
        self.consume(stream)

    def consume(
        self,
        stream: LineStream,
        links: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Feed a pre-expanded line stream to every stack family.

        ``links``, when given, is the precomputed previous-occurrence
        linking ``(link_from, link_to)`` of ``stream.lines`` in stream
        coordinates — consecutive occurrence positions of each line,
        exactly what the batch's own value sort would produce.  The
        whole-design-space simulator derives these for every line size
        from one shared sort (:mod:`repro.cache.designspace`), skipping
        the per-simulator ``radix_argsort`` below.  Ignored when any
        family carries LRU state from earlier batches (carried state
        splices in synthetic references and re-links internally).
        """
        journal = active_journal()
        for prep in self.prepare_consume(stream, links):
            fam = prep.fam
            with journal.timed(
                "stackdist", line_size=self.line_size, nsets=fam.nsets
            ) as extra:
                dist, info = stack_distances(
                    prep.part, prep.seg_lens, fam.max_assoc,
                    vmax=prep.vmax, links=prep.links,
                )
                extra.update(prep.fold(dist, info))

    def prepare_consume(
        self,
        stream: LineStream,
        links: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> list["_PreparedFamily"]:
        """Stage a batch: per-family counting problems, kernels deferred.

        Runs everything in :meth:`consume` *except* the stack-distance
        kernels themselves — accesses accounting, the shared value sort,
        the partition-refinement ladder, synthetic-state splicing and
        dup compaction — and returns one :class:`_PreparedFamily` per
        family still awaiting its kernel.  The caller must then run
        :func:`repro.cache.stackdist.stack_distances` (or one fused
        dispatch over many simulators' problems, see
        :mod:`repro.cache.designspace`) on each problem and feed the
        result to :meth:`_PreparedFamily.fold`.  Small batches that take
        the scalar path are processed fully here and return ``[]``.
        Preparation never depends on any deferred fold: the ladder
        adopts *compacted* streams, which exist before the kernel runs.
        """
        self._check_unsealed()
        self.accesses += stream.accesses
        n = len(stream.lines)
        if n == 0:
            return []
        use_kernel = self.engine == "kernel" or (
            self.engine == "auto" and n > SCALAR_BATCH_LIMIT
        )
        if not use_kernel:
            for fam in self._families.values():
                _ensure_stacks(fam)
                _process_family(fam, stream)
            return []

        lines = stream.lines
        vmax = stream.max_line if stream.min_line >= 0 else None
        # One value sort serves every family: link each reference to its
        # previous occurrence in *stream* coordinates; families map the
        # links into their own partition via the partition permutation.
        # (Lazy: the links are useless to families carrying LRU state
        # from earlier batches, which splice in synthetic references and
        # re-link internally.)
        stream_links: tuple[np.ndarray, np.ndarray] | None = None
        if not self.carrying_state():
            if links is not None:
                stream_links = links
            else:
                order_v = radix_argsort(lines, vmax)
                sv = lines[order_v]
                # Mask-compress instead of materializing the (nearly
                # full-length) index array of equal-value adjacencies.
                same = sv[1:] == sv[:-1]
                stream_links = (order_v[:-1][same], order_v[1:][same])
        # Walk families by ascending set count so each partition can
        # refine the previous one (a stable per-bit split) when the set
        # counts double; wider jumps re-sort from scratch.  When a
        # family compacts within-set repeats out of the stream, the
        # compacted survivors become the ladder stream for every finer
        # family (their repeats are a superset of the coarser ones), at
        # the price of dropping the precomputed stream links — the much
        # smaller survivor stream re-links cheaply.
        ladder = lines
        ladder_dups = 0  # repeats compacted out of the adopted stream
        part: np.ndarray | None = None
        seg_lens = seg_sets = order = None
        prev_nsets = 0
        prepared: list[_PreparedFamily] = []
        for fam in sorted(self._families.values(), key=lambda f: f.nsets):
            nsets = fam.nsets
            if (
                part is None
                or nsets % prev_nsets
                or nsets // prev_nsets > _MAX_REFINE_FACTOR
            ):
                part, seg_lens, seg_sets, order = partition_by_set(
                    ladder, nsets, vmax
                )
                if ladder is not lines:
                    order = None  # permutation is not stream-relative
            elif nsets > prev_nsets:
                if order is None and stream_links is not None:
                    # Identity layout from an nsets==1 parent: make the
                    # stream permutation explicit before refining it.
                    order = np.arange(len(ladder), dtype=np.intp)
                part, seg_lens, seg_sets, order = refine_partition(
                    part, seg_lens, seg_sets, prev_nsets, nsets, order
                )
            prev_nsets = nsets
            prep, adopted = _prepare_family_kernel(
                fam, part, seg_lens, seg_sets,
                order if ladder is lines else None,
                stream_links if ladder is lines else None,
                stream.repeats + ladder_dups, vmax,
            )
            prepared.append(prep)
            if adopted is not None:
                part, seg_lens, ndup = adopted
                ladder = part
                ladder_dups += ndup
                order = None
                stream_links = None
        return prepared

    def misses(self, sets: int, assoc: int) -> int:
        """Misses of cache C(sets, assoc, line_size) on the trace seen so far.

        A reference hits an A-way LRU cache iff its per-set stack distance
        is < A, so misses = accesses - sum(hist[0:A]).
        """
        if assoc < 1 or assoc > self.max_assoc:
            raise ConfigurationError(
                f"assoc {assoc} outside tracked range 1..{self.max_assoc}"
            )
        fam = self._families.get(sets)
        if fam is None:
            raise ConfigurationError(f"set count {sets} was not tracked")
        return self.accesses - sum(fam.hist[:assoc])

    def result(self, config: CacheConfig) -> MissResult:
        """Miss result for one tracked configuration."""
        if config.line_size != self.line_size:
            raise ConfigurationError(
                f"config line size {config.line_size} != simulator "
                f"line size {self.line_size}"
            )
        return MissResult(
            config, self.accesses, self.misses(config.sets, config.assoc)
        )

    def results(self) -> dict[CacheConfig, MissResult]:
        """Miss results for every tracked (sets, assoc) combination."""
        out: dict[CacheConfig, MissResult] = {}
        for nsets in self._families:
            for assoc in range(1, self.max_assoc + 1):
                config = CacheConfig(nsets, assoc, self.line_size)
                out[config] = self.result(config)
        return out


def _touch(fam: _Family, line: int) -> None:
    """Record one line touch in a stack family (scalar path)."""
    stack = fam.stacks[line % fam.nsets]
    try:
        depth = stack.index(line)
    except ValueError:
        fam.hist[fam.max_assoc] += 1
        stack.insert(0, line)
        if len(stack) > fam.max_assoc:
            stack.pop()
        return
    fam.hist[depth] += 1
    if depth:
        del stack[depth]
        stack.insert(0, line)


def _ensure_stacks(fam: _Family) -> None:
    """Materialize per-set LRU stacks deferred by a kernel batch.

    The truncated LRU stack of a set after a batch is its ``max_assoc``
    most-recently-used distinct lines, MRU first — i.e. the *last*
    occurrences of the segment's lines, latest first.  The kernel's
    next-occurrence links identify them for free: a position is a last
    occurrence iff it has no later occurrence (``recurs_idx``).
    """
    pending = fam.pending
    if pending is None:
        return
    fam.pending = None
    part, seg_lens, seg_sets, recurs_idx = pending
    m = len(part)
    if m == 0:
        return
    has_next = np.zeros(m, dtype=bool)
    has_next[recurs_idx] = True
    lastpos = np.flatnonzero(~has_next)        # ascending == time order
    ends = np.cumsum(seg_lens)
    segi = np.searchsorted(ends, lastpos, side="right")
    cnt = np.bincount(segi, minlength=len(seg_lens))
    vals = part[lastpos]
    A = fam.max_assoc
    stacks = fam.stacks
    sets_list = seg_sets.tolist()
    pos = 0
    for j, c in enumerate(cnt.tolist()):
        if c:
            lo = pos + (c - A if c > A else 0)
            stacks[sets_list[j]] = vals[lo : pos + c][::-1].tolist()
            pos += c


class _PreparedFamily:
    """One family's staged counting problem, awaiting its kernel result.

    Produced by :func:`_prepare_family_kernel`; carries exactly the
    argument tuple the family's :func:`stack_distances` call needs
    (``part``/``seg_lens`` post splice/compaction, the mapped ``links``
    or the ``vmax`` for a fresh sort) so callers can run the kernel
    however they like — per family, or fused across many simulators —
    and then :meth:`fold` the distances back into the family.
    """

    __slots__ = ("fam", "part", "seg_lens", "seg_sets", "links", "vmax", "nsyn")

    def __init__(
        self,
        fam: _Family,
        part: np.ndarray,
        seg_lens: np.ndarray,
        seg_sets: np.ndarray,
        links: tuple[np.ndarray, np.ndarray] | None,
        vmax: int | None,
        nsyn: int,
    ):
        self.fam = fam
        self.part = part
        self.seg_lens = seg_lens
        self.seg_sets = seg_sets
        self.links = links
        self.vmax = vmax
        self.nsyn = nsyn

    def fold(self, dist: np.ndarray, info: dict[str, Any]) -> dict[str, Any]:
        """Fold one kernel result into the family's histogram and state.

        Returns the telemetry dict journaled as the family's
        ``stackdist`` (or fused-dispatch per-problem) stats.
        """
        fam = self.fam
        A = fam.max_assoc
        hist = fam.hist
        counts = np.bincount(dist, minlength=A + 1)
        for depth, cnt in enumerate(counts.tolist()):
            if cnt:
                hist[depth] += cnt
        if self.nsyn:
            hist[A] -= self.nsyn
        fam.pending = (
            self.part, self.seg_lens, self.seg_sets, info["recurs_idx"]
        )
        return {
            "refs": int(info["refs"]),
            "path": info["path"],
            "window": int(info["window"]),
            "residues": int(info["residues"]),
        }


def _prepare_family_kernel(
    fam: _Family,
    part: np.ndarray,
    seg_lens: np.ndarray,
    seg_sets: np.ndarray,
    order: np.ndarray | None,
    stream_links: tuple[np.ndarray, np.ndarray] | None,
    repeats: int,
    vmax: int | None,
) -> tuple[_PreparedFamily, tuple[np.ndarray, np.ndarray, int] | None]:
    """Stage one family's batch for the offline stack-distance kernel.

    ``part``/``seg_lens``/``seg_sets``/``order`` describe the batch
    partitioned by this family's set bits (shared across families via
    the refinement ladder, so this function never mutates them);
    ``stream_links`` is the shared previous-occurrence linking in stream
    coordinates (``None`` when carried LRU state forces re-linking, or
    when a coarser family already compacted the ladder stream).

    Everything *except* the kernel itself happens here — repeat
    crediting, synthetic-state splicing, dup compaction, link mapping —
    so the returned :class:`_PreparedFamily` can be counted later (and
    jointly with other families' problems, see
    :func:`repro.cache.stackdist.stack_distances_fused`).

    Returns ``(prepared, adopted)``: the staged problem, and — when this
    family compacted within-set repeats out of a synthetic-free stream —
    the compacted ``(part, seg_lens, ndup)`` for the caller to adopt as
    the ladder stream for finer families, crediting the ``ndup`` removed
    repeats to their depth-0 buckets (a within-set repeat for ``k`` sets
    is also one for ``2k`` sets: the finer set class is a subset, so the
    two references stay adjacent).
    """
    hist = fam.hist
    hist[0] += repeats
    nseg = len(seg_lens)

    # Carried state from earlier batches/access_line() enters as
    # synthetic references: each touched set's stack, deepest line
    # first, prepended to the set's segment.  Stack lines are distinct
    # and a line value determines its set, so each synthetic is the
    # first occurrence of its line in the spliced stream: it lands in
    # the cold bucket (subtracted below) and the batch references then
    # see exactly the LRU state a scalar replay would have left.  (A
    # batch reference of the set's MRU line comes out at depth 0, just
    # as _touch would score it.)
    nsyn = 0
    if fam.pending is not None or any(fam.stacks):
        _ensure_stacks(fam)
        stacks = fam.stacks
        ins_pos: list[int] = []
        ins_vals: list[int] = []
        syn_per_seg = np.zeros(nseg, dtype=np.intp)
        starts_list = (np.cumsum(seg_lens) - seg_lens).tolist()
        lens_list = seg_lens.tolist()
        for j, sset in enumerate(seg_sets.tolist()):
            if not lens_list[j]:
                continue
            stack = stacks[sset]
            if stack:
                ins_pos.extend([starts_list[j]] * len(stack))
                ins_vals.extend(reversed(stack))
                syn_per_seg[j] = len(stack)
        nsyn = len(ins_vals)
        if nsyn:
            vals_arr = np.asarray(ins_vals)
            dtype = np.promote_types(part.dtype, vals_arr.dtype)
            part = np.insert(part.astype(dtype, copy=False), ins_pos, vals_arr)
            seg_lens = seg_lens + syn_per_seg
            if vmax is not None:
                vmax = max(vmax, int(vals_arr.max()))

    # Within-set immediate repeats are depth-0 hits that leave LRU state
    # unchanged (equal adjacent values are always in the same segment,
    # since equal values share a set).  The kernel scores them exactly
    # as depth 0, so dup-light streams go straight through; dup-heavy
    # streams (loop-dominated code touches one hot line for most of a
    # basic block) are compacted first — shrinking the kernel's input
    # beats keeping the precomputed links, and the survivors re-link
    # cheaply inside the kernel.
    m = len(part)
    dup = part[1:] == part[:-1]
    ndup = int(np.count_nonzero(dup))
    adopted: tuple[np.ndarray, np.ndarray, int] | None = None
    if ndup * _DUP_COMPACT_DIVISOR > m:
        hist[0] += ndup
        keep = np.empty(m, dtype=bool)
        keep[0] = True
        np.logical_not(dup, out=keep[1:])
        keep_idx = np.flatnonzero(keep)
        part = part[keep_idx]
        if nseg > 1:
            ends = np.cumsum(seg_lens)
            segi = np.searchsorted(ends, keep_idx, side="right")
            seg_lens = np.bincount(segi, minlength=nseg).astype(np.intp)
        else:
            seg_lens = np.array([len(part)], dtype=np.intp)
        links: tuple[np.ndarray, np.ndarray] | None = None
        if nsyn == 0:
            adopted = (part, seg_lens, ndup)
    elif nsyn == 0 and stream_links is not None:
        s_from, s_to = stream_links
        if order is None:
            links = (s_from, s_to)
        else:
            inv = np.empty(m, dtype=np.int32)
            inv[order] = np.arange(m, dtype=np.int32)
            links = (inv[s_from], inv[s_to])
    else:
        links = None

    return _PreparedFamily(
        fam, part, seg_lens, seg_sets, links, vmax, nsyn
    ), adopted


def _process_family(fam: _Family, stream: LineStream) -> None:
    """Batch-process one family: vectorized pre-passes + survivor loop."""
    hist = fam.hist
    hist[0] += stream.repeats
    lines = stream.lines
    n = len(lines)
    if n == 0:
        return
    nsets = fam.nsets

    if nsets == 1:
        # Already "partitioned": one set, stream order, repeats removed.
        part = lines
        setkeys = None
    else:
        sidx = lines & (nsets - 1)
        # Radix-sortable small dtype: integer stable argsort in numpy is
        # ~8x faster on uint16 keys than on int64.
        key = sidx.astype(np.uint16) if nsets <= (1 << 16) else sidx
        order = np.argsort(key, kind="stable")
        part = lines[order]
        setkeys = key[order]
        # Within-set immediate repeats are depth-0 hits with no state
        # change (the line is its set's MRU); count and drop vectorially.
        dup = (part[1:] == part[:-1]) & (setkeys[1:] == setkeys[:-1])
        ndup = int(dup.sum())
        if ndup:
            hist[0] += ndup
            keep = np.empty(n, dtype=bool)
            keep[0] = True
            np.logical_not(dup, out=keep[1:])
            part = part[keep]
            setkeys = setkeys[keep]

    # Period-2 alternation pre-pass: in a consecutive-duplicate-free
    # per-set sequence, a reference equal to the one two back sits at
    # stack depth exactly 1 (one distinct line touched in between).
    # Removing such references *in adjacent pairs* is state-neutral:
    # the pair swaps the set's top two stack entries twice.  For runs of
    # odd length the last alternating reference is kept for the loop.
    m = len(part)
    if m > 2:
        if setkeys is None:
            alt = part[2:] == part[:-2]
        else:
            alt = (part[2:] == part[:-2]) & (setkeys[2:] == setkeys[:-2])
        if alt.any():
            altf = np.zeros(m, dtype=bool)
            altf[2:] = alt
            idx = np.arange(m)
            # 1-based position of each reference within its run of
            # consecutive alternating references.
            pos = idx - np.maximum.accumulate(np.where(~altf, idx, -1))
            run_start = altf.copy()
            run_start[1:] &= ~altf[:-1]
            run_id = np.cumsum(run_start)
            run_len = np.bincount(run_id[altf], minlength=int(run_id[-1]) + 1)[
                run_id
            ]
            keep_last = altf & ((run_len & 1) == 1) & (pos == run_len)
            remove = altf & ~keep_last
            nremove = int(remove.sum())
            if nremove:
                hist[1] += nremove
                keepm = ~remove
                part = part[keepm]
                if setkeys is not None:
                    setkeys = setkeys[keepm]

    seq = part.tolist()
    m = len(seq)
    if m == 0:
        return

    # Per-set segment boundaries in the partitioned survivor stream.
    if setkeys is None:
        bounds = [0, m]
        segment_sets = [0]
    else:
        change = np.flatnonzero(setkeys[1:] != setkeys[:-1]) + 1
        bounds = [0, *change.tolist(), m]
        segment_sets = setkeys[
            np.concatenate((np.zeros(1, dtype=np.int64), change))
        ].tolist()

    stacks = fam.stacks
    max_assoc = fam.max_assoc
    for seg in range(len(segment_sets)):
        lo = bounds[seg]
        hi = bounds[seg + 1]
        stack = stacks[segment_sets[seg]]
        if stack:
            # Only the first reference of a segment can equal the MRU
            # left by a previous simulate()/access_line() call; later
            # ones differ from their predecessor by construction.
            line = seq[lo]
            if line == stack[0]:
                hist[0] += 1
            elif line in stack:
                depth = stack.index(line, 1)
                hist[depth] += 1
                stack.insert(0, stack.pop(depth))
            else:
                hist[max_assoc] += 1
                stack.insert(0, line)
                if len(stack) > max_assoc:
                    stack.pop()
            lo += 1
        index = stack.index
        insert = stack.insert
        pop = stack.pop
        depth_here = len(stack)
        for line in seq[lo:hi]:
            if line in stack:
                # Depth >= 1 always: the predecessor reference is the
                # current MRU and differs from this line.
                depth = index(line, 1)
                hist[depth] += 1
                insert(0, pop(depth))
            else:
                hist[max_assoc] += 1
                insert(0, line)
                depth_here += 1
                if depth_here > max_assoc:
                    pop()
                    depth_here = max_assoc


def simulate_many(
    configs: Sequence[CacheConfig],
    starts: Sequence[int] | Iterable[int],
    sizes: Sequence[int] | Iterable[int],
) -> dict[CacheConfig, MissResult]:
    """Simulate several same-line-size configurations in one pass.

    Convenience wrapper used when the caller already knows all configs
    share a line size; :func:`repro.cache.sweep.sweep_design_space`
    handles the general mixed-line-size case.
    """
    if not configs:
        return {}
    line_sizes = {c.line_size for c in configs}
    if len(line_sizes) != 1:
        raise ConfigurationError(
            "simulate_many requires a common line size; got "
            f"{sorted(line_sizes)} (use sweep_design_space instead)"
        )
    set_counts = sorted({c.sets for c in configs})
    max_assoc = max(c.assoc for c in configs)
    sim = CheetahSimulator(configs[0].line_size, set_counts, max_assoc)
    sim.simulate(starts, sizes)
    return {c: sim.result(c) for c in configs}
