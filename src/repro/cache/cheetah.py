"""Single-pass multi-configuration cache simulation (the Cheetah role).

The paper (Sections 1 and 3.3) relies on the Cheetah simulator [17] to
evaluate *every* cache with a common line size in one pass over the trace.
This module implements the same capability with the classic
all-associativity algorithm: for each set-mapping, per-set LRU stacks
record the *stack distance* of every reference, and the misses of an
A-way cache are exactly the references whose distance is >= A (plus cold
references).  Maintaining one stack family per candidate set count still
requires only a single pass over the trace.

The stacks are truncated at the maximum associativity of interest, so
memory stays bounded regardless of trace length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cache.config import CacheConfig
from repro.cache.simulator import MissResult, _as_list
from repro.errors import ConfigurationError, TraceError


@dataclass
class _StackFamily:
    """Per-set truncated LRU stacks for one set count."""

    nsets: int
    max_assoc: int
    stacks: list[list[int]]
    # hist[k] = number of references found at stack depth k (0 = MRU).
    # hist[max_assoc] accumulates "deeper than we track, or absent".
    hist: list[int]

    @classmethod
    def create(cls, nsets: int, max_assoc: int) -> "_StackFamily":
        return cls(
            nsets=nsets,
            max_assoc=max_assoc,
            stacks=[[] for _ in range(nsets)],
            hist=[0] * (max_assoc + 1),
        )


class CheetahSimulator:
    """Simulate all caches of one line size in a single trace pass.

    Parameters
    ----------
    line_size:
        Common line size in bytes of every simulated configuration.
    set_counts:
        The distinct set counts to track (each a power of two).
    max_assoc:
        Largest associativity of interest.  After a pass,
        :meth:`misses` answers for any ``A <= max_assoc``.
    """

    def __init__(
        self, line_size: int, set_counts: Sequence[int], max_assoc: int = 8
    ):
        if max_assoc < 1:
            raise ConfigurationError(f"max_assoc must be >= 1, got {max_assoc}")
        # CacheConfig validates line size / set count feasibility for us.
        for nsets in set_counts:
            CacheConfig(nsets, 1, line_size)
        if len(set(set_counts)) != len(list(set_counts)):
            raise ConfigurationError("set_counts contains duplicates")
        self.line_size = line_size
        self.max_assoc = max_assoc
        self._families = [
            _StackFamily.create(nsets, max_assoc) for nsets in set_counts
        ]
        self.accesses = 0

    @property
    def set_counts(self) -> list[int]:
        return [fam.nsets for fam in self._families]

    def reset(self) -> None:
        """Empty every stack family and zero the counters."""
        self._families = [
            _StackFamily.create(fam.nsets, fam.max_assoc)
            for fam in self._families
        ]
        self.accesses = 0

    def access_line(self, line: int) -> None:
        """Feed one line reference to every stack family."""
        self.accesses += 1
        for fam in self._families:
            _touch(fam, line)

    def simulate(
        self,
        starts: Sequence[int] | Iterable[int],
        sizes: Sequence[int] | Iterable[int],
    ) -> None:
        """Feed a whole range trace (may be called repeatedly to append)."""
        starts_list = _as_list(starts)
        sizes_list = _as_list(sizes)
        if len(starts_list) != len(sizes_list):
            raise TraceError("starts and sizes must have equal length")
        line_size = self.line_size
        families = self._families
        accesses = 0
        for start, size in zip(starts_list, sizes_list):
            if size <= 0:
                raise TraceError(f"range size must be positive, got {size}")
            first = start // line_size
            last = (start + size - 1) // line_size
            accesses += last - first + 1
            for line in range(first, last + 1):
                for fam in families:
                    _touch(fam, line)
        self.accesses += accesses

    def misses(self, sets: int, assoc: int) -> int:
        """Misses of cache C(sets, assoc, line_size) on the trace seen so far.

        A reference hits an A-way LRU cache iff its per-set stack distance
        is < A, so misses = accesses - sum(hist[0:A]).
        """
        if assoc < 1 or assoc > self.max_assoc:
            raise ConfigurationError(
                f"assoc {assoc} outside tracked range 1..{self.max_assoc}"
            )
        for fam in self._families:
            if fam.nsets == sets:
                return self.accesses - sum(fam.hist[:assoc])
        raise ConfigurationError(f"set count {sets} was not tracked")

    def result(self, config: CacheConfig) -> MissResult:
        """Miss result for one tracked configuration."""
        if config.line_size != self.line_size:
            raise ConfigurationError(
                f"config line size {config.line_size} != simulator "
                f"line size {self.line_size}"
            )
        return MissResult(
            config, self.accesses, self.misses(config.sets, config.assoc)
        )

    def results(self) -> dict[CacheConfig, MissResult]:
        """Miss results for every tracked (sets, assoc) combination."""
        out: dict[CacheConfig, MissResult] = {}
        for fam in self._families:
            for assoc in range(1, self.max_assoc + 1):
                config = CacheConfig(fam.nsets, assoc, self.line_size)
                out[config] = self.result(config)
        return out


def _touch(fam: _StackFamily, line: int) -> None:
    """Record one line touch in a stack family (inlined hot path)."""
    stack = fam.stacks[line % fam.nsets]
    try:
        depth = stack.index(line)
    except ValueError:
        fam.hist[fam.max_assoc] += 1
        stack.insert(0, line)
        if len(stack) > fam.max_assoc:
            stack.pop()
        return
    fam.hist[depth] += 1
    if depth:
        del stack[depth]
        stack.insert(0, line)


def simulate_many(
    configs: Sequence[CacheConfig],
    starts: Sequence[int] | Iterable[int],
    sizes: Sequence[int] | Iterable[int],
) -> dict[CacheConfig, MissResult]:
    """Simulate several same-line-size configurations in one pass.

    Convenience wrapper used when the caller already knows all configs
    share a line size; :func:`repro.cache.sweep.sweep_design_space`
    handles the general mixed-line-size case.
    """
    if not configs:
        return {}
    line_sizes = {c.line_size for c in configs}
    if len(line_sizes) != 1:
        raise ConfigurationError(
            "simulate_many requires a common line size; got "
            f"{sorted(line_sizes)} (use sweep_design_space instead)"
        )
    set_counts = sorted({c.sets for c in configs})
    max_assoc = max(c.assoc for c in configs)
    sim = CheetahSimulator(configs[0].line_size, set_counts, max_assoc)
    sim.simulate(starts, sizes)
    return {c: sim.result(c) for c in configs}
