"""Compiler substrate: scheduling, register pressure and speculation.

Plays the role of the Trimaran/Elcor compiler in the paper's tool chain
(Section 3.2): it maps a program onto a particular VLIW processor,
producing per-block schedules (instructions = sets of concurrently issued
operations) plus the spill and speculation side effects that perturb the
data trace on wider machines (the error sources quantified in Table 2).
"""

from repro.vliwcomp.compile import CompiledBlock, CompiledProgram, compile_program
from repro.vliwcomp.depgraph import DependenceGraph, build_dependence_graph
from repro.vliwcomp.ifconvert import IfConversionStats, if_convert
from repro.vliwcomp.regalloc import SPILL_STREAM, estimate_spills
from repro.vliwcomp.scheduler import BlockSchedule, schedule_block

__all__ = [
    "DependenceGraph",
    "build_dependence_graph",
    "BlockSchedule",
    "schedule_block",
    "estimate_spills",
    "SPILL_STREAM",
    "CompiledBlock",
    "CompiledProgram",
    "compile_program",
    "if_convert",
    "IfConversionStats",
]
