"""Dependence graph construction for basic-block scheduling.

Edges carry minimum issue-cycle separations: a RAW edge from producer to
consumer is the producer's latency; WAW edges force one cycle of
separation; WAR edges allow same-cycle issue (reads happen before writes
within a VLIW instruction).  Memory operations on the same stream are kept
in order (a conservative store/load ordering, as a real compiler without
memory disambiguation would).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.operations import OpClass, Operation
from repro.machine.mdes import MachineDescription


@dataclass
class DependenceGraph:
    """DAG over the operation indexes of one basic block.

    ``succs[i]`` lists ``(j, delay)`` pairs: op ``j`` may issue no earlier
    than ``issue(i) + delay``.  ``height[i]`` is the critical-path height
    used as the list-scheduling priority.
    """

    n_ops: int
    succs: list[list[tuple[int, int]]] = field(default_factory=list)
    preds: list[list[tuple[int, int]]] = field(default_factory=list)
    height: list[int] = field(default_factory=list)

    def add_edge(self, src: int, dst: int, delay: int) -> None:
        """Add edge: ``dst`` may issue no earlier than issue(src)+delay."""
        self.succs[src].append((dst, delay))
        self.preds[dst].append((src, delay))


def build_dependence_graph(
    operations: list[Operation], mdes: MachineDescription
) -> DependenceGraph:
    """Build the scheduling DAG for one block's operation list."""
    n = len(operations)
    graph = DependenceGraph(
        n_ops=n,
        succs=[[] for _ in range(n)],
        preds=[[] for _ in range(n)],
        height=[0] * n,
    )

    last_writer: dict[int, int] = {}
    readers_since_write: dict[int, list[int]] = {}
    last_mem_by_stream: dict[int, int] = {}

    for i, op in enumerate(operations):
        for src in op.srcs:
            if src in last_writer:
                producer = last_writer[src]
                delay = mdes.latency(operations[producer].opclass)
                graph.add_edge(producer, i, delay)
            readers_since_write.setdefault(src, []).append(i)
        for dst in op.dests:
            if dst in last_writer:
                graph.add_edge(last_writer[dst], i, 1)  # WAW
            for reader in readers_since_write.get(dst, []):
                if reader != i:
                    graph.add_edge(reader, i, 0)  # WAR: same cycle legal
            last_writer[dst] = i
            readers_since_write[dst] = []
        if op.is_memory:
            prev = last_mem_by_stream.get(op.stream)
            if prev is not None:
                # Keep same-stream memory operations ordered (one cycle).
                graph.add_edge(prev, i, 1)
            last_mem_by_stream[op.stream] = i
        if op.opclass is OpClass.BRANCH:
            # The branch ends the block: every earlier op must issue no
            # later than the branch's cycle.
            for j in range(i):
                graph.add_edge(j, i, 0)

    _compute_heights(graph, operations, mdes)
    return graph


def _compute_heights(
    graph: DependenceGraph,
    operations: list[Operation],
    mdes: MachineDescription,
) -> None:
    """Critical-path height of each op (reverse topological order).

    Operation indexes are already topologically ordered (edges only go
    forward in the list), so a reverse sweep suffices.
    """
    for i in range(graph.n_ops - 1, -1, -1):
        best = mdes.latency(operations[i].opclass)
        for succ, delay in graph.succs[i]:
            candidate = delay + graph.height[succ]
            if candidate > best:
                best = candidate
        graph.height[i] = best
