"""Resource-constrained list scheduling of one basic block.

Classic cycle-driven list scheduling: at each cycle, ready operations
(all predecessors issued early enough) are chosen greedily by
critical-path height, subject to the per-class function-unit counts of
the target processor.  The output records which operations share each
VLIW instruction — the quantity the instruction-format assembler encodes —
and the block's issue-cycle count, used for processor-cycle estimation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.isa.operations import OpClass, Operation
from repro.machine.mdes import MachineDescription
from repro.vliwcomp.depgraph import build_dependence_graph


@dataclass(frozen=True)
class BlockSchedule:
    """Schedule of one block on one processor.

    ``instructions`` holds, per issue cycle that issues at least one
    operation, the tuple of operation indexes issued.  ``cycles`` is the
    total issue-cycle span including stall (empty) cycles; ``cycles >=
    len(instructions)`` and the gap is the stall-cycle count the
    instruction format's multi-no-op bits must cover.
    """

    instructions: tuple[tuple[int, ...], ...]
    cycles: int

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    @property
    def stall_cycles(self) -> int:
        return self.cycles - len(self.instructions)

    def ops_per_instruction(self) -> float:
        """Average operations packed per issued instruction."""
        if not self.instructions:
            return 0.0
        total = sum(len(instr) for instr in self.instructions)
        return total / len(self.instructions)


def schedule_block(
    operations: list[Operation], mdes: MachineDescription
) -> BlockSchedule:
    """List-schedule ``operations`` onto ``mdes.processor``.

    Raises :class:`ScheduleError` if no progress can be made (which would
    indicate a dependence-graph bug, since every processor has at least
    one unit per class).
    """
    if not operations:
        return BlockSchedule(instructions=(), cycles=0)

    graph = build_dependence_graph(operations, mdes)
    processor = mdes.processor
    n = len(operations)

    issue_cycle = [-1] * n
    earliest = [0] * n
    unscheduled = set(range(n))
    instructions: list[tuple[int, ...]] = []
    cycle = 0
    last_issue = 0
    max_cycles = _cycle_budget(n, graph.height)

    while unscheduled:
        if cycle > max_cycles:
            raise ScheduleError(
                f"scheduler exceeded {max_cycles} cycles for a "
                f"{n}-operation block; dependence graph is inconsistent"
            )
        free = dict(processor.units)
        issued: list[int] = []
        ready = [
            i
            for i in unscheduled
            if earliest[i] <= cycle
            and all(issue_cycle[p] >= 0 for p, _ in graph.preds[i])
        ]
        # Highest critical path first; index breaks ties deterministically.
        ready.sort(key=lambda i: (-graph.height[i], i))
        for i in ready:
            cls = operations[i].opclass
            if free[cls] <= 0:
                continue
            if not _preds_satisfied(graph, issue_cycle, i, cycle):
                continue
            free[cls] -= 1
            issue_cycle[i] = cycle
            issued.append(i)
        if issued:
            for i in issued:
                unscheduled.discard(i)
                for succ, delay in graph.succs[i]:
                    need = cycle + delay
                    if need > earliest[succ]:
                        earliest[succ] = need
            instructions.append(tuple(sorted(issued)))
            last_issue = cycle
        cycle += 1

    return BlockSchedule(
        instructions=tuple(instructions), cycles=last_issue + 1
    )


def _preds_satisfied(graph, issue_cycle, i, cycle) -> bool:
    """All predecessors of i issued, with their delays elapsed by cycle."""
    for pred, delay in graph.preds[i]:
        when = issue_cycle[pred]
        if when < 0 or when + delay > cycle:
            return False
    return True


def _cycle_budget(n_ops: int, heights: list[int]) -> int:
    """Upper bound on legal schedule length (safety net)."""
    return 4 * (n_ops + max(heights, default=1)) + 16


def schedule_is_legal(
    operations: list[Operation],
    mdes: MachineDescription,
    schedule: BlockSchedule,
) -> bool:
    """Check resource and dependence legality of a schedule (for tests)."""
    graph = build_dependence_graph(operations, mdes)
    cycle_of: dict[int, int] = {}
    # Reconstruct issue cycles: instructions are in cycle order but empty
    # cycles are elided, so recompute by replaying dependences greedily.
    cycle = 0
    for instr in schedule.instructions:
        counts: dict[OpClass, int] = {}
        for i in instr:
            cls = operations[i].opclass
            counts[cls] = counts.get(cls, 0) + 1
        if any(
            counts.get(cls, 0) > mdes.processor.units[cls] for cls in counts
        ):
            return False
        # Advance to the first cycle where every member's deps are met.
        while not all(
            all(
                p in cycle_of and cycle_of[p] + d <= cycle
                for p, d in graph.preds[i]
            )
            for i in instr
        ):
            cycle += 1
        for i in instr:
            cycle_of[i] = cycle
        cycle += 1
    if len(cycle_of) != len(operations):
        return False
    for i in range(len(operations)):
        for succ, delay in graph.succs[i]:
            if cycle_of[succ] - cycle_of[i] < delay:
                return False
    return True
