"""Register-pressure estimation and spill modeling.

The paper's step-1 assumption (data traces identical across processors) is
violated by exactly two compiler effects: extra register spills on wider
machines and extra speculative loads (Section 4.1).  This module models the
spill side: live ranges are measured on the *schedule* — a wider machine
packs operations into fewer cycles, overlapping more live ranges, so spill
pressure rises naturally with issue width without any ad-hoc width factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.operations import Operation
from repro.machine.mdes import MachineDescription
from repro.vliwcomp.scheduler import BlockSchedule

#: Stream id reserved for spill traffic; the data-address model gives this
#: stream a small stack-like region with high locality (the paper argues
#: spill code "is likely to have high locality").
SPILL_STREAM: int = -1

#: Registers the allocator reserves (stack pointer, return address, ...).
_RESERVED_REGISTERS = 8


@dataclass(frozen=True)
class SpillEstimate:
    """Spill loads/stores a block needs on a given processor."""

    max_live: int
    spill_stores: int
    spill_loads: int

    @property
    def total_ops(self) -> int:
        return self.spill_stores + self.spill_loads


def estimate_spills(
    operations: list[Operation],
    schedule: BlockSchedule,
    mdes: MachineDescription,
) -> SpillEstimate:
    """Estimate spill traffic for one scheduled block.

    A virtual register is live from its definition's issue cycle to its
    last use's issue cycle.  When the peak overlap exceeds the integer
    register file (minus reserved registers), each excess value is spilled:
    one store at the definition and one load at the (last) use.
    """
    issue_of = _issue_cycles(schedule)
    def_cycle: dict[int, int] = {}
    last_use_cycle: dict[int, int] = {}
    for index, cycle in issue_of.items():
        op = operations[index]
        for src in op.srcs:
            if src in def_cycle:
                last_use_cycle[src] = max(last_use_cycle.get(src, 0), cycle)
        for dst in op.dests:
            # First definition wins; redefinitions reuse the same name.
            def_cycle.setdefault(dst, cycle)

    events: list[tuple[int, int]] = []
    for reg, start in def_cycle.items():
        end = last_use_cycle.get(reg, start)
        events.append((start, +1))
        events.append((end + 1, -1))
    events.sort()
    live = 0
    max_live = 0
    for _, delta in events:
        live += delta
        if live > max_live:
            max_live = live

    budget = max(1, mdes.processor.int_registers - _RESERVED_REGISTERS)
    excess = max(0, max_live - budget)
    return SpillEstimate(
        max_live=max_live, spill_stores=excess, spill_loads=excess
    )


def _issue_cycles(schedule: BlockSchedule) -> dict[int, int]:
    """Map operation index -> issue cycle (instruction ordinal)."""
    out: dict[int, int] = {}
    for cycle, instr in enumerate(schedule.instructions):
        for index in instr:
            out[index] = cycle
    return out
