"""Compile a program for a particular VLIW processor.

``compile_program`` runs, per basic block:

1. *speculation* — on speculation-capable machines with issue-width
   headroom, loads from likely successor blocks are hoisted (duplicated)
   into the block, growing both static code size and the dynamic data
   trace, as Section 4.1 describes;
2. *scheduling* — list scheduling onto the machine's function units;
3. *spill modeling* — peak live-range overlap beyond the register file
   adds spill store/load pairs, which are appended and the block is
   rescheduled once for encoding.

The result feeds three consumers: the assembler (instruction encoding and
code size), the emulator's trace decoration (spill/speculative data
references) and the hierarchy evaluator (processor cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.operations import Operation, make_load, make_store
from repro.isa.program import Program
from repro.machine.mdes import MachineDescription
from repro.vliwcomp.regalloc import SPILL_STREAM, estimate_spills
from repro.vliwcomp.scheduler import BlockSchedule, schedule_block


@dataclass(frozen=True)
class CompiledBlock:
    """One basic block compiled for one processor."""

    block_id: int
    operations: tuple[Operation, ...]
    schedule: BlockSchedule
    speculative_streams: tuple[int, ...]
    spill_ops: int
    #: Successor block the hoisted loads were taken from (the compiler's
    #: static prediction); None when nothing was hoisted.  The emulator
    #: compares the actual branch outcome against this to decide whether
    #: a speculative load ran down the wrong path.
    predicted_successor: int | None = None

    @property
    def issue_cycles(self) -> int:
        return self.schedule.cycles

    @property
    def num_instructions(self) -> int:
        return self.schedule.num_instructions


@dataclass
class CompiledProgram:
    """A whole program compiled for one processor."""

    program: Program
    mdes: MachineDescription
    blocks: dict[tuple[str, int], CompiledBlock] = field(default_factory=dict)

    def block(self, proc_name: str, block_id: int) -> CompiledBlock:
        """The compiled form of one basic block."""
        return self.blocks[(proc_name, block_id)]

    @property
    def processor_name(self) -> str:
        return self.mdes.processor.name

    def total_instructions(self) -> int:
        """VLIW instructions across all blocks (static count)."""
        return sum(b.num_instructions for b in self.blocks.values())

    def total_operations(self) -> int:
        """Operations across all blocks, including spill/speculative ones."""
        return sum(len(b.operations) for b in self.blocks.values())


def speculation_capacity(issue_width: int) -> int:
    """Speculative loads hoisted per block as a function of issue width.

    The reference-class 4-wide machine speculates nothing extra; headroom
    above that buys roughly one hoisted load per two extra issue slots
    (4 -> 0, 5 -> 1, 8 -> 2, 9 -> 3, 14 -> 5), matching the paper's
    qualitative claim that wider processors "tend to speculate more
    often".
    """
    return max(0, (issue_width - 4 + 1) // 2)


def compile_program(
    program: Program, mdes: MachineDescription
) -> CompiledProgram:
    """Compile every block of ``program`` for ``mdes.processor``."""
    compiled = CompiledProgram(program=program, mdes=mdes)
    capacity = (
        speculation_capacity(mdes.processor.issue_width)
        if mdes.processor.has_speculation
        else 0
    )
    for proc in program.procedures.values():
        for blk in proc.blocks:
            hoisted, predicted = _hoistable_loads(
                program, proc.name, blk.block_id, capacity
            )
            base_ops = list(blk.operations) + hoisted
            schedule = schedule_block(base_ops, mdes)
            spills = estimate_spills(base_ops, schedule, mdes)
            final_ops = base_ops + _spill_ops(spills.total_ops)
            if spills.total_ops:
                schedule = schedule_block(final_ops, mdes)
            compiled.blocks[(proc.name, blk.block_id)] = CompiledBlock(
                block_id=blk.block_id,
                operations=tuple(final_ops),
                schedule=schedule,
                speculative_streams=tuple(op.stream for op in hoisted),
                spill_ops=spills.total_ops,
                predicted_successor=predicted if hoisted else None,
            )
    return compiled


def _hoistable_loads(
    program: Program, proc_name: str, block_id: int, capacity: int
) -> tuple[list[Operation], int | None]:
    """Loads hoisted from the likeliest successor block (speculation).

    Returns the hoisted operations and the predicted successor's id.
    """
    if capacity == 0:
        return [], None
    proc = program.procedure(proc_name)
    edges = proc.successors(block_id)
    if not edges:
        return [], None
    likely = max(edges, key=lambda e: (e.probability, -e.dst))
    successor = proc.block(likely.dst)
    hoisted: list[Operation] = []
    for op in successor.operations:
        if op.is_load:
            hoisted.append(
                Operation(
                    op.opclass,
                    dests=op.dests,
                    srcs=op.srcs,
                    is_load=True,
                    stream=op.stream,
                    speculative=True,
                )
            )
            if len(hoisted) >= capacity:
                break
    return hoisted, likely.dst


#: Virtual-register base for spill temporaries, far above any register the
#: workload generator emits, so spill ops add no false dependences beyond
#: their own same-stream ordering.
_SPILL_REG_BASE = 1_000_000


def _spill_ops(count: int) -> list[Operation]:
    """``count`` spill operations, alternating store/load pairs."""
    ops: list[Operation] = []
    for i in range(count):
        reg = _SPILL_REG_BASE + 2 * i
        if i % 2 == 0:
            ops.append(
                make_store(value_src=reg, addr_src=reg + 1, stream=SPILL_STREAM)
            )
        else:
            ops.append(
                make_load(dest=reg, addr_src=reg + 1, stream=SPILL_STREAM)
            )
    return ops
