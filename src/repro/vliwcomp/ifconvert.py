"""If-conversion: predicating control-flow diamonds.

The design space includes machines with predication (Figure 1), and the
paper's step-1 rule requires a *predicated reference processor* for them
precisely because predication changes the trace: an if-converted diamond
fetches both arms every time instead of branching around one.  This
module supplies that transformation as an explicit, opt-in program
rewrite (mirroring how hyperblock formation precedes scheduling in
Trimaran):

* a **diamond** is a block ``A`` branching to two single-entry,
  single-exit, call-free arms ``B`` and ``C`` that rejoin at ``D``;
* if-conversion merges both arms into ``A`` as predicated operations
  (arm registers renamed apart so the arms stay independent) and
  replaces the two-way branch with a fall-through to ``D``.

Predicated memory operations are modeled as executing on both paths —
the fetch-both-arms cost that makes predication a trade-off.  Use
:func:`predicate_program` on a workload before building an
:class:`~repro.experiments.pipeline.ExperimentPipeline` whose reference
has ``has_predication=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.isa.operations import Operation
from repro.isa.program import BasicBlock, ControlFlowEdge, Procedure, Program
from repro.isa.validate import validate_program

#: Register-id offsets applied to each merged arm so their values do not
#: collide (kept far below the generator's fresh-input range).
_ARM_REG_OFFSETS = (200_000, 300_000)


@dataclass(frozen=True)
class IfConversionStats:
    """What the transformation did."""

    diamonds_converted: int
    blocks_removed: int
    operations_predicated: int


def _remap(op: Operation, offset: int) -> Operation:
    """Rename an arm operation's registers into a private range."""
    return replace(
        op,
        dests=tuple(d + offset for d in op.dests),
        srcs=tuple(s + offset for s in op.srcs),
    )


def _find_diamond(proc: Procedure) -> tuple[int, int, int, int] | None:
    """Find one convertible diamond (head, arm, arm, join) or None."""
    in_degree: dict[int, int] = {}
    for edge in proc.edges:
        in_degree[edge.dst] = in_degree.get(edge.dst, 0) + 1
    entry = proc.entry.block_id
    for head in proc.blocks:
        out = proc.successors(head.block_id)
        if len(out) != 2:
            continue
        arm_b, arm_c = out[0].dst, out[1].dst
        if arm_b == arm_c or head.block_id in (arm_b, arm_c):
            continue
        joins = []
        ok = True
        for arm_id in (arm_b, arm_c):
            arm_out = proc.successors(arm_id)
            arm = proc.block(arm_id)
            if (
                len(arm_out) != 1
                or in_degree.get(arm_id, 0) != 1
                or arm.calls
                or arm_id == entry
            ):
                ok = False
                break
            joins.append(arm_out[0].dst)
        if not ok or joins[0] != joins[1]:
            continue
        join = joins[0]
        if join in (head.block_id, arm_b, arm_c):
            continue
        return head.block_id, arm_b, arm_c, join
    return None


def _convert_one(
    proc: Procedure, head_id: int, arm_b: int, arm_c: int, join: int
) -> int:
    """Merge one diamond in place; returns operations predicated."""
    head = proc.block(head_id)
    predicated = 0
    merged_ops = [op for op in head.operations if not op.is_branch]
    for offset, arm_id in zip(_ARM_REG_OFFSETS, (arm_b, arm_c)):
        arm = proc.block(arm_id)
        for op in arm.operations:
            if op.is_branch:
                continue
            merged_ops.append(_remap(op, offset))
            predicated += 1
    # Keep the head's trailing branch (now an unconditional fall-through).
    merged_ops.extend(op for op in head.operations if op.is_branch)
    head.operations = merged_ops

    proc.blocks = [
        blk for blk in proc.blocks if blk.block_id not in (arm_b, arm_c)
    ]
    new_edges = [
        edge
        for edge in proc.edges
        if edge.src not in (head_id, arm_b, arm_c)
        and edge.dst not in (arm_b, arm_c)
    ]
    new_edges.append(ControlFlowEdge(head_id, join, 1.0))
    proc.edges = new_edges
    proc.invalidate_cfg_cache()
    return predicated


def if_convert(
    program: Program, max_arm_ops: int = 24
) -> tuple[Program, IfConversionStats]:
    """If-convert every eligible diamond of every procedure.

    ``max_arm_ops`` bounds the operations an arm may contribute — merging
    huge arms would bloat the predicated block beyond what real
    hyperblock formation accepts.  Returns a *new* validated program
    (the input is not mutated) and the conversion statistics.
    """
    converted = Program(name=program.name, entry=program.entry)
    for proc in program.procedures.values():
        converted.add(
            Procedure(
                name=proc.name,
                blocks=[
                    BasicBlock(
                        block_id=blk.block_id,
                        operations=list(blk.operations),
                        calls=list(blk.calls),
                    )
                    for blk in proc.blocks
                ],
                edges=list(proc.edges),
            )
        )

    diamonds = 0
    removed = 0
    predicated = 0
    for proc in converted.procedures.values():
        while True:
            found = _find_diamond(proc)
            if found is None:
                break
            head_id, arm_b, arm_c, join = found
            arm_sizes = [
                proc.block(arm).num_operations for arm in (arm_b, arm_c)
            ]
            if max(arm_sizes) > max_arm_ops:
                break  # the first oversized diamond ends this procedure
            predicated += _convert_one(proc, head_id, arm_b, arm_c, join)
            diamonds += 1
            removed += 2
    validate_program(converted)
    return converted, IfConversionStats(
        diamonds_converted=diamonds,
        blocks_removed=removed,
        operations_predicated=predicated,
    )
