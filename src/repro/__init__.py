"""repro: reproduction of Abraham & Mahlke, MICRO-32 (1999).

"Automatic and Efficient Evaluation of Memory Hierarchies for Embedded
Systems" — the dilation model for estimating cache misses of arbitrary
VLIW processors from a single reference processor's trace, plus every
substrate it runs on: a VLIW machine model and compiler, instruction
format synthesis and linking, trace generation, single-pass cache
simulation, the AHH analytic cache model, and a spacewalker design-space
explorer.

Quickstart::

    from repro import load_benchmark, P1111, P6332
    from repro.experiments import ExperimentPipeline

    pipeline = ExperimentPipeline(load_benchmark("epic", scale=0.3))
    run = pipeline.run(P1111)  # reference traces + simulations

See ``examples/quickstart.py`` for the full tour.
"""

from repro.cache import CacheConfig, CacheSimulator, CheetahSimulator
from repro.core import (
    DilationEstimator,
    dilate_binary,
    evaluate_system,
    measure_dilation,
)
from repro.machine import (
    P1111,
    P2111,
    P3221,
    P4221,
    P6332,
    MachineDescription,
    VliwProcessor,
    processor_from_name,
)
from repro.workloads import load_benchmark, tiny_workload

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CacheSimulator",
    "CheetahSimulator",
    "DilationEstimator",
    "measure_dilation",
    "dilate_binary",
    "evaluate_system",
    "VliwProcessor",
    "MachineDescription",
    "processor_from_name",
    "P1111",
    "P2111",
    "P3221",
    "P4221",
    "P6332",
    "load_benchmark",
    "tiny_workload",
    "__version__",
]
