"""Seeded synthetic workload generation.

``generate_workload`` turns a :class:`~repro.workloads.profiles.WorkloadProfile`
into a validated :class:`~repro.isa.program.Program` plus its data-stream
specifications.  Structure:

* ``main`` is a phase loop: one block per worker procedure, calling the
  workers in turn, with a latch block looping back — so every outer
  iteration re-tours the whole code footprint (the large-instruction-
  working-set behaviour of gcc/ghostscript the paper selects for);
* each worker procedure is a forward chain of basic blocks decorated with
  small natural loops and forward-branching diamonds, plus occasional
  calls to later workers (the call graph is acyclic by construction).

Everything is driven by one ``random.Random(profile.seed)``, so a profile
is a complete, reproducible benchmark definition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cache.config import WORD_BYTES
from repro.isa.operations import OpClass, Operation
from repro.isa.program import BasicBlock, ControlFlowEdge, Procedure, Program
from repro.isa.validate import validate_program
from repro.trace.datamodel import StreamSpec
from repro.workloads.profiles import WorkloadProfile

#: Virtual-register id for "fresh" (never-defined) input operands.
_INPUT_REG_BASE = 500_000

#: How far back an operation may chain to recent results.
_DEPENDENCE_WINDOW = 6


@dataclass(frozen=True)
class GeneratedWorkload:
    """A generated program plus its stream table."""

    program: Program
    streams: dict[int, StreamSpec]
    profile: WorkloadProfile


def generate_workload(profile: WorkloadProfile) -> GeneratedWorkload:
    """Generate, validate and return the workload for ``profile``."""
    rng = random.Random(profile.seed)
    streams = _build_streams(profile)
    stream_ids = sorted(streams)

    program = Program(name=profile.name, entry="main")
    worker_names = [f"f{index:03d}" for index in range(profile.n_procedures)]

    for index, name in enumerate(worker_names):
        # Each worker draws from a small rotating subset of the streams.
        assigned = [
            stream_ids[(index + k) % len(stream_ids)]
            for k in range(min(3, len(stream_ids)))
        ]
        later = worker_names[index + 1 :]
        program.add(_make_worker(name, profile, rng, assigned, later))

    program.add(_make_main(profile, rng, worker_names, stream_ids))
    validate_program(program)
    return GeneratedWorkload(program=program, streams=streams, profile=profile)


def _build_streams(profile: WorkloadProfile) -> dict[int, StreamSpec]:
    streams: dict[int, StreamSpec] = {}
    stream_id = 0
    for family in profile.streams:
        for _ in range(family.count):
            streams[stream_id] = StreamSpec(
                pattern=family.pattern,
                region_bytes=family.region_kb * 1024,
                stride_bytes=family.stride_words * WORD_BYTES,
            )
            stream_id += 1
    return streams


def _make_main(
    profile: WorkloadProfile,
    rng: random.Random,
    worker_names: list[str],
    stream_ids: list[int],
) -> Procedure:
    """The phase-loop driver procedure."""
    blocks: list[BasicBlock] = []
    edges: list[ControlFlowEdge] = []
    n_phases = len(worker_names)
    for index, worker in enumerate(worker_names):
        ops = _make_ops(
            profile, rng, stream_ids[:1], mean_ops=4.0, has_branch=True
        )
        blocks.append(
            BasicBlock(block_id=index, operations=ops, calls=[worker])
        )
        edges.append(ControlFlowEdge(index, index + 1, 1.0))
    latch_id = n_phases
    return_id = n_phases + 1
    continue_p = 1.0 - 1.0 / max(2, profile.main_iterations)
    blocks.append(
        BasicBlock(
            block_id=latch_id,
            operations=_make_ops(
                profile, rng, stream_ids[:1], mean_ops=3.0, has_branch=True
            ),
        )
    )
    edges.append(ControlFlowEdge(latch_id, 0, continue_p))
    edges.append(ControlFlowEdge(latch_id, return_id, 1.0 - continue_p))
    blocks.append(
        BasicBlock(
            block_id=return_id,
            operations=_make_ops(
                profile, rng, stream_ids[:1], mean_ops=2.0, has_branch=True
            ),
        )
    )
    return Procedure(name="main", blocks=blocks, edges=edges)


def _make_worker(
    name: str,
    profile: WorkloadProfile,
    rng: random.Random,
    assigned_streams: list[int],
    later_workers: list[str],
) -> Procedure:
    n_blocks = rng.randint(*profile.blocks_per_proc)
    blocks: list[BasicBlock] = []
    edges: list[ControlFlowEdge] = []
    for index in range(n_blocks):
        calls: list[str] = []
        if (
            later_workers
            and rng.random() < profile.call_density
        ):
            calls.append(rng.choice(later_workers))
        ops = _make_ops(
            profile,
            rng,
            assigned_streams,
            mean_ops=profile.mean_ops_per_block,
            has_branch=True,
        )
        blocks.append(BasicBlock(block_id=index, operations=ops, calls=calls))

    for index in range(n_blocks - 1):
        roll = rng.random()
        if roll < profile.loop_probability and index > 0:
            target = rng.randint(max(0, index - 4), index)
            edges.append(
                ControlFlowEdge(index, target, profile.loop_continue)
            )
            edges.append(
                ControlFlowEdge(index, index + 1, 1.0 - profile.loop_continue)
            )
        elif (
            roll < profile.loop_probability + profile.branch_probability
            and index + 2 <= n_blocks - 1
        ):
            skip_to = rng.randint(index + 2, min(n_blocks - 1, index + 6))
            taken = rng.uniform(0.55, 0.9)
            edges.append(ControlFlowEdge(index, index + 1, taken))
            edges.append(ControlFlowEdge(index, skip_to, 1.0 - taken))
        else:
            edges.append(ControlFlowEdge(index, index + 1, 1.0))
    return Procedure(name=name, blocks=blocks, edges=edges)


def _make_ops(
    profile: WorkloadProfile,
    rng: random.Random,
    streams: list[int],
    mean_ops: float,
    has_branch: bool,
) -> list[Operation]:
    """Generate one block's operation list with local dependence chains."""
    spread = max(1.0, mean_ops * 0.5)
    count = max(1, int(rng.gauss(mean_ops, spread)))
    int_w, float_w, mem_w = profile.op_mix
    total_w = int_w + float_w + mem_w
    ops: list[Operation] = []
    recent: list[int] = []
    next_reg = 0
    next_input = _INPUT_REG_BASE

    def pick_src() -> int:
        nonlocal next_input
        if recent and rng.random() < profile.dependence_density:
            return rng.choice(recent[-_DEPENDENCE_WINDOW:])
        next_input += 1
        return next_input

    for _ in range(count):
        roll = rng.random() * total_w
        dest = next_reg
        next_reg += 1
        if roll < int_w:
            op = Operation(
                OpClass.INT, dests=(dest,), srcs=(pick_src(), pick_src())
            )
        elif roll < int_w + float_w:
            op = Operation(
                OpClass.FLOAT, dests=(dest,), srcs=(pick_src(), pick_src())
            )
        else:
            stream = rng.choice(streams)
            if rng.random() < profile.load_fraction:
                op = Operation(
                    OpClass.MEMORY,
                    dests=(dest,),
                    srcs=(pick_src(),),
                    is_load=True,
                    stream=stream,
                )
            else:
                op = Operation(
                    OpClass.MEMORY,
                    srcs=(pick_src(), pick_src()),
                    is_store=True,
                    stream=stream,
                )
        ops.append(op)
        if op.dests:
            recent.append(op.dests[0])
    if has_branch:
        branch_src = recent[-1] if recent else pick_src()
        ops.append(Operation(OpClass.BRANCH, srcs=(branch_src,)))
    return ops
