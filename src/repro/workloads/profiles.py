"""Workload characteristic profiles.

A :class:`WorkloadProfile` is the recipe the synthetic generator follows.
Every knob corresponds to a benchmark characteristic that influences the
paper's experiments: code footprint drives instruction-cache miss rates,
operation mix drives scheduling (and hence dilation), branchiness drives
block size, stream patterns drive data/unified cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StreamProfile:
    """Recipe for one family of data streams."""

    pattern: str  # sequential | strided | random | stack
    region_kb: int
    stride_words: int = 1
    count: int = 1


@dataclass(frozen=True)
class WorkloadProfile:
    """Recipe for one synthetic benchmark."""

    name: str
    seed: int
    #: Worker procedures besides main (call-graph is an acyclic chain-free
    #: DAG: procedure i may call only procedures j > i).
    n_procedures: int
    #: Basic blocks per worker procedure (uniform range, inclusive).
    blocks_per_proc: tuple[int, int]
    #: Mean non-branch operations per block (geometric-like spread).
    mean_ops_per_block: float
    #: Operation-class weights (int, float, memory); branches are implicit.
    op_mix: tuple[float, float, float]
    #: Probability an operation's sources chain to recent results.
    dependence_density: float
    #: Probability a non-final block is a loop head (gets a back edge).
    loop_probability: float
    #: Probability of staying in a loop at its back edge.
    loop_continue: float
    #: Probability a block has a two-way forward branch (diamond).
    branch_probability: float
    #: Probability a worker block calls a later procedure.
    call_density: float
    #: Fraction of memory operations that are loads.
    load_fraction: float = 0.65
    #: Data stream families.
    streams: tuple[StreamProfile, ...] = field(default_factory=tuple)
    #: Iterations of main's outer phase loop (continue probability is
    #: derived from it); large values keep the emulator inside its visit
    #: budget, re-touring the whole code footprint.
    main_iterations: int = 200

    def __post_init__(self) -> None:
        if self.n_procedures < 1:
            raise ConfigurationError("need at least one worker procedure")
        lo, hi = self.blocks_per_proc
        if lo < 2 or hi < lo:
            raise ConfigurationError(
                f"blocks_per_proc range invalid: {self.blocks_per_proc}"
            )
        if self.mean_ops_per_block < 1:
            raise ConfigurationError("mean_ops_per_block must be >= 1")
        if any(w < 0 for w in self.op_mix) or sum(self.op_mix) <= 0:
            raise ConfigurationError(f"bad op mix {self.op_mix}")
        for prob_name in (
            "dependence_density",
            "loop_probability",
            "loop_continue",
            "branch_probability",
            "call_density",
            "load_fraction",
        ):
            value = getattr(self, prob_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{prob_name} must be a probability, got {value}"
                )
        if not self.streams:
            raise ConfigurationError("profile needs at least one stream")
