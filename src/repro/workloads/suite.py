"""The named benchmark suite (paper Section 6).

Ten profiles mirror the paper's selection — seven MediaBench programs and
three SPEC programs with high instruction-cache miss rates.  Profile knobs
are chosen from each program's well-known character:

* ``085.gcc`` / ``147.vortex`` / ``ghostscript`` — very large, branchy
  integer code with big instruction working sets;
* ``099.go`` — branch-dominated integer search, small data;
* ``epic`` / ``unepic`` — image (de)compression: float/int mix over large
  sequential pixel streams;
* ``mipmap`` — float-heavy texture filtering with strided accesses;
* ``pgpdecode`` / ``pgpencode`` — integer crypto over sequential buffers
  plus random big-number tables;
* ``rasta`` — DSP-style float filters over sequential frames.

``load_benchmark(name, scale=...)`` lets tests shrink the code footprint
while keeping the character intact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.isa.program import Program
from repro.trace.datamodel import StreamSpec
from repro.workloads.profiles import StreamProfile, WorkloadProfile
from repro.workloads.synth import generate_workload


@dataclass(frozen=True)
class Workload:
    """A ready-to-run benchmark: program, streams and provenance."""

    name: str
    program: Program
    streams: dict[int, StreamSpec]
    profile: WorkloadProfile


def _profile(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


_PROFILES: dict[str, WorkloadProfile] = {
    "085.gcc": _profile(
        name="085.gcc",
        seed=8501,
        n_procedures=64,
        blocks_per_proc=(14, 34),
        mean_ops_per_block=9.0,
        op_mix=(0.62, 0.05, 0.33),
        dependence_density=0.55,
        loop_probability=0.16,
        loop_continue=0.82,
        branch_probability=0.34,
        call_density=0.06,
        streams=(
            StreamProfile("random", region_kb=96, count=2),
            StreamProfile("sequential", region_kb=48, count=2),
            StreamProfile("stack", region_kb=4, count=2),
        ),
    ),
    "099.go": _profile(
        name="099.go",
        seed=9901,
        n_procedures=48,
        blocks_per_proc=(12, 30),
        mean_ops_per_block=7.0,
        op_mix=(0.72, 0.02, 0.26),
        dependence_density=0.5,
        loop_probability=0.14,
        loop_continue=0.8,
        branch_probability=0.42,
        call_density=0.07,
        streams=(
            StreamProfile("random", region_kb=32, count=2),
            StreamProfile("stack", region_kb=4, count=2),
        ),
    ),
    "147.vortex": _profile(
        name="147.vortex",
        seed=14701,
        n_procedures=56,
        blocks_per_proc=(14, 32),
        mean_ops_per_block=10.0,
        op_mix=(0.58, 0.02, 0.40),
        dependence_density=0.5,
        loop_probability=0.15,
        loop_continue=0.84,
        branch_probability=0.3,
        call_density=0.08,
        streams=(
            StreamProfile("random", region_kb=192, count=3),
            StreamProfile("sequential", region_kb=32, count=1),
            StreamProfile("stack", region_kb=4, count=1),
        ),
    ),
    "epic": _profile(
        name="epic",
        seed=3001,
        n_procedures=28,
        blocks_per_proc=(10, 26),
        mean_ops_per_block=12.0,
        op_mix=(0.42, 0.25, 0.33),
        dependence_density=0.6,
        loop_probability=0.24,
        loop_continue=0.9,
        branch_probability=0.2,
        call_density=0.05,
        streams=(
            StreamProfile("sequential", region_kb=256, count=2),
            StreamProfile("strided", region_kb=128, stride_words=8, count=1),
            StreamProfile("stack", region_kb=2, count=1),
        ),
    ),
    "ghostscript": _profile(
        name="ghostscript",
        seed=4001,
        n_procedures=80,
        blocks_per_proc=(14, 34),
        mean_ops_per_block=9.0,
        op_mix=(0.58, 0.1, 0.32),
        dependence_density=0.55,
        loop_probability=0.18,
        loop_continue=0.84,
        branch_probability=0.32,
        call_density=0.06,
        streams=(
            StreamProfile("sequential", region_kb=192, count=2),
            StreamProfile("random", region_kb=96, count=2),
            StreamProfile("stack", region_kb=4, count=2),
        ),
    ),
    "mipmap": _profile(
        name="mipmap",
        seed=5001,
        n_procedures=30,
        blocks_per_proc=(10, 24),
        mean_ops_per_block=12.0,
        op_mix=(0.34, 0.33, 0.33),
        dependence_density=0.62,
        loop_probability=0.26,
        loop_continue=0.9,
        branch_probability=0.18,
        call_density=0.05,
        streams=(
            StreamProfile("strided", region_kb=256, stride_words=16, count=2),
            StreamProfile("sequential", region_kb=128, count=1),
            StreamProfile("stack", region_kb=2, count=1),
        ),
    ),
    "pgpdecode": _profile(
        name="pgpdecode",
        seed=6001,
        n_procedures=40,
        blocks_per_proc=(12, 28),
        mean_ops_per_block=10.0,
        op_mix=(0.66, 0.02, 0.32),
        dependence_density=0.65,
        loop_probability=0.2,
        loop_continue=0.86,
        branch_probability=0.26,
        call_density=0.06,
        streams=(
            StreamProfile("sequential", region_kb=96, count=2),
            StreamProfile("random", region_kb=64, count=2),
            StreamProfile("stack", region_kb=2, count=1),
        ),
    ),
    "pgpencode": _profile(
        name="pgpencode",
        seed=6002,
        n_procedures=40,
        blocks_per_proc=(12, 28),
        mean_ops_per_block=10.0,
        op_mix=(0.66, 0.02, 0.32),
        dependence_density=0.65,
        loop_probability=0.2,
        loop_continue=0.88,
        branch_probability=0.24,
        call_density=0.06,
        streams=(
            StreamProfile("sequential", region_kb=128, count=2),
            StreamProfile("random", region_kb=48, count=2),
            StreamProfile("stack", region_kb=2, count=1),
        ),
    ),
    "rasta": _profile(
        name="rasta",
        seed=7001,
        n_procedures=26,
        blocks_per_proc=(10, 24),
        mean_ops_per_block=11.0,
        op_mix=(0.38, 0.3, 0.32),
        dependence_density=0.6,
        loop_probability=0.26,
        loop_continue=0.88,
        branch_probability=0.18,
        call_density=0.05,
        streams=(
            StreamProfile("sequential", region_kb=96, count=3),
            StreamProfile("stack", region_kb=2, count=1),
        ),
    ),
    "unepic": _profile(
        name="unepic",
        seed=3002,
        n_procedures=20,
        blocks_per_proc=(8, 22),
        mean_ops_per_block=11.0,
        op_mix=(0.44, 0.24, 0.32),
        dependence_density=0.6,
        loop_probability=0.24,
        loop_continue=0.88,
        branch_probability=0.2,
        call_density=0.05,
        streams=(
            StreamProfile("sequential", region_kb=160, count=2),
            StreamProfile("stack", region_kb=2, count=1),
        ),
    ),
}

#: Benchmark names in the paper's table order.
BENCHMARK_NAMES: tuple[str, ...] = (
    "085.gcc",
    "099.go",
    "147.vortex",
    "epic",
    "ghostscript",
    "mipmap",
    "pgpdecode",
    "pgpencode",
    "rasta",
    "unepic",
)


def benchmark_profile(name: str) -> WorkloadProfile:
    """The suite profile registered under ``name``."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None


def load_benchmark(name: str, scale: float = 1.0) -> Workload:
    """Generate a suite benchmark, optionally scaled down for fast runs.

    ``scale`` multiplies the procedure count and per-procedure block
    range (floored at small minimums), shrinking the code footprint
    roughly linearly while preserving the workload's character.
    """
    profile = benchmark_profile(name)
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    if scale != 1.0:
        lo, hi = profile.blocks_per_proc
        profile = replace(
            profile,
            n_procedures=max(3, int(profile.n_procedures * scale)),
            blocks_per_proc=(
                max(2, int(lo * scale)),
                max(3, int(hi * scale)),
            ),
        )
    generated = generate_workload(profile)
    return Workload(
        name=name,
        program=generated.program,
        streams=generated.streams,
        profile=profile,
    )


def tiny_workload(seed: int = 42) -> Workload:
    """A minimal fast workload for unit and integration tests."""
    profile = _profile(
        name="tiny",
        seed=seed,
        n_procedures=4,
        blocks_per_proc=(3, 6),
        mean_ops_per_block=6.0,
        op_mix=(0.55, 0.1, 0.35),
        dependence_density=0.5,
        loop_probability=0.2,
        loop_continue=0.7,
        branch_probability=0.3,
        call_density=0.1,
        streams=(
            StreamProfile("sequential", region_kb=8, count=1),
            StreamProfile("random", region_kb=4, count=1),
            StreamProfile("stack", region_kb=1, count=1),
        ),
        main_iterations=50,
    )
    generated = generate_workload(profile)
    return Workload(
        name="tiny",
        program=generated.program,
        streams=generated.streams,
        profile=profile,
    )
