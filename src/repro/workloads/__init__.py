"""Synthetic benchmark suite standing in for MediaBench and SPEC.

The paper evaluates on seven MediaBench programs and three SPEC programs
chosen for high instruction-cache miss rates (Section 6).  Those binaries,
inputs and the IMPACT toolchain are unavailable, so this package generates
seeded synthetic workloads — IR programs plus data-stream models — whose
profiles (code footprint, operation mix, branchiness, data locality) are
tuned per benchmark to produce the same qualitative cache behaviour.  See
DESIGN.md's substitution table.
"""

from repro.workloads.profiles import WorkloadProfile
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    Workload,
    load_benchmark,
    tiny_workload,
)
from repro.workloads.synth import generate_workload

__all__ = [
    "WorkloadProfile",
    "generate_workload",
    "Workload",
    "BENCHMARK_NAMES",
    "load_benchmark",
    "tiny_workload",
]
