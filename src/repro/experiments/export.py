"""CSV export of experiment results.

Every runner result type renders to paper-style text via ``render()``;
this module adds machine-readable CSV for downstream analysis (plotting,
regression tracking).  One function per result type plus a dispatching
:func:`to_csv`.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    Figure5Result,
    Figure6Result,
    Table2Result,
    Table3Result,
    ThreeWayResult,
)


def _writer() -> tuple[io.StringIO, csv.writer]:
    buffer = io.StringIO()
    return buffer, csv.writer(buffer, lineterminator="\n")


def table2_csv(result: Table2Result) -> str:
    """Columns: cache, benchmark, processor, relative_misses."""
    buffer, writer = _writer()
    writer.writerow(["cache", "benchmark", "processor", "relative_misses"])
    for label, per_bench in result.data.items():
        for bench, ratios in per_bench.items():
            for processor, ratio in ratios.items():
                writer.writerow([label, bench, processor, f"{ratio:.6g}"])
    return buffer.getvalue()


def table3_csv(result: Table3Result) -> str:
    """Columns: benchmark, processor, text_dilation."""
    buffer, writer = _writer()
    writer.writerow(["benchmark", "processor", "text_dilation"])
    for bench, row in result.data.items():
        for processor, dilation in row.items():
            writer.writerow([bench, processor, f"{dilation:.6g}"])
    return buffer.getvalue()


def three_way_csv(result: ThreeWayResult) -> str:
    """Columns: cache, benchmark, processor, actual, dilated, estimated."""
    buffer, writer = _writer()
    writer.writerow(
        ["cache", "benchmark", "processor", "actual", "dilated", "estimated"]
    )
    for label, per_bench in result.data.items():
        for bench, per_proc in per_bench.items():
            for processor, (act, dil, est) in per_proc.items():
                writer.writerow(
                    [
                        label,
                        bench,
                        processor,
                        f"{act:.6g}",
                        f"{dil:.6g}",
                        f"{est:.6g}",
                    ]
                )
    return buffer.getvalue()


def figure5_csv(result: Figure5Result) -> str:
    """Columns: benchmark, kind, processor, threshold, fraction."""
    buffer, writer = _writer()
    writer.writerow(["benchmark", "kind", "processor", "threshold", "fraction"])
    for bench, series in result.curves.items():
        for (kind, processor), values in series.items():
            for threshold, value in zip(result.thresholds, values):
                writer.writerow(
                    [bench, kind, processor, f"{threshold:.4g}", f"{value:.6g}"]
                )
    return buffer.getvalue()


def figure6_csv(result: Figure6Result) -> str:
    """Columns: cache, dilation, dilated, estimated."""
    buffer, writer = _writer()
    writer.writerow(["cache", "dilation", "dilated", "estimated"])
    for label, pair in result.series.items():
        for dilation, dil, est in zip(
            result.dilations, pair["dilated"], pair["estimated"]
        ):
            writer.writerow(
                [label, f"{dilation:g}", f"{dil:.6g}", f"{est:.6g}"]
            )
    return buffer.getvalue()


def to_csv(result: object) -> str:
    """Dispatch to the matching exporter by result type."""
    if isinstance(result, Table2Result):
        return table2_csv(result)
    if isinstance(result, Table3Result):
        return table3_csv(result)
    if isinstance(result, ThreeWayResult):
        return three_way_csv(result)
    if isinstance(result, Figure5Result):
        return figure5_csv(result)
    if isinstance(result, Figure6Result):
        return figure6_csv(result)
    raise ConfigurationError(
        f"no CSV exporter for result type {type(result).__name__}"
    )


def save_csv(result: object, path: str | Path) -> Path:
    """Export ``result`` to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(result))
    return path
