"""Per-benchmark evaluation pipeline with memoized artifacts.

One :class:`ExperimentPipeline` owns a workload and lazily produces, per
processor: the compiled program, the synthesized/linked binary, the
(decorated) event trace, and the three address traces — then answers the
three miss questions of Section 6:

* **actual**   — simulate the processor's own traces;
* **dilated**  — simulate the reference trace with every block stretched
  by the text dilation (Section 4.1 step 2, via
  :func:`repro.core.dilated_trace.dilate_binary`);
* **estimated** — the dilation model (Section 4.3), answered internally
  from reference-trace simulations and AHH parameters.

The pipeline also satisfies the
:class:`repro.explore.spacewalker.DesignProvider` protocol, so a
spacewalker can drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterable, Mapping

from repro.ahh.modeler import (
    DEFAULT_I_GRANULE,
    DEFAULT_U_GRANULE,
    derive_trace_parameters,
)
from repro.ahh.params import TraceParameters
from repro.cache.config import WORD_BYTES, CacheConfig
from repro.cache.sweep import simulate_group_state
from repro.core.dilated_trace import dilate_binary
from repro.core.dilation import DilationInfo, measure_dilation
from repro.core.hierarchy_eval import processor_cycles
from repro.errors import ConfigurationError, RuntimeExecutionError
from repro.explore.evaluators import ROLES, MemoryEvaluator
from repro.iformat.assembler import assemble
from repro.iformat.linker import Binary, link
from repro.machine.mdes import MachineDescription
from repro.machine.presets import REFERENCE_PROCESSOR
from repro.machine.processor import VliwProcessor
from repro.runtime.executor import ExecutorPolicy, Job, run_jobs
from repro.runtime.journal import RunJournal, resolve_journal
from repro.trace.emulator import Emulator
from repro.trace.events import EventTrace
from repro.trace.generator import TraceGenerator
from repro.trace.ranges import RangeTrace
from repro.vliwcomp.compile import CompiledProgram, compile_program
from repro.workloads.suite import Workload


@dataclass(frozen=True)
class ProcessorArtifacts:
    """Everything derived for one (workload, processor) pair."""

    processor: VliwProcessor
    mdes: MachineDescription
    compiled: CompiledProgram
    binary: Binary
    events: EventTrace
    instruction_trace: RangeTrace
    data_trace: RangeTrace
    unified_trace: RangeTrace

    def trace(self, role: str) -> RangeTrace:
        """The address trace a given cache role consumes."""
        if role == "icache":
            return self.instruction_trace
        if role == "dcache":
            return self.data_trace
        if role == "unified":
            return self.unified_trace
        raise ConfigurationError(f"unknown role {role!r}")


class ExperimentPipeline:
    """Memoized end-to-end evaluation for one workload."""

    def __init__(
        self,
        workload: Workload,
        reference: VliwProcessor = REFERENCE_PROCESSOR,
        seed: int = 1,
        max_visits: int = 60_000,
        i_granule: int = DEFAULT_I_GRANULE,
        u_granule: int = DEFAULT_U_GRANULE,
        max_workers: int | None = None,
        policy: ExecutorPolicy | None = None,
    ):
        self.workload = workload
        self.reference = reference
        self.seed = seed
        self.max_visits = max_visits
        self.i_granule = i_granule
        self.u_granule = u_granule
        #: Worker processes for batched simulation priming (None = serial).
        self.max_workers = max_workers
        #: Fault-tolerance knobs for parallel priming (timeout/retries).
        self.policy = (policy or ExecutorPolicy()).with_workers(max_workers)
        self._artifacts: dict[str, ProcessorArtifacts] = {}
        self._dilation_infos: dict[str, DilationInfo] = {}
        self._cycles: dict[str, int] = {}
        self._params: TraceParameters | None = None
        self._ref_evaluator: MemoryEvaluator | None = None
        # MemoryEvaluators used as pure simulation banks, keyed by the
        # trace source: a processor name ("actual") or a dilation
        # ("dilated:<d>").
        self._sim_banks: dict[str, MemoryEvaluator] = {}
        # Optional analytics sink: every actual/dilated/estimated miss
        # measurement also lands as one run-table row when attached.
        self._recorder = None

    # ------------------------------------------------------------------
    # Run recording.
    # ------------------------------------------------------------------

    def attach_recorder(self, recorder) -> "ExperimentPipeline":
        """Record every miss measurement into ``recorder``.

        ``recorder`` is a :class:`repro.analytics.runs.RunRecorder`
        (duck-typed: anything with ``add_row``).  Recording is purely
        additive — it never changes what the measurement methods
        compute or return.  Detach with ``attach_recorder(None)``.
        """
        self._recorder = recorder
        return self

    def _record_misses(
        self,
        source: str,
        role: str,
        misses: Mapping[CacheConfig, float],
        **extra,
    ) -> None:
        if self._recorder is None:
            return
        for config, count in misses.items():
            self._recorder.add_row(
                benchmark=self.workload.name,
                role=role,
                sets=config.sets,
                assoc=config.assoc,
                line_size=config.line_size,
                misses=float(count),
                estimated=source == "estimated",
                source=source,
                **extra,
            )

    # ------------------------------------------------------------------
    # Artifact construction.
    # ------------------------------------------------------------------

    def artifacts(self, processor: VliwProcessor) -> ProcessorArtifacts:
        """Compile, assemble, link, emulate and trace for ``processor``."""
        cached = self._artifacts.get(processor.name)
        if cached is not None:
            return cached
        if not processor.compatible_reference(self.reference):
            raise ConfigurationError(
                f"processor {processor.name} and reference "
                f"{self.reference.name} differ in predication/speculation "
                "features; the dilation model requires one reference per "
                "feature combination (Section 4.1)"
            )
        mdes = MachineDescription(processor)
        compiled = compile_program(self.workload.program, mdes)
        assembled = assemble(compiled)
        binary = link(
            self.workload.program,
            assembled,
            packet_bytes=processor.issue_width * WORD_BYTES,
            processor_name=processor.name,
        )
        events = Emulator(
            self.workload.program, self.workload.streams, seed=self.seed
        ).run(self.max_visits, compiled=compiled)
        generator = TraceGenerator(binary, events)
        artifacts = ProcessorArtifacts(
            processor=processor,
            mdes=mdes,
            compiled=compiled,
            binary=binary,
            events=events,
            instruction_trace=generator.instruction_trace(),
            data_trace=generator.data_trace(),
            unified_trace=generator.unified_trace(),
        )
        self._artifacts[processor.name] = artifacts
        return artifacts

    def reference_artifacts(self) -> ProcessorArtifacts:
        """Artifacts of the reference processor."""
        return self.artifacts(self.reference)

    # ------------------------------------------------------------------
    # Dilation and trace parameters.
    # ------------------------------------------------------------------

    def dilation_info(self, processor: VliwProcessor) -> DilationInfo:
        """Per-block and text dilation of ``processor`` vs the reference
        (cached — binaries are fixed once artifacts exist)."""
        info = self._dilation_infos.get(processor.name)
        if info is None:
            info = measure_dilation(
                self.reference_artifacts().binary,
                self.artifacts(processor).binary,
            )
            self._dilation_infos[processor.name] = info
        return info

    def dilation(self, processor: VliwProcessor) -> float:
        """Text dilation d (DesignProvider protocol)."""
        if processor.name == self.reference.name:
            return 1.0
        return self.dilation_info(processor).text_dilation

    def trace_parameters(self) -> TraceParameters:
        """The nine AHH parameters of the reference trace (cached)."""
        if self._params is None:
            ref = self.reference_artifacts()
            self._params = derive_trace_parameters(
                ref.instruction_trace,
                ref.unified_trace,
                i_granule=self.i_granule,
                u_granule=self.u_granule,
            )
        return self._params

    def memory_evaluator(self) -> MemoryEvaluator:
        """Reference-trace miss oracle (DesignProvider protocol)."""
        if self._ref_evaluator is None:
            ref = self.reference_artifacts()
            self._ref_evaluator = MemoryEvaluator(
                ref.instruction_trace,
                ref.data_trace,
                ref.unified_trace,
                self.trace_parameters(),
            )
        return self._ref_evaluator

    def processor_cycles(self, processor: VliwProcessor) -> int:
        """Schedule-length cycles (DesignProvider protocol, cached)."""
        cycles = self._cycles.get(processor.name)
        if cycles is None:
            art = self.artifacts(processor)
            cycles = processor_cycles(art.compiled, art.events)
            self._cycles[processor.name] = cycles
        return cycles

    # ------------------------------------------------------------------
    # The three miss measurements.
    # ------------------------------------------------------------------

    def actual_misses(
        self,
        processor: VliwProcessor,
        role: str,
        configs: Iterable[CacheConfig],
    ) -> dict[CacheConfig, int]:
        """Simulate ``processor``'s own traces (ground truth)."""
        art = self.artifacts(processor)
        bank = self._bank(
            f"actual:{processor.name}",
            art.instruction_trace,
            art.data_trace,
            art.unified_trace,
        )
        configs = list(configs)
        bank.register(role, configs)
        bank.prime(max_workers=self.max_workers, policy=self.policy)
        misses = {c: bank.simulated_misses(role, c) for c in configs}
        self._record_misses(
            "actual", role, misses, processor=processor.name
        )
        return misses

    def prime_actual(
        self,
        processors: Iterable[VliwProcessor],
        role_configs: Mapping[str, Iterable[CacheConfig]],
        max_workers: int | None = None,
        policy: ExecutorPolicy | None = None,
        journal: RunJournal | None = None,
    ) -> int:
        """Pre-run the simulations :meth:`actual_misses` will need.

        One work unit per (processor, role, line size); with
        ``max_workers`` > 1 the units run concurrently in worker
        processes under the fault-tolerant executor
        (:func:`repro.runtime.run_jobs`), and their single-pass
        histogram states are merged back into the per-processor
        simulation banks.  Worker faults cost retries (or an in-process
        fallback), and subsequent :meth:`actual_misses` calls are pure
        lookups either way, so results are identical to the serial path.

        Artifact construction (compile/assemble/emulate/trace) stays in
        the parent process — it is memoized and shared across roles.

        Returns the number of simulation passes run.
        """
        if max_workers is None:
            max_workers = self.max_workers
        policy = (policy or self.policy).with_workers(max_workers)
        journal = resolve_journal(journal)
        role_configs = {
            role: list(configs) for role, configs in role_configs.items()
        }
        banks = []
        for processor in processors:
            art = self.artifacts(processor)
            bank = self._bank(
                f"actual:{processor.name}",
                art.instruction_trace,
                art.data_trace,
                art.unified_trace,
            )
            if bank not in banks:
                banks.append(bank)
            for role, configs in role_configs.items():
                bank.register(role, configs)

        units = [
            (bank_index, key)
            for bank_index, bank in enumerate(banks)
            for key in bank.pending_units()
        ]
        if not units:
            return 0
        parallel = (
            policy.max_workers is not None
            and policy.max_workers > 1
            and len(units) > 1
        )
        if not parallel and policy.fault is None:
            for bank in banks:
                bank.prime()
            return len(units)
        jobs = [
            Job(
                key=(bank_index, *key),
                fn=simulate_group_state,
                args_factory=partial(banks[bank_index].unit_job, *key),
            )
            for bank_index, key in units
        ]
        outcomes = run_jobs(jobs, policy, journal)
        failures = [r for r in outcomes.values() if not r.ok]
        if failures:
            first = failures[0]
            raise RuntimeExecutionError(
                f"{len(failures)} priming pass(es) failed after retries "
                f"(first: {first.key}: {first.error})"
            )
        for bank_index, key in units:
            accesses, hists = outcomes[(bank_index, *key)].value
            banks[bank_index].install_unit(*key, accesses, hists)
        return len(units)

    def dilated_misses(
        self,
        dilation: float,
        role: str,
        configs: Iterable[CacheConfig],
    ) -> dict[CacheConfig, int]:
        """Simulate the reference trace dilated by ``dilation``.

        The data component is not dilated (Section 4.3.2): data-role
        queries return the plain reference simulation.
        """
        ref = self.reference_artifacts()
        if role == "dcache" or dilation == 1.0:
            bank = self._bank(
                "actual:" + self.reference.name,
                ref.instruction_trace,
                ref.data_trace,
                ref.unified_trace,
            )
        else:
            key = f"dilated:{dilation:g}"
            bank = self._sim_banks.get(key)
            if bank is None:
                dilated_binary = dilate_binary(ref.binary, dilation)
                generator = TraceGenerator(dilated_binary, ref.events)
                bank = MemoryEvaluator(
                    generator.instruction_trace(),
                    ref.data_trace,
                    generator.unified_trace(),
                    params=None,
                )
                self._sim_banks[key] = bank
        configs = list(configs)
        bank.register(role, configs)
        bank.prime(max_workers=self.max_workers, policy=self.policy)
        misses = {c: bank.simulated_misses(role, c) for c in configs}
        self._record_misses("dilated", role, misses, dilation=dilation)
        return misses

    def estimated_misses(
        self,
        dilation: float,
        role: str,
        configs: Iterable[CacheConfig],
    ) -> dict[CacheConfig, float]:
        """The dilation model's estimates (Section 4.3)."""
        evaluator = self.memory_evaluator()
        misses = {
            c: evaluator.misses(role, c, dilation) for c in configs
        }
        self._record_misses("estimated", role, misses, dilation=dilation)
        return misses

    def _bank(
        self,
        key: str,
        instruction_trace: RangeTrace,
        data_trace: RangeTrace,
        unified_trace: RangeTrace,
    ) -> MemoryEvaluator:
        bank = self._sim_banks.get(key)
        if bank is None:
            bank = MemoryEvaluator(
                instruction_trace, data_trace, unified_trace, params=None
            )
            self._sim_banks[key] = bank
        return bank

    @staticmethod
    def roles() -> tuple[str, ...]:
        return ROLES
