"""The paper's experimental cache configurations (Section 6).

Two hierarchies are evaluated throughout:

* **small**: 1KB direct-mapped data cache (L=32), 1KB direct-mapped
  instruction cache (L=32), 16KB 2-way unified cache (L=64);
* **large**: 16KB 2-way data cache (L=32), 16KB 2-way instruction cache
  (L=32), 128KB 4-way unified cache (L=64).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig


@dataclass(frozen=True)
class PaperCacheConfigs:
    """The six cache configurations of Section 6."""

    small_icache: CacheConfig = CacheConfig.from_size(1 * 1024, 1, 32)
    large_icache: CacheConfig = CacheConfig.from_size(16 * 1024, 2, 32)
    small_dcache: CacheConfig = CacheConfig.from_size(1 * 1024, 1, 32)
    large_dcache: CacheConfig = CacheConfig.from_size(16 * 1024, 2, 32)
    small_ucache: CacheConfig = CacheConfig.from_size(16 * 1024, 2, 64)
    large_ucache: CacheConfig = CacheConfig.from_size(128 * 1024, 4, 64)

    @property
    def icaches(self) -> tuple[CacheConfig, CacheConfig]:
        return (self.small_icache, self.large_icache)

    @property
    def dcaches(self) -> tuple[CacheConfig, CacheConfig]:
        return (self.small_dcache, self.large_dcache)

    @property
    def ucaches(self) -> tuple[CacheConfig, CacheConfig]:
        return (self.small_ucache, self.large_ucache)

    def roles(self) -> dict[str, tuple[CacheConfig, CacheConfig]]:
        """The (small, large) pair per trace role."""
        return {
            "icache": self.icaches,
            "dcache": self.dcaches,
            "unified": self.ucaches,
        }


#: The default instance used by the runner functions.
PAPER_CONFIGS = PaperCacheConfigs()
