"""Multiple reference processors (Section 4.1, step 1).

"We require that Pref and Pi have the same data speculation and
predication features, because these features have a large impact on
address traces.  When the design space covers machines with differing
predication/speculation features, we use several Pref processors, one for
each unique combination of predication and speculation."

:class:`MultiReferencePipeline` keeps one :class:`ExperimentPipeline` per
feature combination and routes every query to the matching one, exposing
the same miss/dilation interface (and the DesignProvider protocol) as a
single pipeline.
"""

from __future__ import annotations

from typing import Iterable

from repro.cache.config import CacheConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.machine.processor import VliwProcessor, make_processor
from repro.workloads.suite import Workload

#: A feature combination: (has_predication, has_speculation).
FeatureKey = tuple[bool, bool]


def feature_key(processor: VliwProcessor) -> FeatureKey:
    """The (predication, speculation) combination of a processor."""
    return (processor.has_predication, processor.has_speculation)


def make_reference_for(processor: VliwProcessor) -> VliwProcessor:
    """The narrow 1111 machine with ``processor``'s feature flags."""
    return make_processor(
        1,
        1,
        1,
        1,
        has_predication=processor.has_predication,
        has_speculation=processor.has_speculation,
    )


class MultiReferencePipeline:
    """Route evaluation to per-feature-combination reference pipelines."""

    def __init__(self, workload: Workload, **pipeline_kwargs):
        self.workload = workload
        self.pipeline_kwargs = pipeline_kwargs
        self._pipelines: dict[FeatureKey, ExperimentPipeline] = {}

    def pipeline_for(self, processor: VliwProcessor) -> ExperimentPipeline:
        """The pipeline whose reference matches ``processor``'s features."""
        key = feature_key(processor)
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            pipeline = ExperimentPipeline(
                self.workload,
                reference=make_reference_for(processor),
                **self.pipeline_kwargs,
            )
            self._pipelines[key] = pipeline
        return pipeline

    @property
    def references(self) -> list[VliwProcessor]:
        """Reference processors instantiated so far."""
        return [p.reference for p in self._pipelines.values()]

    # ------------------------------------------------------------------
    # Same surface as ExperimentPipeline, feature-routed.
    # ------------------------------------------------------------------

    def dilation(self, processor: VliwProcessor) -> float:
        """Text dilation of ``processor`` vs its feature-matched reference."""
        return self.pipeline_for(processor).dilation(processor)

    def processor_cycles(self, processor: VliwProcessor) -> int:
        """Schedule-length cycles via the feature-matched pipeline."""
        return self.pipeline_for(processor).processor_cycles(processor)

    def actual_misses(
        self,
        processor: VliwProcessor,
        role: str,
        configs: Iterable[CacheConfig],
    ) -> dict[CacheConfig, int]:
        """Ground-truth misses of ``processor``'s own traces."""
        return self.pipeline_for(processor).actual_misses(
            processor, role, configs
        )

    def estimated_misses_for(
        self,
        processor: VliwProcessor,
        role: str,
        configs: Iterable[CacheConfig],
    ) -> dict[CacheConfig, float]:
        """Dilation-model estimates against the matching reference."""
        pipeline = self.pipeline_for(processor)
        return pipeline.estimated_misses(
            pipeline.dilation(processor), role, configs
        )
