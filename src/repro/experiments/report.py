"""Report assembly: compose a markdown run report from bench results.

``pytest benchmarks/ --benchmark-only`` leaves one rendered text file per
experiment in ``benchmarks/results/``; :func:`build_report` stitches them
into a single markdown document (the measured half of EXPERIMENTS.md),
so a fresh clone can regenerate and diff its numbers in one step:

    python -c "from repro.experiments.report import build_report; \\
               print(build_report('benchmarks/results'))" > report.md
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ConfigurationError

#: Known experiments in presentation order: (file stem, section title).
SECTIONS: tuple[tuple[str, str], ...] = (
    ("table2", "Table 2 — relative data-cache miss rates"),
    ("table3", "Table 3 — text dilation"),
    ("figure5", "Figure 5 — dilation distributions"),
    ("figure6", "Figure 6 — estimated vs dilated misses"),
    ("figure7", "Figure 7 — actual vs dilated vs estimated (gcc)"),
    ("table4", "Table 4 — full-suite three-way comparison"),
    ("validation", "Section 6.1 — simulator cross-validation"),
    ("costmodel", "Section 1 — evaluation-cost arithmetic"),
    ("spacewalker", "Figure 2 — spacewalker Pareto exploration"),
    ("ablation_interp", "Ablation — Lemma-2 vs naive interpolation"),
    ("ablation_granule", "Ablation — granule-size sensitivity"),
    ("ablation_stable", "Ablation — stable vs direct collisions"),
    ("ablation_standalone", "Ablation — standalone AHH vs anchored"),
)


def build_report(
    results_dir: str | Path,
    title: str = "Reproduction run report",
    journal: str | Path | None = None,
    store: str | Path | None = None,
) -> str:
    """Assemble available results into one markdown document.

    Missing result files are listed (not errors): partial bench runs
    produce partial reports.  An empty results directory raises, since a
    report of nothing is always a mistake.

    ``journal`` (a JSON-lines file written via ``--journal`` or
    :class:`repro.runtime.RunJournal`) appends a robustness/observability
    summary section: simulation passes, retries, fallbacks, cache hit
    rates and worker utilization.

    ``store`` (an evaluation-service sqlite database) appends a store /
    job-queue / recorded-runs statistics section.
    """
    results_dir = Path(results_dir)
    # A journal or store section can stand alone; bench results are
    # only mandatory when they are all the report would contain.
    if not results_dir.is_dir() and journal is None and store is None:
        raise ConfigurationError(
            f"results directory {results_dir} does not exist; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    parts: list[str] = [f"# {title}", ""]
    missing: list[str] = []
    found = 0
    for stem, section_title in SECTIONS:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        found += 1
        parts.append(f"## {section_title}")
        parts.append("")
        parts.append("```text")
        parts.append(path.read_text().rstrip())
        parts.append("```")
        parts.append("")
    if found == 0 and journal is None and store is None:
        raise ConfigurationError(
            f"no known result files in {results_dir}; run the bench suite"
        )
    if found and missing:
        parts.append("## Not regenerated in this run")
        parts.append("")
        for stem in missing:
            parts.append(f"* `{stem}`")
        parts.append("")
    if journal is not None:
        from repro.runtime.journal import RunJournal

        summary = RunJournal.load(journal).summary_text()
        parts.append("## Run journal — robustness & observability")
        parts.append("")
        parts.append("```text")
        parts.append(summary)
        parts.append("```")
        parts.append("")
    if store is not None:
        parts.append("## Evaluation service — store & queue")
        parts.append("")
        parts.append("```text")
        parts.append(store_report(store))
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def store_report(db_path: str | Path) -> str:
    """Store / job-queue / recorded-run statistics, one text block."""
    from repro.analytics.runs import list_runs
    from repro.service.queue import JobQueue
    from repro.service.store import ResultStore

    store = ResultStore(db_path)
    stats = store.stats()
    counts = JobQueue(store).counts()
    runs = list_runs(store, limit=10)
    lines = [f"database: {db_path}"]
    lines.append(
        "store: "
        + ", ".join(f"{k}={stats[k]}" for k in sorted(stats))
    )
    lines.append(
        "queue: "
        + ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    )
    if runs:
        lines.append(f"runs (latest {len(runs)}):")
        for run in runs:
            wall = run.get("wall_s")
            lines.append(
                f"  {run['id']}  {run['kind']:>8} {run['state']:>8}  "
                f"rows={run['rows']}"
                + (f"  wall_s={wall}" if wall is not None else "")
            )
    else:
        lines.append("runs: none recorded")
    return "\n".join(lines)


def save_report(
    results_dir: str | Path,
    output: str | Path,
    title: str = "Reproduction run report",
    journal: str | Path | None = None,
    store: str | Path | None = None,
) -> Path:
    """Write :func:`build_report`'s output to ``output``."""
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        build_report(results_dir, title, journal=journal, store=store)
    )
    return output
