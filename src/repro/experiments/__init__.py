"""Experiment harness: regenerate every table and figure of Section 6.

* :mod:`repro.experiments.configs` — the paper's small/large cache
  configurations and processor roster;
* :mod:`repro.experiments.pipeline` — the per-benchmark evaluation
  pipeline (compile, link, emulate, trace, simulate, model) with caching;
* :mod:`repro.experiments.tables` — plain-text table/series rendering;
* :mod:`repro.experiments.runner` — one entry point per table/figure
  (table2, table3, figure5, figure6, figure7, table4).
"""

from repro.experiments.configs import PaperCacheConfigs
from repro.experiments.export import save_csv, to_csv
from repro.experiments.multiref import MultiReferencePipeline
from repro.experiments.pipeline import ExperimentPipeline, ProcessorArtifacts
from repro.experiments.report import build_report, save_report
from repro.experiments.summary import error_summary, render_error_summary
from repro.experiments.runner import (
    run_figure5,
    run_figure6,
    run_figure7,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = [
    "PaperCacheConfigs",
    "ExperimentPipeline",
    "ProcessorArtifacts",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "MultiReferencePipeline",
    "to_csv",
    "save_csv",
    "build_report",
    "save_report",
    "error_summary",
    "render_error_summary",
]
