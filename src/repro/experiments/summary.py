"""Error statistics over three-way (actual/dilated/estimated) results.

The evaluation's verdicts (Section 6.5: "estimates track the actual
misses better for narrower processors ... better for instruction caches
than for unified caches") are statements about estimation-error
distributions; this module computes them from a
:class:`~repro.experiments.runner.ThreeWayResult` so benches, notebooks
and the CLI share one implementation.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.runner import ThreeWayResult


@dataclass(frozen=True)
class ErrorStats:
    """Relative-error statistics of one estimator slice."""

    n: int
    mean: float
    median: float
    p90: float
    worst: float

    @classmethod
    def from_errors(cls, errors: list[float]) -> "ErrorStats":
        """Aggregate a non-empty list of |est − act| / act values."""
        if not errors:
            raise ConfigurationError("no errors to aggregate")
        ordered = sorted(errors)
        p90_index = min(len(ordered) - 1, int(0.9 * len(ordered)))
        return cls(
            n=len(errors),
            mean=sum(errors) / len(errors),
            median=statistics.median(errors),
            p90=ordered[p90_index],
            worst=ordered[-1],
        )


def relative_errors(
    result: ThreeWayResult,
    *,
    series: str = "estimated",
    role: str | None = None,
    processor: str | None = None,
) -> list[float]:
    """Collect |x − actual| / actual over the result's cells.

    ``series`` picks what is compared against the actual misses:
    ``"estimated"`` (the model) or ``"dilated"`` (the dilated-trace
    simulation — isolating the uniform-dilation assumption's error).
    ``role`` filters to ``"icache"``/``"unified"``; ``processor`` to one
    column.
    """
    if series not in ("estimated", "dilated"):
        raise ConfigurationError(
            f"series must be 'estimated' or 'dilated', got {series!r}"
        )
    out: list[float] = []
    for label, per_bench in result.data.items():
        label_role = "icache" if "Icache" in label else "unified"
        if role is not None and label_role != role:
            continue
        for per_proc in per_bench.values():
            for proc_name, (act, dil, est) in per_proc.items():
                if processor is not None and proc_name != processor:
                    continue
                value = est if series == "estimated" else dil
                out.append(abs(value - act) / act)
    return out


def error_summary(result: ThreeWayResult) -> dict[str, ErrorStats]:
    """The paper's headline slices, keyed by a readable label."""
    slices: dict[str, ErrorStats] = {}
    for role in ("icache", "unified"):
        slices[f"estimated/{role}"] = ErrorStats.from_errors(
            relative_errors(result, role=role)
        )
        slices[f"dilated/{role}"] = ErrorStats.from_errors(
            relative_errors(result, series="dilated", role=role)
        )
    for processor in result.processors:
        slices[f"estimated/{processor}"] = ErrorStats.from_errors(
            relative_errors(result, processor=processor)
        )
    return slices


def render_error_summary(result: ThreeWayResult) -> str:
    """Fixed-width text rendering of :func:`error_summary`."""
    rows = [
        f"{'slice':<22}{'n':>5}{'mean':>8}{'median':>8}{'p90':>8}{'worst':>8}"
    ]
    for label, stats in error_summary(result).items():
        rows.append(
            f"{label:<22}{stats.n:>5}{stats.mean:>8.3f}"
            f"{stats.median:>8.3f}{stats.p90:>8.3f}{stats.worst:>8.3f}"
        )
    return "\n".join(rows)
