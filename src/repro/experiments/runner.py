"""One entry point per paper table/figure (Section 6).

Every ``run_*`` function returns a result object carrying the raw numbers
plus a ``render()`` method producing a paper-style text table.  A module-
level pipeline cache lets several experiments in one process share the
expensive per-benchmark artifacts (compiles, emulations, simulations).

Scaling: ``RunnerSettings.scale`` shrinks workload code footprints and
``max_visits`` truncates execution, trading absolute magnitudes for speed
while preserving the shape-level results (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.config import CacheConfig
from repro.experiments.configs import PAPER_CONFIGS, PaperCacheConfigs
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.tables import render_series, render_table
from repro.machine.presets import (
    PAPER_PROCESSORS,
    REFERENCE_PROCESSOR,
    TARGET_PROCESSORS,
)
from repro.machine.processor import VliwProcessor
from repro.runtime.executor import ExecutorPolicy
from repro.workloads.suite import BENCHMARK_NAMES, load_benchmark


@dataclass(frozen=True)
class RunnerSettings:
    """Knobs shared by all experiment runners."""

    scale: float = 1.0
    max_visits: int = 60_000
    seed: int = 1
    i_granule: int = 2_000
    u_granule: int = 20_000
    #: Worker processes for batched simulation priming (None = serial).
    max_workers: int | None = None
    #: Per-pass timeout in seconds for parallel priming (None = no limit).
    job_timeout: float | None = None
    #: Re-attempts per failed simulation pass before giving up.
    job_retries: int = 2
    #: How parallel runs ship trace arrays to workers (auto/shm/pickle).
    trace_shipping: str = "auto"
    #: Workers for per-line-size stack-distance counting (1 = in-process).
    count_parallelism: int = 1

    def executor_policy(self) -> ExecutorPolicy:
        """The fault-tolerance policy these settings describe."""
        return ExecutorPolicy(
            max_workers=self.max_workers,
            timeout=self.job_timeout,
            retries=self.job_retries,
            trace_shipping=self.trace_shipping,
            count_parallelism=self.count_parallelism,
        )


_PIPELINES: dict[tuple, ExperimentPipeline] = {}


def get_pipeline(
    benchmark: str, settings: RunnerSettings = RunnerSettings()
) -> ExperimentPipeline:
    """Shared, memoized pipeline per (benchmark, settings)."""
    key = (benchmark, settings)
    pipeline = _PIPELINES.get(key)
    if pipeline is None:
        workload = load_benchmark(benchmark, scale=settings.scale)
        pipeline = ExperimentPipeline(
            workload,
            seed=settings.seed,
            max_visits=settings.max_visits,
            i_granule=settings.i_granule,
            u_granule=settings.u_granule,
            max_workers=settings.max_workers,
            policy=settings.executor_policy(),
        )
        _PIPELINES[key] = pipeline
    return pipeline


def clear_pipeline_cache() -> None:
    """Drop all memoized pipelines (frees their traces and simulators)."""
    _PIPELINES.clear()


# ----------------------------------------------------------------------
# Table 2: relative data cache miss rates.
# ----------------------------------------------------------------------


@dataclass
class Table2Result:
    """data[config_label][benchmark][processor] = misses / ref misses."""

    data: dict[str, dict[str, dict[str, float]]]
    processors: tuple[str, ...]

    def render(self) -> str:
        parts = []
        for label, per_bench in self.data.items():
            rows = [
                [bench, *(per_bench[bench][p] for p in self.processors)]
                for bench in per_bench
            ]
            parts.append(
                render_table(
                    f"Relative Data Cache Miss Rates ({label})",
                    ["Benchmark", *self.processors],
                    rows,
                )
            )
        return "\n\n".join(parts)


def run_table2(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    settings: RunnerSettings = RunnerSettings(),
    configs: PaperCacheConfigs = PAPER_CONFIGS,
) -> Table2Result:
    """Actual data-cache misses per processor, normalized to 1111."""
    labels = {
        configs.small_dcache: f"{configs.small_dcache.size_kb:g} KB",
        configs.large_dcache: f"{configs.large_dcache.size_kb:g} KB",
    }
    data: dict[str, dict[str, dict[str, float]]] = {
        label: {} for label in labels.values()
    }
    for bench in benchmarks:
        pipeline = get_pipeline(bench, settings)
        per_config: dict[CacheConfig, dict[str, int]] = {
            c: {} for c in labels
        }
        for processor in PAPER_PROCESSORS:
            misses = pipeline.actual_misses(
                processor, "dcache", list(labels)
            )
            for config, count in misses.items():
                per_config[config][processor.name] = count
        for config, label in labels.items():
            ref = per_config[config][REFERENCE_PROCESSOR.name]
            data[label][bench] = {
                name: (count / ref if ref else float("nan"))
                for name, count in per_config[config].items()
            }
    return Table2Result(
        data=data, processors=tuple(p.name for p in PAPER_PROCESSORS)
    )


# ----------------------------------------------------------------------
# Table 3: text dilation.
# ----------------------------------------------------------------------


@dataclass
class Table3Result:
    """data[benchmark][processor] = text dilation."""

    data: dict[str, dict[str, float]]
    processors: tuple[str, ...]

    def render(self) -> str:
        rows = [
            [bench, *(self.data[bench][p] for p in self.processors)]
            for bench in self.data
        ]
        return render_table(
            "Text Dilation", ["Benchmark", *self.processors], rows
        )


def run_table3(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    settings: RunnerSettings = RunnerSettings(),
) -> Table3Result:
    """Text dilation of every processor for every benchmark (Table 3)."""
    data: dict[str, dict[str, float]] = {}
    for bench in benchmarks:
        pipeline = get_pipeline(bench, settings)
        data[bench] = {
            p.name: pipeline.dilation(p) for p in PAPER_PROCESSORS
        }
    return Table3Result(
        data=data, processors=tuple(p.name for p in PAPER_PROCESSORS)
    )


# ----------------------------------------------------------------------
# Figure 5: dilation distributions.
# ----------------------------------------------------------------------


@dataclass
class Figure5Result:
    """curves[benchmark][(kind, processor)] = CDF values at thresholds."""

    thresholds: np.ndarray
    curves: dict[str, dict[tuple[str, str], np.ndarray]]

    def render(self) -> str:
        parts = []
        for bench, series in self.curves.items():
            named = {
                f"{kind} {proc}": values
                for (kind, proc), values in series.items()
            }
            parts.append(
                render_series(
                    f"Dilation distribution - {bench}",
                    "dilation",
                    self.thresholds.tolist(),
                    named,
                    float_format="{:.3f}",
                )
            )
        return "\n\n".join(parts)


def run_figure5(
    benchmarks: tuple[str, ...] = ("085.gcc", "ghostscript"),
    processors: tuple[VliwProcessor, ...] | None = None,
    settings: RunnerSettings = RunnerSettings(),
    thresholds: np.ndarray | None = None,
) -> Figure5Result:
    """Static and dynamic cumulative dilation distributions."""
    if processors is None:
        processors = tuple(
            p for p in TARGET_PROCESSORS if p.name in ("2111", "3221", "6332")
        )
    if thresholds is None:
        thresholds = np.linspace(0.0, 10.0, 41)
    curves: dict[str, dict[tuple[str, str], np.ndarray]] = {}
    for bench in benchmarks:
        pipeline = get_pipeline(bench, settings)
        ref_events = pipeline.reference_artifacts().events
        weights = {
            key: int(count)
            for key, count in zip(
                ref_events.blocks, ref_events.visit_frequencies().tolist()
            )
        }
        series: dict[tuple[str, str], np.ndarray] = {}
        for processor in processors:
            info = pipeline.dilation_info(processor)
            series[("static", processor.name)] = info.static_distribution(
                thresholds
            )
            series[("dynamic", processor.name)] = info.dynamic_distribution(
                weights, thresholds
            )
        curves[bench] = series
    return Figure5Result(thresholds=thresholds, curves=curves)


# ----------------------------------------------------------------------
# Figure 6: estimated vs dilated misses across a dilation sweep.
# ----------------------------------------------------------------------


@dataclass
class Figure6Result:
    """series[config_label] = {"dilated": [...], "estimated": [...]}."""

    benchmark: str
    dilations: tuple[float, ...]
    series: dict[str, dict[str, list[float]]]

    def render(self) -> str:
        parts = []
        for label, pair in self.series.items():
            parts.append(
                render_series(
                    f"Estimated and dilated misses - {self.benchmark} "
                    f"({label})",
                    "dilation",
                    self.dilations,
                    pair,
                )
            )
        return "\n\n".join(parts)


def run_figure6(
    benchmark: str = "085.gcc",
    settings: RunnerSettings = RunnerSettings(),
    configs: PaperCacheConfigs = PAPER_CONFIGS,
    dilations: tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
) -> Figure6Result:
    """Estimated vs dilated misses across a dilation sweep (Figure 6)."""
    pipeline = get_pipeline(benchmark, settings)
    targets: dict[str, tuple[str, CacheConfig]] = {
        f"{configs.small_icache.size_kb:g} KB Icache": (
            "icache",
            configs.small_icache,
        ),
        f"{configs.large_icache.size_kb:g} KB Icache": (
            "icache",
            configs.large_icache,
        ),
        f"{configs.small_ucache.size_kb:g} KB Ucache": (
            "unified",
            configs.small_ucache,
        ),
        f"{configs.large_ucache.size_kb:g} KB Ucache": (
            "unified",
            configs.large_ucache,
        ),
    }
    series: dict[str, dict[str, list[float]]] = {
        label: {"dilated": [], "estimated": []} for label in targets
    }
    for dilation in dilations:
        for label, (role, config) in targets.items():
            dilated = pipeline.dilated_misses(dilation, role, [config])
            estimated = pipeline.estimated_misses(dilation, role, [config])
            series[label]["dilated"].append(float(dilated[config]))
            series[label]["estimated"].append(float(estimated[config]))
    return Figure6Result(
        benchmark=benchmark, dilations=dilations, series=series
    )


# ----------------------------------------------------------------------
# Figure 7 / Table 4: actual vs dilated vs estimated misses.
# ----------------------------------------------------------------------


@dataclass
class ThreeWayResult:
    """data[config_label][benchmark][processor] = (act, dil, est).

    All three values are normalized to the reference processor's actual
    misses, matching Table 4's presentation.
    """

    data: dict[str, dict[str, dict[str, tuple[float, float, float]]]]
    processors: tuple[str, ...]

    def render(self) -> str:
        parts = []
        for label, per_bench in self.data.items():
            headers = ["Benchmark"]
            for name in self.processors:
                headers += [f"{name} Act", f"{name} Dil", f"{name} Est"]
            rows = []
            for bench, per_proc in per_bench.items():
                row: list[object] = [bench]
                for name in self.processors:
                    act, dil, est = per_proc[name]
                    row += [act, dil, est]
                rows.append(row)
            parts.append(render_table(label, headers, rows))
        return "\n\n".join(parts)


def _three_way(
    benchmarks: tuple[str, ...],
    settings: RunnerSettings,
    configs: PaperCacheConfigs,
) -> ThreeWayResult:
    targets: dict[str, tuple[str, CacheConfig]] = {
        f"{configs.small_icache.size_kb:g} KB Icache": (
            "icache",
            configs.small_icache,
        ),
        f"{configs.large_icache.size_kb:g} KB Icache": (
            "icache",
            configs.large_icache,
        ),
        f"{configs.small_ucache.size_kb:g} K Ucache": (
            "unified",
            configs.small_ucache,
        ),
        f"{configs.large_ucache.size_kb:g} K Ucache": (
            "unified",
            configs.large_ucache,
        ),
    }
    data: dict[str, dict[str, dict[str, tuple[float, float, float]]]] = {
        label: {} for label in targets
    }
    for bench in benchmarks:
        pipeline = get_pipeline(bench, settings)
        for label, (role, config) in targets.items():
            ref_actual = pipeline.actual_misses(
                REFERENCE_PROCESSOR, role, [config]
            )[config]
            norm = float(ref_actual) if ref_actual else float("nan")
            per_proc: dict[str, tuple[float, float, float]] = {}
            for processor in TARGET_PROCESSORS:
                dilation = pipeline.dilation(processor)
                actual = pipeline.actual_misses(processor, role, [config])[
                    config
                ]
                dilated = pipeline.dilated_misses(dilation, role, [config])[
                    config
                ]
                estimated = pipeline.estimated_misses(
                    dilation, role, [config]
                )[config]
                per_proc[processor.name] = (
                    actual / norm,
                    dilated / norm,
                    estimated / norm,
                )
            data[label][bench] = per_proc
    return ThreeWayResult(
        data=data, processors=tuple(p.name for p in TARGET_PROCESSORS)
    )


def run_figure7(
    benchmark: str = "085.gcc",
    settings: RunnerSettings = RunnerSettings(),
    configs: PaperCacheConfigs = PAPER_CONFIGS,
) -> ThreeWayResult:
    """The single-benchmark bar chart (Figure 7) as a table."""
    return _three_way((benchmark,), settings, configs)


def run_table4(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    settings: RunnerSettings = RunnerSettings(),
    configs: PaperCacheConfigs = PAPER_CONFIGS,
) -> ThreeWayResult:
    """The full suite comparison (Table 4)."""
    return _three_way(benchmarks, settings, configs)
