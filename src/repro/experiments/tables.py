"""Plain-text rendering of experiment tables and figure series.

The paper's tables normalize misses to the 1111 reference processor; the
renderers here reproduce that presentation so bench output can be read
side by side with the paper.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Fixed-width table with a title line."""
    formatted: list[list[str]] = [[_fmt(h, float_format) for h in headers]]
    for row in rows:
        formatted.append([_fmt(cell, float_format) for cell in row])
    widths = [
        max(len(line[col]) for line in formatted)
        for col in range(len(headers))
    ]
    out = [title]
    for index, line in enumerate(formatted):
        out.append(
            "  ".join(cell.rjust(widths[col]) for col, cell in enumerate(line))
        )
        if index == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    float_format: str = "{:.4g}",
) -> str:
    """A figure rendered as columns: x then one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x, *(values[index] for values in series.values())])
    return render_table(title, headers, rows, float_format)


def _fmt(value: object, float_format: str) -> str:
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)
