"""Assembler: encode scheduled blocks, producing per-block byte sizes.

For each VLIW instruction the assembler greedily selects the smallest
covering template (Section 3.3).  Stall cycles between instructions are
absorbed by the previous instruction's multi-no-op field; runs of empty
cycles longer than the field encodes become explicit no-op instructions.

The output — a relocatable object per procedure with per-block sizes — is
what the linker lays out and what the dilation measurement compares
across processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.iformat.format_synth import InstructionFormat, synthesize_format
from repro.isa.operations import OpClass
from repro.vliwcomp.compile import CompiledBlock, CompiledProgram


@dataclass(frozen=True)
class AssembledBlock:
    """Encoded size of one basic block."""

    block_id: int
    size_bytes: int
    instructions: int
    explicit_noops: int


@dataclass
class AssembledProgram:
    """All procedures of a program, assembled for one processor."""

    iformat: InstructionFormat
    # (procedure name, block id) -> AssembledBlock, in layout order.
    blocks: dict[tuple[str, int], AssembledBlock] = field(default_factory=dict)

    @property
    def text_bytes(self) -> int:
        """Total encoded text size (pre-linking, no alignment padding)."""
        return sum(b.size_bytes for b in self.blocks.values())


def assemble(
    compiled: CompiledProgram, iformat: InstructionFormat | None = None
) -> AssembledProgram:
    """Assemble every block of a compiled program.

    ``iformat`` defaults to the format co-synthesized for the compiled
    program's processor.
    """
    if iformat is None:
        iformat = synthesize_format(compiled.mdes)
    assembled = AssembledProgram(iformat=iformat)
    for (proc_name, block_id), cblock in compiled.blocks.items():
        assembled.blocks[(proc_name, block_id)] = _assemble_block(
            cblock, iformat
        )
    return assembled


def _assemble_block(
    cblock: CompiledBlock, iformat: InstructionFormat
) -> AssembledBlock:
    schedule = cblock.schedule
    size = 0
    noops = 0
    # Empty (stall) cycles are distributed across the block; model them as
    # evenly interleaved so each instruction's multi-no-op field absorbs
    # its share and only long runs need explicit no-ops.
    n_instr = schedule.num_instructions
    stalls = schedule.stall_cycles
    per_gap = stalls // n_instr if n_instr else 0
    remainder = stalls - per_gap * n_instr if n_instr else 0
    for ordinal, instr in enumerate(schedule.instructions):
        counts: dict[OpClass, int] = {}
        for op_index in instr:
            cls = cblock.operations[op_index].opclass
            counts[cls] = counts.get(cls, 0) + 1
        template = iformat.select_template(counts)
        size += iformat.template_width_bytes(template)
        gap = per_gap + (1 if ordinal < remainder else 0)
        overflow = max(0, gap - iformat.max_noop_run)
        if overflow:
            noops += overflow
            size += overflow * iformat.noop_instruction_bytes()
    if size == 0:
        # An empty block (no operations) still occupies one no-op so that
        # it has a distinct address.
        size = iformat.noop_instruction_bytes()
    return AssembledBlock(
        block_id=cblock.block_id,
        size_bytes=size,
        instructions=n_instr,
        explicit_noops=noops,
    )
