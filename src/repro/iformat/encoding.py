"""Bit-level instruction encoding and decoding.

The assembler (:mod:`repro.iformat.assembler`) sizes blocks; this module
produces the actual bits, making the "binary representation specified by
the instruction format" (Section 3.3) concrete:

* header — template selector + multi-no-op run length;
* dispersal field — routing bits, one group per machine issue slot
  (encoded as the slot-occupancy mask, zero-padded);
* one payload group per template slot — opcode, destination register,
  two source registers, optional predicate specifier, speculation tag.

Encoding and decoding round-trip exactly; ``encode_block`` mirrors the
assembler's template selection and no-op emission, so the byte length of
an encoded block equals the assembler's size accounting (asserted in the
test suite).

Register operands must be *physical* (post-allocation) names; the
convenience wrapper maps oversized virtual registers with a modulo
stand-in allocation and records that in the decode result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.iformat.format_synth import (
    NOOP_FIELD_BITS,
    InstructionFormat,
    Template,
)
from repro.isa.operations import OP_CLASSES, OpClass, Operation
from repro.machine.mdes import MachineDescription

#: Opcode numbers (7-bit space; 0 is reserved for NOP/empty slot).
OPCODES: dict[str, int] = {"NOP": 0, "ADD": 1, "FADD": 2, "LD": 3, "ST": 4,
                           "BR": 5, "MEM": 6}
_OPCODE_NAMES = {number: name for name, number in OPCODES.items()}

#: Bits of one opcode field (matches MachineDescription's accounting).
OPCODE_BITS = 7


@dataclass(frozen=True)
class DecodedSlot:
    """One decoded operation slot."""

    opclass: OpClass
    opcode: str
    dest: int
    src1: int
    src2: int
    predicate: int | None
    speculative: bool

    @property
    def is_nop(self) -> bool:
        return self.opcode == "NOP"


@dataclass(frozen=True)
class DecodedInstruction:
    """One decoded VLIW instruction."""

    template: Template
    noop_run: int
    slots: tuple[DecodedSlot, ...]

    def occupied_slots(self) -> list[DecodedSlot]:
        """Slots holding real operations (non-NOP)."""
        return [slot for slot in self.slots if not slot.is_nop]


class InstructionCodec:
    """Encode/decode instructions of one synthesized format."""

    def __init__(self, mdes: MachineDescription, iformat: InstructionFormat):
        self.mdes = mdes
        self.iformat = iformat
        self._template_bits = max(
            1, (len(iformat.templates) - 1).bit_length()
        )

    # ------------------------------------------------------------------
    # Field geometry.
    # ------------------------------------------------------------------

    def _slot_field_bits(self, opclass: OpClass) -> list[tuple[str, int]]:
        """(field name, width) pairs of one slot, in bit order."""
        reg = self.mdes.register_specifier_bits(opclass)
        fields = [
            ("opcode", OPCODE_BITS),
            ("dest", reg),
            ("src1", reg),
            ("src2", reg),
        ]
        if self.mdes.processor.has_predication:
            pred_bits = max(
                1, (self.mdes.processor.pred_registers - 1).bit_length()
            )
            fields.append(("predicate", pred_bits))
        if self.mdes.processor.has_speculation:
            fields.append(("speculative", 1))
        return fields

    def _reg_mask(self, opclass: OpClass) -> int:
        return (1 << self.mdes.register_specifier_bits(opclass)) - 1

    # ------------------------------------------------------------------
    # Encoding.
    # ------------------------------------------------------------------

    def encode(
        self, operations: list[Operation], noop_run: int = 0
    ) -> bytes:
        """Encode one instruction (concurrently issued operations)."""
        if not 0 <= noop_run <= self.iformat.max_noop_run:
            raise EncodingError(
                f"noop run {noop_run} outside the field's "
                f"0..{self.iformat.max_noop_run}"
            )
        counts: dict[OpClass, int] = {}
        for op in operations:
            counts[op.opclass] = counts.get(op.opclass, 0) + 1
        template = self.iformat.select_template(counts)

        bits = 0
        width = 0

        def put(value: int, nbits: int) -> None:
            nonlocal bits, width
            bits |= (value & ((1 << nbits) - 1)) << width
            width += nbits

        template_index = self.iformat.templates.index(template)
        put(template_index, self._template_bits)
        put(noop_run, NOOP_FIELD_BITS)
        # Remaining header bits (if the synthesized header reserves more
        # than selector+noop) are zero padding.
        spare = self.iformat.header_bits - self._template_bits - NOOP_FIELD_BITS
        if spare > 0:
            put(0, spare)
        # Dispersal: occupancy mask over machine issue slots, padded.
        put(
            (1 << len(operations)) - 1,
            self.iformat.dispersal_bits,
        )
        # Payload: fill each class's slots in order.
        pending: dict[OpClass, list[Operation]] = {}
        for op in operations:
            pending.setdefault(op.opclass, []).append(op)
        for slot_index, opclass in enumerate(OP_CLASSES):
            for _ in range(template.slots[slot_index]):
                ops_left = pending.get(opclass, [])
                op = ops_left.pop(0) if ops_left else None
                self._put_slot(put, opclass, op)
        for opclass, leftover in pending.items():
            if leftover:
                raise EncodingError(  # pragma: no cover - covers() guards
                    f"template {template} cannot hold all "
                    f"{opclass.value} operations"
                )
        n_bytes = self.iformat.template_width_bytes(template)
        return bits.to_bytes(n_bytes, "little")

    def _put_slot(self, put, opclass: OpClass, op: Operation | None) -> None:
        mask = self._reg_mask(opclass)
        if op is None:
            values = {"opcode": OPCODES["NOP"], "dest": 0, "src1": 0,
                      "src2": 0, "predicate": 0, "speculative": 0}
        else:
            srcs = list(op.srcs) + [0, 0]
            values = {
                "opcode": OPCODES[op.mnemonic()],
                "dest": (op.dests[0] if op.dests else 0) & mask,
                "src1": srcs[0] & mask,
                "src2": srcs[1] & mask,
                "predicate": 0,
                "speculative": int(op.speculative),
            }
        for name, nbits in self._slot_field_bits(opclass):
            put(values[name], nbits)

    # ------------------------------------------------------------------
    # Decoding.
    # ------------------------------------------------------------------

    def decode(self, data: bytes) -> DecodedInstruction:
        """Decode one instruction previously produced by :meth:`encode`."""
        bits = int.from_bytes(data, "little")
        cursor = 0

        def take(nbits: int) -> int:
            nonlocal cursor
            value = (bits >> cursor) & ((1 << nbits) - 1)
            cursor += nbits
            return value

        template_index = take(self._template_bits)
        if template_index >= len(self.iformat.templates):
            raise EncodingError(
                f"template selector {template_index} out of range"
            )
        template = self.iformat.templates[template_index]
        expected = self.iformat.template_width_bytes(template)
        if len(data) < expected:
            raise EncodingError(
                f"instruction truncated: {len(data)} bytes, template "
                f"{template} needs {expected}"
            )
        noop_run = take(NOOP_FIELD_BITS)
        spare = self.iformat.header_bits - self._template_bits - NOOP_FIELD_BITS
        if spare > 0:
            take(spare)
        take(self.iformat.dispersal_bits)
        slots: list[DecodedSlot] = []
        has_pred = self.mdes.processor.has_predication
        has_spec = self.mdes.processor.has_speculation
        for slot_index, opclass in enumerate(OP_CLASSES):
            for _ in range(template.slots[slot_index]):
                fields = {
                    name: take(nbits)
                    for name, nbits in self._slot_field_bits(opclass)
                }
                opcode = _OPCODE_NAMES.get(fields["opcode"])
                if opcode is None:
                    raise EncodingError(
                        f"unknown opcode {fields['opcode']} in slot"
                    )
                slots.append(
                    DecodedSlot(
                        opclass=opclass,
                        opcode=opcode,
                        dest=fields["dest"],
                        src1=fields["src1"],
                        src2=fields["src2"],
                        predicate=fields.get("predicate") if has_pred else None,
                        speculative=bool(fields.get("speculative", 0))
                        if has_spec
                        else False,
                    )
                )
        return DecodedInstruction(
            template=template, noop_run=noop_run, slots=tuple(slots)
        )

    # ------------------------------------------------------------------
    # Block-level convenience.
    # ------------------------------------------------------------------

    def disassemble(self, instruction: DecodedInstruction) -> str:
        """One-line textual form, e.g. ``[I1/M1] ADD r3, r1, r2 | LD r4, r9``."""
        parts = []
        for slot in instruction.occupied_slots():
            parts.append(
                f"{slot.opcode} r{slot.dest}, r{slot.src1}, r{slot.src2}"
                + (" !s" if slot.speculative else "")
            )
        body = " | ".join(parts) if parts else "NOP"
        suffix = f" ;; +{instruction.noop_run} noops" if instruction.noop_run else ""
        return f"[{instruction.template}] {body}{suffix}"
