"""Multi-template instruction format synthesis.

A template is a set of class-specific operation slots; an instruction is
encoded by the cheapest template whose slots cover its operations.  The
synthesized library contains:

* one single-op template per function-unit class,
* all two-slot class combinations the machine supports,
* a halving chain from the full machine width down (full, half, quarter,
  ...), mirroring the power-of-two template families of real multi-template
  formats.

Every instruction additionally carries a header (template selector plus
multi-no-op bits, Section 3.3) and a *dispersal field* of one bit per
issue slot that routes operations to units — the EPIC-style overhead that
makes wide formats intrinsically less dense and is, per Section 4.1, "the
dominant factor in the code size increase".
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.errors import EncodingError
from repro.isa.operations import OP_CLASSES, OpClass
from repro.machine.mdes import MachineDescription

#: Multi-no-op field width: up to 2**value - 1 empty cycles encoded free.
NOOP_FIELD_BITS = 2

#: Dispersal (routing) bits per machine issue slot, on every instruction.
DISPERSAL_BITS_PER_SLOT = 2.5

#: Machines wider than this lose the dense two-slot templates: template
#: libraries are kept small (the paper's formats have a fixed template
#: budget), and on wide machines that budget goes to the halving chain,
#: leaving short instructions to pay for wide templates — the format
#: inefficiency Section 4.1 identifies as the dominant dilation source.
MAX_WIDTH_WITH_PAIR_TEMPLATES = 6

#: Instructions are padded to a whole number of bytes.
INSTRUCTION_QUANTUM_BITS = 8


@dataclass(frozen=True)
class Template:
    """One instruction template: a count of slots per operation class."""

    slots: tuple[int, int, int, int]  # indexed like OP_CLASSES

    def slot_count(self, opclass: OpClass) -> int:
        """Slots available for operations of ``opclass``."""
        return self.slots[OP_CLASSES.index(opclass)]

    @property
    def total_slots(self) -> int:
        return sum(self.slots)

    def covers(self, op_counts: dict[OpClass, int]) -> bool:
        """True if an instruction with these op counts fits the template."""
        return all(
            op_counts.get(cls, 0) <= self.slots[i]
            for i, cls in enumerate(OP_CLASSES)
        )

    def __str__(self) -> str:
        return "/".join(
            f"{cls.short}{n}" for cls, n in zip(OP_CLASSES, self.slots) if n
        )


@dataclass(frozen=True)
class InstructionFormat:
    """A synthesized format: the template library plus width bookkeeping."""

    templates: tuple[Template, ...]
    slot_bits: dict[OpClass, int]
    header_bits: int
    dispersal_bits: int

    def template_width_bits(self, template: Template) -> int:
        """Total encoded width of an instruction using ``template``."""
        payload = sum(
            template.slots[i] * self.slot_bits[cls]
            for i, cls in enumerate(OP_CLASSES)
        )
        return self.header_bits + self.dispersal_bits + payload

    def template_width_bytes(self, template: Template) -> int:
        """Encoded width rounded up to the instruction quantum, in bytes."""
        bits = self.template_width_bits(template)
        quantum = INSTRUCTION_QUANTUM_BITS
        return (bits + quantum - 1) // quantum * (quantum // 8)

    def select_template(self, op_counts: dict[OpClass, int]) -> Template:
        """Greedy selection: the covering template with the fewest bits.

        Ties break toward more total slots (more multi-no-op headroom),
        then deterministic template order — the paper's two greedy
        criteria (Section 3.3).
        """
        best: Template | None = None
        best_key: tuple[int, int, int] | None = None
        for index, template in enumerate(self.templates):
            if not template.covers(op_counts):
                continue
            key = (
                self.template_width_bits(template),
                -template.total_slots,
                index,
            )
            if best_key is None or key < best_key:
                best, best_key = template, key
        if best is None:
            raise EncodingError(
                f"no template covers operation counts "
                f"{ {c.value: n for c, n in op_counts.items()} }"
            )
        return best

    @property
    def max_noop_run(self) -> int:
        """Empty cycles one instruction's multi-no-op field can absorb."""
        return 2**NOOP_FIELD_BITS - 1

    def noop_instruction_bytes(self) -> int:
        """Size of an explicit no-op (smallest template, empty slots)."""
        smallest = min(self.templates, key=self.template_width_bits)
        return self.template_width_bytes(smallest)


def synthesize_format(mdes: MachineDescription) -> InstructionFormat:
    """Co-synthesize the instruction format for ``mdes.processor``."""
    processor = mdes.processor
    units = tuple(processor.units[cls] for cls in OP_CLASSES)

    library: set[tuple[int, int, int, int]] = set()
    # Single-op templates.
    for i in range(len(OP_CLASSES)):
        single = [0, 0, 0, 0]
        single[i] = 1
        library.add(tuple(single))
    # Two-slot combinations (pairs of classes, and doubled classes where
    # the machine has two or more units) — narrow machines only; see
    # MAX_WIDTH_WITH_PAIR_TEMPLATES.
    if processor.issue_width <= MAX_WIDTH_WITH_PAIR_TEMPLATES:
        for i, j in itertools.combinations_with_replacement(
            range(len(OP_CLASSES)), 2
        ):
            pair = [0, 0, 0, 0]
            pair[i] += 1
            pair[j] += 1
            if all(pair[k] <= units[k] for k in range(4)):
                library.add(tuple(pair))
    # Halving chain: full width, then ceil-half per class, down to all-ones.
    shape = units
    while True:
        library.add(shape)
        if all(s <= 1 for s in shape):
            break
        shape = tuple(max(1, (s + 1) // 2) for s in shape)

    templates = tuple(
        Template(slots)
        for slots in sorted(library, key=lambda s: (sum(s), s))
    )
    slot_bits = {
        cls: mdes.operation_encoding_bits(cls) for cls in OP_CLASSES
    }
    header_bits = (
        max(1, math.ceil(math.log2(len(templates)))) + NOOP_FIELD_BITS
    )
    dispersal_bits = math.ceil(
        DISPERSAL_BITS_PER_SLOT * processor.issue_width
    )
    return InstructionFormat(
        templates=templates,
        slot_bits=slot_bits,
        header_bits=header_bits,
        dispersal_bits=dispersal_bits,
    )
