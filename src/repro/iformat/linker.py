"""Linker: code layout, packet alignment and address assignment.

The linker combines the assembled procedures into one text image
(Section 3.3): procedures are laid out in program order, blocks in layout
order within each procedure.  Blocks that are branch targets — procedure
entries and destinations of non-fall-through edges — are aligned to fetch
*packet* boundaries "to avoid instruction cache fetch stalls for branch
targets at the expense of slightly larger code size".  The packet is the
bits fetched per cycle: ``issue_width`` words.

The resulting :class:`Binary` is the address map the trace generator and
the dilation measurement consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import WORD_BYTES
from repro.errors import TraceError
from repro.iformat.assembler import AssembledProgram
from repro.isa.program import Program

#: Base address of the text segment; word aligned and far below the data
#: segment base so instruction and data addresses never collide.
TEXT_BASE = 0x0001_0000


@dataclass(frozen=True)
class BlockImage:
    """Placement of one block in the linked text image."""

    proc_name: str
    block_id: int
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


@dataclass
class Binary:
    """A linked executable's text map for one processor."""

    program_name: str
    processor_name: str
    base: int
    images: list[BlockImage] = field(default_factory=list)
    _index: dict[tuple[str, int], int] = field(default_factory=dict)

    def add(self, image: BlockImage) -> None:
        """Register a block placement (duplicates rejected)."""
        key = (image.proc_name, image.block_id)
        if key in self._index:
            raise TraceError(f"duplicate block image {key}")
        self._index[key] = len(self.images)
        self.images.append(image)

    def block_image(self, proc_name: str, block_id: int) -> BlockImage:
        """The placement record of one block."""
        return self.images[self._index[(proc_name, block_id)]]

    def block_range(self, proc_name: str, block_id: int) -> tuple[int, int]:
        """(start address, size in bytes) of a block."""
        image = self.block_image(proc_name, block_id)
        return image.start, image.size

    @property
    def text_size(self) -> int:
        """Linked text size in bytes, including alignment padding."""
        if not self.images:
            return 0
        return self.images[-1].end - self.base

    @property
    def text_end(self) -> int:
        return self.base + self.text_size


def link(
    program: Program,
    assembled: AssembledProgram,
    packet_bytes: int,
    base: int = TEXT_BASE,
    processor_name: str = "",
    layout: dict[str, list[int]] | None = None,
) -> Binary:
    """Lay out the assembled program and assign final addresses.

    ``packet_bytes`` is the fetch-packet size used for branch-target
    alignment (``issue_width * WORD_BYTES`` for the owning processor).

    ``layout`` optionally overrides the emission order: a mapping from
    procedure name to its block-id order, iterated in procedure emission
    order (see :func:`repro.iformat.layout.layout_program` for the
    profile-guided producer).  It must cover every procedure and every
    block exactly once.
    """
    if packet_bytes < WORD_BYTES or packet_bytes % WORD_BYTES:
        raise TraceError(
            f"packet size must be a positive multiple of {WORD_BYTES}, "
            f"got {packet_bytes}"
        )
    plan = _emission_plan(program, layout)
    binary = Binary(
        program_name=program.name,
        processor_name=processor_name,
        base=base,
    )
    cursor = base
    for proc_name, block_order in plan:
        proc = program.procedure(proc_name)
        targets = _branch_targets(proc, block_order)
        for layout_pos, block_id in enumerate(block_order):
            is_entry = layout_pos == 0
            if is_entry or block_id in targets:
                cursor = _align(cursor, packet_bytes)
            else:
                cursor = _align(cursor, WORD_BYTES)
            size = assembled.blocks[(proc_name, block_id)].size_bytes
            size = _align(size, WORD_BYTES)
            binary.add(
                BlockImage(
                    proc_name=proc_name,
                    block_id=block_id,
                    start=cursor,
                    size=size,
                )
            )
            cursor += size
    return binary


def _emission_plan(
    program: Program, layout: dict[str, list[int]] | None
) -> list[tuple[str, list[int]]]:
    """Resolve and validate the (procedure, block order) emission plan."""
    if layout is None:
        return [
            (proc.name, [blk.block_id for blk in proc.blocks])
            for proc in program.procedures.values()
        ]
    if set(layout) != set(program.procedures):
        raise TraceError(
            "layout must cover exactly the program's procedures; "
            f"missing {sorted(set(program.procedures) - set(layout))}, "
            f"extra {sorted(set(layout) - set(program.procedures))}"
        )
    plan = []
    for proc_name, block_order in layout.items():
        expected = sorted(
            blk.block_id for blk in program.procedure(proc_name).blocks
        )
        if sorted(block_order) != expected:
            raise TraceError(
                f"layout for {proc_name!r} is not a permutation of its "
                "blocks"
            )
        plan.append((proc_name, list(block_order)))
    return plan


def _branch_targets(proc, block_order: list[int]) -> set[int]:
    """Blocks that are destinations of non-fall-through control flow.

    A fall-through edge goes to the next block in *emission* order;
    anything else (loop back-edges, taken branches) makes the
    destination a branch target needing packet alignment.
    """
    order = {block_id: i for i, block_id in enumerate(block_order)}
    targets: set[int] = set()
    for edge in proc.edges:
        if order[edge.dst] != order[edge.src] + 1:
            targets.add(edge.dst)
    return targets


def _align(value: int, quantum: int) -> int:
    return (value + quantum - 1) // quantum * quantum
