"""Profile-guided code layout (the linker's other job, Section 3.3).

"Branch profile information is used in both phases to place blocks of
instructions or entire functions that frequently execute in sequence
near each other.  The goal is to increase spatial locality and
instruction cache performance."

Two classic transformations, both driven by an edge/call profile derived
from an event trace:

* **intra-procedural chaining** (Pettis–Hansen-style): greedily merge
  blocks along the hottest fall-through edges into chains, then emit
  chains by hotness — hot paths become sequential in memory;
* **inter-procedural ordering**: emit procedures by descending dynamic
  call weight, so hot procedures pack together.

:func:`layout_program` returns a new block order which
:func:`repro.iformat.linker.link` consumes via the ``layout`` argument;
``benchmarks/bench_ablation_layout.py`` measures the icache win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.trace.events import EventTrace


@dataclass(frozen=True)
class Profile:
    """Dynamic weights extracted from an event trace."""

    #: (proc, src_block, dst_block) -> traversal count.
    edges: dict[tuple[str, int, int], int]
    #: proc -> total visits of its blocks.
    proc_weight: dict[str, int]
    #: (proc, block) -> visits.
    block_weight: dict[tuple[str, int], int]


def profile_from_events(events: EventTrace) -> Profile:
    """Count block visits and consecutive same-procedure transitions.

    The visit stream interleaves callees between a caller's blocks, so
    only *adjacent same-procedure* visits are counted as edges — an
    approximation of the true branch profile that is exact for leaf
    procedures and conservative elsewhere.
    """
    edges: dict[tuple[str, int, int], int] = {}
    proc_weight: dict[str, int] = {}
    block_weight: dict[tuple[str, int], int] = {}
    previous: tuple[str, int] | None = None
    for gidx in events.visit_blocks.tolist():
        proc, block = events.blocks[gidx]
        proc_weight[proc] = proc_weight.get(proc, 0) + 1
        block_weight[(proc, block)] = block_weight.get((proc, block), 0) + 1
        if previous is not None and previous[0] == proc:
            key = (proc, previous[1], block)
            edges[key] = edges.get(key, 0) + 1
        previous = (proc, block)
    return Profile(
        edges=edges, proc_weight=proc_weight, block_weight=block_weight
    )


def _chain_blocks(
    block_ids: list[int],
    edges: list[tuple[int, int, int]],  # (weight, src, dst)
    weights: dict[int, int],
) -> list[int]:
    """Greedy chain formation over one procedure's blocks."""
    next_of: dict[int, int] = {}
    prev_of: dict[int, int] = {}
    for weight, src, dst in sorted(edges, reverse=True):
        if src == dst or src in next_of or dst in prev_of:
            continue
        # Joining must not close a cycle: walk dst's chain tail.
        tail = dst
        seen = {dst}
        while tail in next_of:
            tail = next_of[tail]
            if tail in seen:  # pragma: no cover - defensive
                break
            seen.add(tail)
        if tail == src:
            continue
        next_of[src] = dst
        prev_of[dst] = src
    # Chain heads: blocks with no predecessor in a chain.
    heads = [b for b in block_ids if b not in prev_of]
    # Order chains by their hottest member, entry chain first.
    entry = block_ids[0]

    def chain_of(head: int) -> list[int]:
        out = [head]
        while out[-1] in next_of:
            out.append(next_of[out[-1]])
        return out

    chains = [chain_of(head) for head in heads]
    chains.sort(
        key=lambda chain: (
            entry not in chain,  # the entry block's chain leads
            -max(weights.get(b, 0) for b in chain),
            chain[0],
        )
    )
    ordered = [b for chain in chains for b in chain]
    assert sorted(ordered) == sorted(block_ids)
    return ordered


def layout_program(
    program: Program, profile: Profile
) -> dict[str, list[int]]:
    """Block order per procedure, plus the procedure emission order.

    Returns a mapping from procedure name to its new block-id order; the
    dict's own iteration order is the inter-procedural layout (hottest
    procedures first).  Procedures never executed keep program order and
    go last.
    """
    proc_order = sorted(
        program.procedures,
        key=lambda name: (-profile.proc_weight.get(name, 0), name),
    )
    layout: dict[str, list[int]] = {}
    for name in proc_order:
        proc = program.procedures[name]
        block_ids = [blk.block_id for blk in proc.blocks]
        edges = [
            (count, src, dst)
            for (edge_proc, src, dst), count in profile.edges.items()
            if edge_proc == name
        ]
        weights = {
            block: profile.block_weight.get((name, block), 0)
            for block in block_ids
        }
        if edges:
            layout[name] = _chain_blocks(block_ids, edges, weights)
        else:
            layout[name] = block_ids
    return layout
