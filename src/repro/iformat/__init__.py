"""Instruction format synthesis, assembly and linking (Section 3.3).

The paper co-synthesizes a variable-length multi-template instruction
format with each VLIW processor [15]; the assembler greedily picks the
smallest template covering each instruction's operations, and the linker
lays blocks out, aligns branch targets to fetch-packet boundaries and
assigns final addresses.  The per-block byte sizes this chain produces on
each processor are the raw material of the dilation model: text dilation
is the ratio of linked text sizes (Section 4.1).
"""

from repro.iformat.assembler import AssembledBlock, AssembledProgram, assemble
from repro.iformat.encoding import (
    DecodedInstruction,
    DecodedSlot,
    InstructionCodec,
)
from repro.iformat.format_synth import InstructionFormat, Template, synthesize_format
from repro.iformat.layout import Profile, layout_program, profile_from_events
from repro.iformat.linker import Binary, BlockImage, link

__all__ = [
    "Template",
    "InstructionFormat",
    "synthesize_format",
    "AssembledBlock",
    "AssembledProgram",
    "assemble",
    "Binary",
    "BlockImage",
    "link",
    "InstructionCodec",
    "DecodedInstruction",
    "DecodedSlot",
    "Profile",
    "profile_from_events",
    "layout_program",
]
