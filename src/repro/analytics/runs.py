"""The run model: durable ``runs`` / ``run_rows`` tables + RunRecorder.

A *run* is one recorded execution of a sweep / estimate / explore (or
any caller-defined kind).  The ``runs`` row carries identity, state and
a journal-derived summary; ``run_rows`` carries one row per
(design, benchmark, repetition) with the measured metrics and the
journal-derived execution columns (see ``docs/RUN_TABLE_COLUMNS.md``).

:class:`RunRecorder` is strictly **observational**: it reads result
documents after they exist and a window of already-recorded journal
events, and writes the run in one transaction at :meth:`finish`.  It
never sits on the simulation path, so recording cannot perturb results
(the CI analytics smoke asserts bit-identity and bounds the overhead).

Two sinks are supported transparently:

* a local :class:`~repro.service.store.ResultStore` — direct SQL;
* anything exposing ``record_run(run, rows)`` (e.g.
  :class:`~repro.service.worker.RemoteStore`) — the run is shipped to
  the server over ``POST /runs`` and recorded there, so fleet workers
  leave their evidence in the shared database.
"""

from __future__ import annotations

import json
import time
import uuid
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.cache.area import cache_cost
from repro.cache.config import CacheConfig
from repro.errors import ServiceError
from repro.runtime.journal import RunJournal, resolve_journal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.store import ResultStore


def _result_store_type():
    """The ResultStore class, imported lazily.

    :mod:`repro.service` imports the analytics modules (the server
    mounts the run endpoints), so a module-level import here would be
    circular; resolve it at call time instead.
    """
    from repro.service.store import ResultStore

    return ResultStore


__all__ = [
    "RUN_STATES",
    "RunRecorder",
    "delete_run",
    "derive_journal_columns",
    "design_label",
    "gc_runs",
    "get_run",
    "get_run_rows",
    "list_runs",
    "record_run",
    "supports_runs",
]

#: Lifecycle of a recorded run.
RUN_STATES = ("running", "done", "failed")

#: ``runs`` column order used by :func:`record_run`.
_RUN_COLUMNS = (
    "id",
    "kind",
    "label",
    "benchmark",
    "state",
    "spec",
    "error",
    "started",
    "finished",
    "wall_s",
    "rows",
    "journal",
)

#: ``run_rows`` column order used by :func:`record_run`.
_ROW_COLUMNS = (
    "run_id",
    "idx",
    "benchmark",
    "role",
    "design",
    "sets",
    "assoc",
    "line_size",
    "repetition",
    "accesses",
    "misses",
    "miss_rate",
    "cycles",
    "cost",
    "area",
    "estimated",
    "error",
    "source",
    "wall_s",
    "kernel_s",
    "retries",
    "timeouts",
    "fallbacks",
    "cache_hits",
    "cache_misses",
    "bytes_shipped",
    "extra",
)


def design_label(
    sets: int | None, assoc: int | None, line_size: int | None
) -> str:
    """The canonical ``S<sets>A<assoc>L<line>`` design string."""
    return f"S{sets}A{assoc}L{line_size}"


def supports_runs(store: Any) -> bool:
    """True when ``store`` can absorb a recorded run (local or remote)."""
    return isinstance(store, _result_store_type()) or hasattr(
        store, "record_run"
    )


# ----------------------------------------------------------------------
# Journal-derived columns.
# ----------------------------------------------------------------------


def derive_journal_columns(
    events: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """Aggregate one journal window into the run's execution columns.

    Returns run-level counters plus per-line-size pass wall/kernel
    attribution (``by_line_size``), all JSON-representable.  The window
    is whatever slice of events the recorder observed between start and
    finish; for serially executed jobs that is exactly this run's
    events.
    """
    events = list(events)
    by_ls: dict[str, dict[str, Any]] = {}
    passes = wall = kernel = 0.0
    npasses = 0
    retries = timeouts = fallbacks = 0
    ckpt_hits = ckpt_misses = ckpt_stores = 0
    dedup_store = dedup_sim = 0
    bytes_shipped = bytes_mapped = 0
    jobs_done = jobs_failed = 0
    for event in events:
        kind = event.get("event")
        if kind in ("pass", "sampled_pass"):
            npasses += 1
            w = float(event.get("wall_s", 0.0) or 0.0)
            k = float(event.get("kernel_s", 0.0) or 0.0)
            wall += w
            kernel += k
            ls = str(event.get("line_size", "?"))
            slot = by_ls.setdefault(
                ls, {"passes": 0, "wall_s": 0.0, "kernel_s": 0.0}
            )
            slot["passes"] += 1
            slot["wall_s"] += w
            slot["kernel_s"] += k
        elif kind == "retry":
            retries += 1
        elif kind == "timeout":
            timeouts += 1
        elif kind == "fallback":
            fallbacks += 1
        elif kind == "checkpoint":
            action = event.get("action")
            if action == "hit":
                ckpt_hits += 1
            elif action == "miss":
                ckpt_misses += 1
            elif action == "store":
                ckpt_stores += 1
        elif kind == "service_dedup":
            dedup_store += int(event.get("from_store", 0) or 0)
            dedup_sim += int(event.get("simulated", 0) or 0)
        elif kind == "shm_attach":
            bytes_shipped += int(event.get("bytes_shipped", 0) or 0)
            bytes_mapped += int(event.get("bytes_mapped", 0) or 0)
        elif kind == "job":
            jobs_done += 1
        elif kind == "job_failed":
            jobs_failed += 1
    return {
        "events": len(events),
        "passes": npasses,
        "wall_s": round(wall, 6),
        "kernel_s": round(kernel, 6),
        "retries": retries,
        "timeouts": timeouts,
        "fallbacks": fallbacks,
        "checkpoint_hits": ckpt_hits,
        "checkpoint_misses": ckpt_misses,
        "checkpoint_stores": ckpt_stores,
        "dedup_from_store": dedup_store,
        "dedup_simulated": dedup_sim,
        "cache_hits": ckpt_hits + dedup_store,
        "cache_misses": ckpt_misses + dedup_sim,
        "bytes_shipped": bytes_shipped,
        "bytes_mapped": bytes_mapped,
        "jobs_completed": jobs_done,
        "jobs_failed": jobs_failed,
        "by_line_size": by_ls,
    }


# ----------------------------------------------------------------------
# The recorder.
# ----------------------------------------------------------------------


class RunRecorder:
    """Accumulate one run's rows, derive journal columns, write once.

    Use as a context manager around the execution being recorded::

        with RunRecorder(store, kind="sweep", spec=spec) as rec:
            results = sweep_design_space(configs, trace, ...)
            rec.add_sweep_results(results)

    The journal *window* is every event recorded on ``journal`` between
    ``__enter__`` and :meth:`finish`; the recorder never writes journal
    events of its own during execution and touches the store only at
    finish (one transaction), so recording is invisible to the work
    being measured.  An exception inside the block records the run as
    ``failed`` and re-raises.
    """

    def __init__(
        self,
        store: Any,
        kind: str,
        spec: Mapping[str, Any] | None = None,
        journal: RunJournal | None = None,
        run_id: str | None = None,
        label: str | None = None,
        benchmark: str | None = None,
    ):
        if not supports_runs(store):
            raise ServiceError(
                "run recording needs a ResultStore or a store exposing "
                f"record_run(); got {type(store).__name__}"
            )
        self.store = store
        self.kind = str(kind)
        self.spec = dict(spec or {})
        self.journal = resolve_journal(journal)
        self.run_id = run_id or f"run-{uuid.uuid4().hex[:12]}"
        self.label = label
        self.benchmark = benchmark
        self._rows: list[dict[str, Any]] = []
        self._reps: dict[tuple, int] = {}
        self._baseline = len(self.journal.events)
        self._started = time.time()
        self._finished: dict[str, Any] | None = None

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "RunRecorder":
        self._baseline = len(self.journal.events)
        self._started = time.time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._finished is None:
            if exc is not None:
                self.finish(state="failed", error=repr(exc))
            else:
                self.finish()

    # -- row intake -----------------------------------------------------

    def add_row(
        self,
        design: str | None = None,
        *,
        benchmark: str | None = None,
        role: str | None = None,
        sets: int | None = None,
        assoc: int | None = None,
        line_size: int | None = None,
        repetition: int | None = None,
        accesses: int | None = None,
        misses: float | None = None,
        cycles: float | None = None,
        cost: float | None = None,
        area: float | None = None,
        estimated: bool = False,
        error: float | None = None,
        source: str | None = None,
        **extra: Any,
    ) -> dict[str, Any]:
        """Append one (design, benchmark, repetition) row.

        ``repetition`` auto-increments per (design, benchmark, role)
        when not given, so re-measuring the same design in one run
        yields distinct rows instead of collisions.
        """
        if design is None:
            design = design_label(sets, assoc, line_size)
        benchmark = benchmark if benchmark is not None else self.benchmark
        if repetition is None:
            rep_key = (design, benchmark, role)
            repetition = self._reps.get(rep_key, 0)
            self._reps[rep_key] = repetition + 1
        miss_rate = None
        if misses is not None and accesses:
            miss_rate = misses / accesses
        if (
            area is None
            and sets is not None
            and assoc is not None
            and line_size is not None
        ):
            area = cache_cost(CacheConfig(sets, assoc, line_size))
        row = {
            "benchmark": benchmark,
            "role": role,
            "design": design,
            "sets": sets,
            "assoc": assoc,
            "line_size": line_size,
            "repetition": int(repetition),
            "accesses": accesses,
            "misses": misses,
            "miss_rate": miss_rate,
            "cycles": cycles,
            "cost": cost,
            "area": area,
            "estimated": bool(estimated),
            "error": error,
            "source": source,
            "extra": dict(extra) if extra else {},
        }
        self._rows.append(row)
        return row

    def add_config_doc(
        self,
        doc: Mapping[str, Any],
        benchmark: str | None = None,
        role: str | None = None,
    ) -> None:
        """One row from a sweep result document (``_config_doc`` shape)."""
        extra = {
            k: doc[k]
            for k in ("intervals", "sampled_ranges", "total_ranges")
            if k in doc
        }
        self.add_row(
            benchmark=benchmark,
            role=role,
            sets=doc.get("sets"),
            assoc=doc.get("assoc"),
            line_size=doc.get("line_size"),
            accesses=doc.get("accesses"),
            misses=doc.get("misses"),
            estimated=bool(doc.get("estimated", False)),
            error=doc.get("error"),
            source=doc.get("source"),
            **extra,
        )

    def add_sweep_results(
        self,
        results: Mapping[CacheConfig, Any],
        benchmark: str | None = None,
        role: str | None = None,
        source: str = "simulated",
    ) -> None:
        """Rows from an in-process ``sweep_design_space`` result map."""
        for config, miss in results.items():
            self.add_row(
                benchmark=benchmark,
                role=role,
                sets=config.sets,
                assoc=config.assoc,
                line_size=config.line_size,
                accesses=getattr(miss, "accesses", None),
                misses=getattr(miss, "misses", None),
                estimated=bool(getattr(miss, "error", None) is not None),
                error=getattr(miss, "error", None),
                source=source,
            )

    def add_frontier_point(
        self, point: Mapping[str, Any], benchmark: str | None = None
    ) -> None:
        """One row from an explore frontier point document."""
        parts = [str(point.get("processor", "?"))]
        total_area = 0.0
        for role in ("icache", "dcache", "unified"):
            cache = point.get(role)
            if isinstance(cache, Mapping):
                parts.append(
                    role[0].upper()
                    + design_label(
                        cache.get("sets"),
                        cache.get("assoc"),
                        cache.get("line_size"),
                    )
                )
                try:
                    total_area += cache_cost(
                        CacheConfig(
                            int(cache["sets"]),
                            int(cache["assoc"]),
                            int(cache["line_size"]),
                        )
                    )
                except Exception:  # noqa: BLE001 - area stays best-effort
                    pass
        self.add_row(
            design="|".join(parts),
            benchmark=benchmark,
            role="system",
            cycles=point.get("cycles"),
            cost=point.get("cost"),
            area=round(total_area, 6) if total_area else None,
            source="frontier",
        )

    # -- finish ---------------------------------------------------------

    def finish(
        self, state: str = "done", error: str | None = None
    ) -> dict[str, Any]:
        """Derive the journal columns and write the run (idempotent)."""
        if self._finished is not None:
            return self._finished
        if state not in RUN_STATES:
            raise ServiceError(
                f"unknown run state {state!r}; expected one of {RUN_STATES}"
            )
        finished = time.time()
        window = list(self.journal.events[self._baseline:])
        derived = derive_journal_columns(window)
        by_ls = derived.pop("by_line_size")
        # Per-row attribution: a single-pass simulation serves every
        # config sharing its line size, so the pass wall/kernel time is
        # split evenly across that line size's rows (row sums then
        # reconstruct the totals).  Run-level counters are replicated
        # on every row (documented in RUN_TABLE_COLUMNS.md).
        ls_rows: dict[str, int] = {}
        for row in self._rows:
            ls = str(row.get("line_size"))
            ls_rows[ls] = ls_rows.get(ls, 0) + 1
        for row in self._rows:
            ls = str(row.get("line_size"))
            slot = by_ls.get(ls)
            share = ls_rows.get(ls, 1)
            row["wall_s"] = (
                round(slot["wall_s"] / share, 9) if slot else None
            )
            row["kernel_s"] = (
                round(slot["kernel_s"] / share, 9) if slot else None
            )
            row["retries"] = derived["retries"]
            row["timeouts"] = derived["timeouts"]
            row["fallbacks"] = derived["fallbacks"]
            row["cache_hits"] = derived["cache_hits"]
            row["cache_misses"] = derived["cache_misses"]
            row["bytes_shipped"] = derived["bytes_shipped"]
        run = {
            "id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "benchmark": self.benchmark,
            "state": state,
            "spec": self.spec,
            "error": error,
            "started": round(self._started, 6),
            "finished": round(finished, 6),
            "wall_s": round(finished - self._started, 6),
            "rows": len(self._rows),
            "journal": {**derived, "by_line_size": by_ls},
        }
        if isinstance(self.store, _result_store_type()):
            record_run(self.store, run, self._rows)
        else:
            self.store.record_run(run, self._rows)
        self.journal.record(
            "analytics_run",
            id=self.run_id,
            kind=self.kind,
            state=state,
            rows=len(self._rows),
            wall_s=run["wall_s"],
        )
        self._finished = run
        return run


# ----------------------------------------------------------------------
# Table access (local ResultStore).
# ----------------------------------------------------------------------


def record_run(
    store: ResultStore,
    run: Mapping[str, Any],
    rows: Iterable[Mapping[str, Any]] = (),
) -> dict[str, Any]:
    """Write one run + its rows in a single transaction (idempotent:
    re-recording the same run id replaces the previous attempt)."""
    run_id = str(run.get("id") or "")
    if not run_id:
        raise ServiceError("run document needs an 'id'")
    kind = str(run.get("kind") or "")
    if not kind:
        raise ServiceError("run document needs a 'kind'")
    state = str(run.get("state") or "done")
    if state not in RUN_STATES:
        raise ServiceError(
            f"unknown run state {state!r}; expected one of {RUN_STATES}"
        )
    rows = [dict(r) for r in rows]
    run_values = (
        run_id,
        kind,
        run.get("label"),
        run.get("benchmark"),
        state,
        json.dumps(run.get("spec") or {}),
        run.get("error"),
        float(run.get("started") or time.time()),
        run.get("finished"),
        run.get("wall_s"),
        len(rows),
        json.dumps(run.get("journal") or {}),
    )
    row_values = []
    for idx, row in enumerate(rows):
        row_values.append(
            (
                run_id,
                idx,
                row.get("benchmark"),
                row.get("role"),
                str(row.get("design") or "?"),
                row.get("sets"),
                row.get("assoc"),
                row.get("line_size"),
                int(row.get("repetition") or 0),
                row.get("accesses"),
                row.get("misses"),
                row.get("miss_rate"),
                row.get("cycles"),
                row.get("cost"),
                row.get("area"),
                1 if row.get("estimated") else 0,
                row.get("error"),
                row.get("source"),
                row.get("wall_s"),
                row.get("kernel_s"),
                row.get("retries"),
                row.get("timeouts"),
                row.get("fallbacks"),
                row.get("cache_hits"),
                row.get("cache_misses"),
                row.get("bytes_shipped"),
                json.dumps(row.get("extra") or {}),
            )
        )
    run_sql = (
        f"INSERT OR REPLACE INTO runs ({', '.join(_RUN_COLUMNS)}) VALUES"
        f" ({', '.join('?' * len(_RUN_COLUMNS))})"
    )
    row_sql = (
        f"INSERT INTO run_rows ({', '.join(_ROW_COLUMNS)}) VALUES"
        f" ({', '.join('?' * len(_ROW_COLUMNS))})"
    )
    with store.transaction() as conn:
        conn.execute("DELETE FROM run_rows WHERE run_id = ?", (run_id,))
        conn.execute(run_sql, run_values)
        if row_values:
            conn.executemany(row_sql, row_values)
    return {"id": run_id, "rows": len(rows)}


def _run_doc(row: Any) -> dict[str, Any]:
    doc = dict(row)
    for field in ("spec", "journal"):
        try:
            doc[field] = json.loads(doc.get(field) or "{}")
        except (TypeError, ValueError):
            doc[field] = {}
    return doc


def _row_doc(row: Any) -> dict[str, Any]:
    doc = dict(row)
    doc["estimated"] = bool(doc.get("estimated"))
    try:
        doc["extra"] = json.loads(doc.get("extra") or "{}")
    except (TypeError, ValueError):
        doc["extra"] = {}
    return doc


def list_runs(
    store: ResultStore,
    kind: str | None = None,
    state: str | None = None,
    limit: int = 50,
) -> list[dict[str, Any]]:
    """Recent runs, newest first (spec/journal decoded)."""
    sql = "SELECT * FROM runs"
    clauses, args = [], []
    if kind is not None:
        clauses.append("kind = ?")
        args.append(kind)
    if state is not None:
        clauses.append("state = ?")
        args.append(state)
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY started DESC, id LIMIT ?"
    args.append(int(limit))
    rows = store.connection().execute(sql, args).fetchall()
    return [_run_doc(r) for r in rows]


def get_run(store: ResultStore, run_id: str) -> dict[str, Any]:
    """One run's document; raises on an unknown id."""
    row = store.connection().execute(
        "SELECT * FROM runs WHERE id = ?", (run_id,)
    ).fetchone()
    if row is None:
        raise ServiceError(f"unknown run id {run_id!r}")
    return _run_doc(row)


def get_run_rows(store: ResultStore, run_id: str) -> list[dict[str, Any]]:
    """A run's rows in recorded order (extra decoded)."""
    rows = store.connection().execute(
        "SELECT * FROM run_rows WHERE run_id = ? ORDER BY idx", (run_id,)
    ).fetchall()
    return [_row_doc(r) for r in rows]


def delete_run(store: ResultStore, run_id: str) -> bool:
    """Remove one run + its rows; True when it existed."""
    with store.transaction() as conn:
        conn.execute("DELETE FROM run_rows WHERE run_id = ?", (run_id,))
        cur = conn.execute("DELETE FROM runs WHERE id = ?", (run_id,))
    return cur.rowcount > 0


def gc_runs(
    store: ResultStore,
    older_than: float | None = None,
    keep: int | None = None,
) -> int:
    """Expire old runs; returns how many were deleted.

    ``keep`` protects the N most recent runs unconditionally.  Among
    the unprotected rest, ``older_than`` (an age in seconds against each
    run's start) dooms only runs older than that; with ``keep`` alone,
    every unprotected run goes.  With neither, nothing is deleted (an
    explicit no-op, not a wipe).
    """
    if older_than is None and keep is None:
        return 0
    cutoff = (
        time.time() - float(older_than) if older_than is not None else None
    )
    rows = store.connection().execute(
        "SELECT id, started FROM runs ORDER BY started DESC, id"
    ).fetchall()
    doomed: list[str] = []
    for index, row in enumerate(rows):
        if keep is not None and index < int(keep):
            continue
        if cutoff is None or float(row["started"]) < cutoff:
            doomed.append(row["id"])
    deleted = 0
    with store.transaction() as tx:
        for run_id in sorted(doomed):
            tx.execute(
                "DELETE FROM run_rows WHERE run_id = ?", (run_id,)
            )
            cur = tx.execute("DELETE FROM runs WHERE id = ?", (run_id,))
            deleted += cur.rowcount
    return deleted
