"""The canonical ``run_table.csv`` export.

One CSV per run, one line per (design, benchmark, repetition) row, with
run-level identity columns repeated on every line (the flat layout a
spreadsheet, pandas, or a plotting script ingests without joins).

:data:`RUN_TABLE_COLUMNS` is the single source of truth for the column
set: the CSV header, the HTTP/CLI exports and the generated
``docs/RUN_TABLE_COLUMNS.md`` all derive from it.  Cell formatting is
round-trip exact: integers print plainly, floats print via ``repr``
(shortest form that parses back to the identical float), absent values
print as empty strings — so ``csv.DictReader`` recovers the stored
values bit-identically (the CI analytics smoke asserts this).
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.analytics.runs import get_run, get_run_rows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.store import ResultStore

__all__ = [
    "RUN_TABLE_COLUMNS",
    "format_cell",
    "run_table_csv",
    "run_table_rows",
]

#: (name, source, units, description) for every run-table column, in
#: CSV order.  ``source`` is where the value originates: ``run`` (the
#: runs table), ``result`` (result documents / the result store) or
#: ``journal`` (derived from RunJournal events).
RUN_TABLE_COLUMNS: tuple[tuple[str, str, str, str], ...] = (
    ("run_id", "run", "-", "Run identity (the job id for service jobs)."),
    ("kind", "run", "-", "Job kind: sweep, estimate or explore."),
    ("state", "run", "-", "Run outcome: done or failed."),
    ("idx", "result", "-", "Row position within the run (0-based)."),
    ("benchmark", "result", "-", "Benchmark name, empty for raw traces."),
    ("role", "result", "-",
     "Trace role (icache/dcache/unified), or 'system' for frontier rows."),
    ("design", "result", "-",
     "Design string: S<sets>A<assoc>L<line> for caches; "
     "processor|I...|D...|U... for systems."),
    ("sets", "result", "count", "Cache sets (empty for system rows)."),
    ("assoc", "result", "ways", "Associativity (empty for system rows)."),
    ("line_size", "result", "bytes",
     "Cache line size (empty for system rows)."),
    ("repetition", "result", "count",
     "0-based repetition index for repeated (design, benchmark) rows."),
    ("accesses", "result", "count", "Trace accesses the row measured."),
    ("misses", "result", "count",
     "Cache misses (exact, or extrapolated when estimated=1)."),
    ("miss_rate", "result", "ratio", "misses / accesses."),
    ("cycles", "result", "cycles",
     "Execution time for system rows (explore frontiers)."),
    ("cost", "result", "cost units",
     "System cost for frontier rows (processor + caches)."),
    ("area", "result", "cost units",
     "Cache area from the CACTI-lite model (sum over caches for "
     "system rows)."),
    ("estimated", "result", "0/1",
     "1 when the row is a sampled/extrapolated estimate."),
    ("error", "result", "count",
     "Extrapolation error bar for estimated rows."),
    ("source", "result", "-",
     "store (served from cache), simulated, estimate, or frontier."),
    ("wall_s", "journal", "seconds",
     "Pass wall time attributed to this row (the line-size group's "
     "pass time split evenly across its rows)."),
    ("kernel_s", "journal", "seconds",
     "Stack-distance kernel time attributed like wall_s."),
    ("retries", "journal", "count",
     "Executor retries in this run's journal window (run-level, "
     "repeated on every row)."),
    ("timeouts", "journal", "count",
     "Executor timeouts in the window (run-level)."),
    ("fallbacks", "journal", "count",
     "Pool fallbacks in the window (run-level)."),
    ("cache_hits", "journal", "count",
     "Checkpoint hits + results served from the store without "
     "simulation (run-level)."),
    ("cache_misses", "journal", "count",
     "Checkpoint misses + configs actually simulated (run-level)."),
    ("bytes_shipped", "journal", "bytes",
     "Bytes shipped to workers over shm handles in the window "
     "(run-level)."),
    ("extra", "result", "JSON",
     "Row-specific extras (sampling plan detail, dilation, ...)."),
)

#: Just the column names, in order.
RUN_TABLE_HEADER = tuple(name for name, _, _, _ in RUN_TABLE_COLUMNS)


def format_cell(value: Any) -> str:
    """Round-trip-exact cell text for one value.

    None → empty; bools → 0/1; ints plain; floats via ``repr`` (so
    ``float(text)`` reconstructs the identical IEEE value); everything
    else (e.g. the ``extra`` dict) as compact JSON.
    """
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def run_table_rows(
    run: Mapping[str, Any], rows: Iterable[Mapping[str, Any]]
) -> list[dict[str, str]]:
    """Formatted (all-string) table rows for one run document."""
    out: list[dict[str, str]] = []
    for row in rows:
        merged = {
            "run_id": run.get("id"),
            "kind": run.get("kind"),
            "state": run.get("state"),
            **{k: row.get(k) for k in RUN_TABLE_HEADER[3:]},
        }
        out.append({k: format_cell(merged[k]) for k in RUN_TABLE_HEADER})
    return out


def run_table_csv(
    store: "ResultStore | None" = None,
    run_id: str | None = None,
    run: Mapping[str, Any] | None = None,
    rows: Iterable[Mapping[str, Any]] | None = None,
) -> str:
    """The run's table as CSV text (header + one line per row).

    Pass either a ``(store, run_id)`` pair or pre-fetched
    ``run``/``rows`` documents.
    """
    if run is None or rows is None:
        if store is None or run_id is None:
            raise ValueError(
                "run_table_csv needs (store, run_id) or (run, rows)"
            )
        run = get_run(store, run_id)
        rows = get_run_rows(store, run_id)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(RUN_TABLE_HEADER), lineterminator="\n"
    )
    writer.writeheader()
    for row in run_table_rows(run, rows):
        writer.writerow(row)
    return buffer.getvalue()
