"""Experiment analytics: durable run tables over the result store.

Every sweep / estimate / explore execution can be recorded as a **run**:
one row in the ``runs`` table (identity, spec, state, wall time, a
journal-derived summary) plus one ``run_rows`` row per
(design, benchmark, repetition) carrying the measured metrics
(misses / cycles / cost / area) *and* journal-derived execution columns
(pass wall time, kernel seconds, retries, timeouts, cache hits, bytes
shipped over shm).  Both tables live in the same sqlite database as the
:class:`~repro.service.store.ResultStore`, so the evidence trail shares
the store's durability, WAL concurrency and backup story.

Layers:

* :mod:`repro.analytics.runs` — the run model: :class:`RunRecorder`
  (observes a journal window + result documents, never perturbs
  execution), ``record_run`` / ``list_runs`` / ``get_run`` /
  ``get_run_rows`` / ``gc_runs``;
* :mod:`repro.analytics.table` — the canonical ``run_table.csv`` export
  (column registry doubles as the ``docs/RUN_TABLE_COLUMNS.md`` source);
* :mod:`repro.analytics.compare` — ``compare_runs``: per-config metric
  deltas and Pareto-frontier diffing between two runs;
* :mod:`repro.analytics.metrics` — a fixed-capacity time-series ring
  buffer the service's reaper thread samples into (``/metrics/history``);
* :mod:`repro.analytics.dashboard` — the zero-dependency single-file
  HTML dashboard behind ``GET /dashboard``.

Everything is standard library + numpy; there is no new dependency.
"""

from repro.analytics.compare import compare_runs
from repro.analytics.metrics import MetricsRing
from repro.analytics.runs import (
    RunRecorder,
    delete_run,
    gc_runs,
    get_run,
    get_run_rows,
    list_runs,
    record_run,
    supports_runs,
)
from repro.analytics.table import (
    RUN_TABLE_COLUMNS,
    format_cell,
    run_table_csv,
    run_table_rows,
)

__all__ = [
    "MetricsRing",
    "RUN_TABLE_COLUMNS",
    "RunRecorder",
    "compare_runs",
    "delete_run",
    "format_cell",
    "gc_runs",
    "get_run",
    "get_run_rows",
    "list_runs",
    "record_run",
    "run_table_csv",
    "run_table_rows",
    "supports_runs",
]
