"""Zero-dependency single-file HTML dashboard (``GET /dashboard``).

One server-rendered page: store/queue status tiles, metrics sparklines
(inline SVG drawn from the reaper's :class:`MetricsRing` samples), the
run list, and two small fetch()-driven panels — per-run detail
(``GET /runs/<id>``) and frontier comparison (``GET /compare?a=&b=``).
No external assets, scripts or fonts: everything a browser needs is in
this one response, so the page works from ``curl`` output, behind
air-gapped CI, and in the artifact viewer.
"""

from __future__ import annotations

import html
import time
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["render_dashboard", "sparkline_svg"]


def sparkline_svg(
    values: Sequence[float],
    width: int = 160,
    height: int = 36,
    stroke: str = "#2563eb",
) -> str:
    """An inline-SVG sparkline polyline for one metric series."""
    n = len(values)
    if n == 0:
        return (
            f'<svg class="spark" width="{width}" height="{height}"'
            f' viewBox="0 0 {width} {height}" role="img"'
            f' aria-label="no samples yet"></svg>'
        )
    lo = min(values)
    hi = max(values)
    span = (hi - lo) or 1.0
    pad = 2.0
    points = []
    for i, v in enumerate(values):
        x = pad + (width - 2 * pad) * (i / max(n - 1, 1))
        y = height - pad - (height - 2 * pad) * ((v - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg class="spark" width="{width}" height="{height}"'
        f' viewBox="0 0 {width} {height}" role="img"'
        f' aria-label="min {lo:g}, max {hi:g}">'
        f'<polyline fill="none" stroke="{stroke}" stroke-width="1.5"'
        f' points="{" ".join(points)}" /></svg>'
    )


def _esc(value: Any) -> str:
    return html.escape("" if value is None else str(value))


def _fmt_age(ts: Any) -> str:
    try:
        age = time.time() - float(ts)
    except (TypeError, ValueError):
        return "?"
    if age < 90:
        return f"{age:.0f}s ago"
    if age < 5400:
        return f"{age / 60:.0f}m ago"
    return f"{age / 3600:.1f}h ago"


def _run_row_html(run: Mapping[str, Any]) -> str:
    journal = run.get("journal") or {}
    hits = journal.get("cache_hits", 0)
    misses = journal.get("cache_misses", 0)
    state = _esc(run.get("state"))
    return (
        "<tr>"
        f'<td><a href="#" class="run-link" data-run="{_esc(run.get("id"))}">'
        f'{_esc(run.get("id"))}</a></td>'
        f"<td>{_esc(run.get('kind'))}</td>"
        f'<td><span class="state state-{state}">{state}</span></td>'
        f"<td>{_esc(run.get('benchmark') or '—')}</td>"
        f"<td class='num'>{_esc(run.get('rows'))}</td>"
        f"<td class='num'>{_esc(round(float(run.get('wall_s') or 0.0), 3))}</td>"
        f"<td class='num'>{hits}/{hits + misses}</td>"
        f"<td>{_esc(_fmt_age(run.get('started')))}</td>"
        "</tr>"
    )


_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro evaluation service — runs</title>
<style>
  :root {{ --ink: #1f2937; --dim: #6b7280; --line: #e5e7eb;
           --accent: #2563eb; --ok: #15803d; --bad: #b91c1c;
           --bg: #f9fafb; }}
  body {{ margin: 0; padding: 1.5rem; color: var(--ink);
         background: var(--bg);
         font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }}
  h1 {{ font-size: 1.15rem; margin: 0 0 .25rem; }}
  h2 {{ font-size: .95rem; margin: 1.5rem 0 .5rem; color: var(--dim);
       text-transform: uppercase; letter-spacing: .04em; }}
  .sub {{ color: var(--dim); margin-bottom: 1rem; }}
  .tiles {{ display: flex; flex-wrap: wrap; gap: .75rem; }}
  .tile {{ background: #fff; border: 1px solid var(--line);
          border-radius: 8px; padding: .6rem .9rem; min-width: 10rem; }}
  .tile b {{ display: block; font-size: 1.25rem; }}
  .tile small {{ color: var(--dim); }}
  table {{ border-collapse: collapse; width: 100%; background: #fff;
          border: 1px solid var(--line); border-radius: 8px; }}
  th, td {{ text-align: left; padding: .4rem .7rem;
           border-bottom: 1px solid var(--line); }}
  th {{ color: var(--dim); font-weight: 600; font-size: .8rem; }}
  td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
  tr:last-child td {{ border-bottom: none; }}
  a {{ color: var(--accent); text-decoration: none; }}
  .state {{ font-size: .8rem; padding: .05rem .45rem; border-radius: 99px;
           border: 1px solid var(--line); }}
  .state-done {{ color: var(--ok); }}
  .state-failed {{ color: var(--bad); }}
  .state-running {{ color: var(--accent); }}
  .spark {{ display: block; }}
  form.compare {{ display: flex; gap: .5rem; align-items: center;
                flex-wrap: wrap; }}
  input[type=text] {{ border: 1px solid var(--line); border-radius: 6px;
                     padding: .35rem .5rem; font: inherit; width: 16rem; }}
  button {{ border: 1px solid var(--accent); color: #fff;
           background: var(--accent); border-radius: 6px;
           padding: .35rem .9rem; font: inherit; cursor: pointer; }}
  pre {{ background: #fff; border: 1px solid var(--line);
        border-radius: 8px; padding: .75rem; overflow-x: auto;
        font-size: .8rem; }}
  #detail:empty, #compare-out:empty {{ display: none; }}
</style>
</head>
<body>
<h1>repro evaluation service</h1>
<div class="sub">db: {db} · generated {generated} ·
  {nsamples} metric samples (every {interval:.1f}s) ·
  <a href="/metrics">/metrics</a> ·
  <a href="/metrics/history">/metrics/history</a> ·
  <a href="/runs">/runs</a></div>

<h2>Store &amp; queue</h2>
<div class="tiles">{tiles}</div>

<h2>Runs ({nruns})</h2>
<table>
<thead><tr><th>run</th><th>kind</th><th>state</th><th>benchmark</th>
<th>rows</th><th>wall s</th><th>cache hits</th><th>started</th></tr></thead>
<tbody>
{run_rows}
</tbody>
</table>

<h2>Run detail</h2>
<div class="sub">Click a run id above — fetched from
  <code>GET /runs/&lt;id&gt;</code>; the CSV lives at
  <code>/runs/&lt;id&gt;/table.csv</code>.</div>
<pre id="detail"></pre>

<h2>Compare two runs</h2>
<form class="compare" id="compare-form">
  <input type="text" id="cmp-a" placeholder="run id A" required>
  <input type="text" id="cmp-b" placeholder="run id B" required>
  <button type="submit">Compare frontiers</button>
</form>
<pre id="compare-out"></pre>

<script>
"use strict";
function show(el, doc) {{ el.textContent = JSON.stringify(doc, null, 2); }}
document.querySelectorAll(".run-link").forEach(function (a) {{
  a.addEventListener("click", function (ev) {{
    ev.preventDefault();
    fetch("/runs/" + encodeURIComponent(a.dataset.run))
      .then(function (r) {{ return r.json(); }})
      .then(function (doc) {{
        show(document.getElementById("detail"), doc);
      }});
  }});
}});
document.getElementById("compare-form").addEventListener(
  "submit",
  function (ev) {{
    ev.preventDefault();
    var a = document.getElementById("cmp-a").value.trim();
    var b = document.getElementById("cmp-b").value.trim();
    fetch("/compare?a=" + encodeURIComponent(a) +
          "&b=" + encodeURIComponent(b))
      .then(function (r) {{ return r.json(); }})
      .then(function (doc) {{
        show(document.getElementById("compare-out"), doc);
      }});
  }}
);
</script>
</body>
</html>
"""


def render_dashboard(
    runs: Iterable[Mapping[str, Any]],
    samples: Sequence[Mapping[str, Any]],
    store_stats: Mapping[str, Any],
    queue_counts: Mapping[str, Any],
    workers: int = 0,
    db_path: str = "",
    interval: float = 10.0,
) -> str:
    """The full dashboard page as one HTML string."""
    runs = list(runs)
    samples = list(samples)

    def series(field: str) -> list[float]:
        return [float(s.get(field, 0) or 0) for s in samples]

    tiles = []
    for label, value, field in (
        ("queued", queue_counts.get("queued", 0), "queued"),
        ("running", queue_counts.get("running", 0), "running"),
        ("done", queue_counts.get("done", 0), "done"),
        ("failed", queue_counts.get("failed", 0), "failed"),
        ("store entries", store_stats.get("entries", 0), "entries"),
        ("db bytes", store_stats.get("db_bytes", 0), "db_bytes"),
        ("workers", workers, "workers"),
    ):
        tiles.append(
            '<div class="tile"><small>'
            + _esc(label)
            + "</small><b>"
            + _esc(value)
            + "</b>"
            + sparkline_svg(series(field))
            + "</div>"
        )
    run_rows = "\n".join(_run_row_html(run) for run in runs) or (
        '<tr><td colspan="8" class="sub">no recorded runs yet — '
        "submit a job or use repro runs</td></tr>"
    )
    return _PAGE.format(
        db=_esc(db_path),
        generated=_esc(
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime())
        ),
        nsamples=len(samples),
        interval=float(interval),
        tiles="".join(tiles),
        nruns=len(runs),
        run_rows=run_rows,
    )
