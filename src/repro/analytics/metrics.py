"""Fixed-capacity time-series ring buffer for service metrics.

The evaluation service's reaper thread already wakes every
``lease / 3`` seconds to renew and reap leases; it now also drops one
compact sample per wakeup into a :class:`MetricsRing` — queue depths,
store size, worker count — giving ``GET /metrics/history`` (and the
dashboard sparklines) a bounded, allocation-free view of the last
``capacity`` reap intervals without any new thread or dependency.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Mapping

__all__ = ["MetricsRing"]

#: Default ring capacity (at the default 10 s reap interval: one hour).
DEFAULT_CAPACITY = 360


class MetricsRing:
    """Thread-safe bounded buffer of metric samples (oldest drop off)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._samples: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.total = 0

    def sample(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Append one sample (stamped with ``ts`` when absent)."""
        entry = dict(doc)
        entry.setdefault("ts", round(time.time(), 3))
        with self._lock:
            self._samples.append(entry)
            self.total += 1
        return entry

    def samples(self) -> list[dict[str, Any]]:
        """The retained samples, oldest first (a copy)."""
        with self._lock:
            return [dict(entry) for entry in self._samples]

    def series(self, field: str, default: float = 0.0) -> list[float]:
        """One field across the retained samples (for sparklines)."""
        with self._lock:
            return [
                float(entry.get(field, default) or 0.0)
                for entry in self._samples
            ]

    def last(self) -> dict[str, Any] | None:
        """The newest sample, or None when empty."""
        with self._lock:
            return dict(self._samples[-1]) if self._samples else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)
