"""Run comparison: per-config metric deltas + Pareto-frontier diffing.

``compare_runs(store, a, b)`` joins two runs' rows on
(design, benchmark, role, repetition) and reports

* row coverage (common / only-in-a / only-in-b),
* per-config deltas for every compared metric (misses, miss_rate,
  cycles, cost) with the maximum absolute delta per metric, and
* a frontier comparison: each run's rows are reduced to a Pareto
  frontier and the two frontiers are diffed point-by-point.

Frontier axes: system rows (explore) already carry (cost, cycles);
cache rows (sweep/estimate) use (cache size in bytes, misses) — the
smallest cache achieving each miss level, the paper's cost/performance
trade-off restricted to capacity.  Identical inputs therefore always
produce identical frontiers, which is how CI asserts that fault
injection (retries, timeouts, pool fallbacks) never perturbs results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.analytics.runs import get_run, get_run_rows
from repro.explore.pareto import ParetoSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.store import ResultStore

__all__ = ["compare_runs", "frontier_of_rows"]

#: Metrics joined rows are compared on (absent values are skipped).
_DELTA_METRICS = ("misses", "miss_rate", "cycles", "cost")


def _row_key(row: Mapping[str, Any]) -> tuple:
    return (
        str(row.get("design") or "?"),
        row.get("benchmark") or "",
        row.get("role") or "",
        int(row.get("repetition") or 0),
    )


def frontier_of_rows(
    rows: Iterable[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """The Pareto frontier of a run's rows as JSON-able points.

    System rows minimize (cost, cycles); cache rows minimize
    (size_bytes, misses).  Rows missing both axes are ignored.
    """
    pareto = ParetoSet()
    axes = None
    for row in rows:
        cost = row.get("cost")
        cycles = row.get("cycles")
        if cost is not None and cycles is not None:
            row_axes = ("cost", "cycles")
            x, y = float(cost), float(cycles)
        elif row.get("misses") is not None and row.get("sets"):
            row_axes = ("size_bytes", "misses")
            x = float(
                int(row["sets"]) * int(row["assoc"]) * int(row["line_size"])
            )
            y = float(row["misses"])
        else:
            continue
        if axes is None:
            axes = row_axes
        if row_axes != axes:
            continue  # mixed row shapes: frontier uses the first shape
        pareto.insert_point(str(row.get("design") or "?"), x, y)
    return [
        {
            "design": point.design,
            "x": point.cost,
            "y": point.time,
            "axes": list(axes or ()),
        }
        for point in pareto.frontier()
    ]


def _frontier_signature(points: list[dict[str, Any]]) -> list[tuple]:
    return [(p["design"], p["x"], p["y"]) for p in points]


def compare_runs(
    store: "ResultStore",
    a_id: str,
    b_id: str,
    max_deltas: int = 200,
) -> dict[str, Any]:
    """Structured comparison document between two recorded runs."""
    run_a = get_run(store, a_id)
    run_b = get_run(store, b_id)
    rows_a = {_row_key(r): r for r in get_run_rows(store, a_id)}
    rows_b = {_row_key(r): r for r in get_run_rows(store, b_id)}
    common = sorted(set(rows_a) & set(rows_b))
    only_a = sorted(set(rows_a) - set(rows_b))
    only_b = sorted(set(rows_b) - set(rows_a))

    deltas: list[dict[str, Any]] = []
    max_abs: dict[str, float] = {}
    identical_rows = not only_a and not only_b
    differing = 0
    for key in common:
        ra, rb = rows_a[key], rows_b[key]
        entry: dict[str, Any] = {
            "design": key[0],
            "benchmark": key[1] or None,
            "role": key[2] or None,
            "repetition": key[3],
        }
        differs = False
        for metric in _DELTA_METRICS:
            va, vb = ra.get(metric), rb.get(metric)
            if va is None and vb is None:
                continue
            entry[f"a_{metric}"] = va
            entry[f"b_{metric}"] = vb
            if va is None or vb is None:
                differs = True
                continue
            delta = float(vb) - float(va)
            entry[f"d_{metric}"] = delta
            if delta != 0.0:
                differs = True
            max_abs[metric] = max(max_abs.get(metric, 0.0), abs(delta))
        if differs:
            identical_rows = False
            differing += 1
            if len(deltas) < max_deltas:
                deltas.append(entry)

    frontier_a = frontier_of_rows(rows_a.values())
    frontier_b = frontier_of_rows(rows_b.values())
    sig_a = _frontier_signature(frontier_a)
    sig_b = _frontier_signature(frontier_b)
    set_a, set_b = set(sig_a), set(sig_b)
    return {
        "a": {
            "id": a_id,
            "kind": run_a.get("kind"),
            "state": run_a.get("state"),
            "rows": len(rows_a),
            "wall_s": run_a.get("wall_s"),
        },
        "b": {
            "id": b_id,
            "kind": run_b.get("kind"),
            "state": run_b.get("state"),
            "rows": len(rows_b),
            "wall_s": run_b.get("wall_s"),
        },
        "rows": {
            "common": len(common),
            "only_a": len(only_a),
            "only_b": len(only_b),
            "identical": identical_rows,
            "max_abs_delta": max_abs,
            "deltas": deltas,
            "truncated_deltas": max(0, differing - len(deltas)),
        },
        "frontier": {
            "identical": sig_a == sig_b,
            "a": frontier_a,
            "b": frontier_b,
            "only_a": [
                {"design": d, "x": x, "y": y}
                for d, x, y in sig_a
                if (d, x, y) not in set_b
            ],
            "only_b": [
                {"design": d, "x": x, "y": y}
                for d, x, y in sig_b
                if (d, x, y) not in set_a
            ],
        },
    }
