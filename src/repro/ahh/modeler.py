"""TraceModeler: derive AHH parameters from range traces (Section 5.2).

The paper's TraceModeler has an ``ItraceModeler`` for the instruction-only
trace and a ``UtraceModeler`` for the unified trace.  The unified modeler
shares granule boundaries between the components — "we divide the unified
trace into fixed-size granules and then separately sort the instruction
and data addresses" — so a granule closes when the *combined* reference
count reaches the unified granule size.

Default granule sizes scale the paper's 10,000 / 200,000 down to match
the shorter synthetic traces (Section 4 scaling note in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.ahh.granules import GranuleAccumulator, granule_statistics
from repro.ahh.params import ComponentParameters, TraceParameters
from repro.cache.config import WORD_BYTES
from repro.errors import ConfigurationError, ModelError
from repro.trace.ranges import KIND_DATA, KIND_INSTR, RangeTrace

#: Default instruction-trace granule, in word references.
DEFAULT_I_GRANULE = 2_000

#: Default unified-trace granule, in word references.
DEFAULT_U_GRANULE = 20_000


class ItraceModeler:
    """Measure (u(1), p1, lav) of an instruction range trace."""

    def __init__(self, granule_size: int = DEFAULT_I_GRANULE):
        self._acc = GranuleAccumulator(granule_size)

    def process_trace(self, trace: RangeTrace) -> None:
        """Feed a trace segment (may be called repeatedly)."""
        instr = trace.instruction_component
        if len(instr):
            self._acc.feed(instr.word_addresses())

    def finalize(self) -> ComponentParameters:
        """Average the accumulated granules into (u(1), p1, lav)."""
        stats = self._acc.finalize()
        return ComponentParameters(
            u1=stats.u1,
            p1=stats.p1,
            lav=stats.lav,
            granule_size=self._acc.granule_size,
            granules=stats.granules,
        )


class UtraceModeler:
    """Measure per-component (u(1), p1, lav) of a unified range trace.

    Granule boundaries are shared: a granule closes when the combined
    instruction + data word-reference count reaches the granule size; the
    instruction and data address sets of that granule are then processed
    separately (Section 4.3).
    """

    def __init__(self, granule_size: int = DEFAULT_U_GRANULE):
        if granule_size < 2:
            raise ConfigurationError(
                f"granule size must be >= 2, got {granule_size}"
            )
        self.granule_size = granule_size
        self._i_words: list[int] = []
        self._d_words: list[int] = []
        self._count = 0
        self._i_stats: list = []
        self._d_stats: list = []

    def process_trace(self, trace: RangeTrace) -> None:
        """Feed a trace segment in event order."""
        starts = trace.starts.tolist()
        sizes = trace.sizes.tolist()
        kinds = trace.kinds.tolist()
        for start, size, kind in zip(starts, sizes, kinds):
            first = start // WORD_BYTES
            last = (start + size - 1) // WORD_BYTES
            words = range(first, last + 1)
            if kind == KIND_INSTR:
                self._i_words.extend(words)
            else:
                self._d_words.extend(words)
            self._count += last - first + 1
            if self._count >= self.granule_size:
                self._close_granule()

    def _close_granule(self) -> None:
        self._i_stats.append(granule_statistics(self._i_words))
        self._d_stats.append(granule_statistics(self._d_words))
        self._i_words.clear()
        self._d_words.clear()
        self._count = 0

    def finalize(self) -> tuple[ComponentParameters, ComponentParameters]:
        """Return (instruction component, data component) parameters."""
        if self._count >= self.granule_size // 2:
            self._close_granule()
        if not self._i_stats:
            raise ModelError(
                "no complete unified granule; trace shorter than half a "
                f"granule ({self.granule_size} references)"
            )
        return (
            _average(self._i_stats, self.granule_size),
            _average(self._d_stats, self.granule_size),
        )


def _average(stats: list, granule_size: int) -> ComponentParameters:
    u1 = float(np.mean([g.unique for g in stats]))
    ratios = [g.isolated / g.unique for g in stats if g.unique > 0]
    p1 = float(np.mean(ratios)) if ratios else 0.0
    lav = float(np.mean([g.mean_run_length for g in stats]))
    return ComponentParameters(
        u1=u1, p1=p1, lav=lav, granule_size=granule_size, granules=len(stats)
    )


def derive_trace_parameters(
    instruction_trace: RangeTrace,
    unified_trace: RangeTrace,
    i_granule: int = DEFAULT_I_GRANULE,
    u_granule: int = DEFAULT_U_GRANULE,
) -> TraceParameters:
    """The ``deriveTraceParms`` entry point: all nine parameters at once."""
    imod = ItraceModeler(i_granule)
    imod.process_trace(instruction_trace)
    umod = UtraceModeler(u_granule)
    umod.process_trace(unified_trace)
    u_instr, u_data = umod.finalize()
    return TraceParameters(
        icache=imod.finalize(), unified_instr=u_instr, unified_data=u_data
    )
