"""Collision computation, direct and numerically stable variants.

Section 5.3 of the paper: "A straightforward computation of Coll(IC(S,A,L))
using Equations (4.8) and (4.6) is not numerically stable when the number
of collisions is small.  If the primary method is not numerically stable,
we use an alternate procedure that sums an adequate initial segment of an
infinite monotonically decreasing series."

The direct form is

    Coll = u - S * sum_{a=0}^{A} a P(a),

a small difference of large numbers when u >> Coll.  Because the occupancy
mean satisfies sum_a a P(a) = u / S, the identity

    Coll = S * sum_{a=A+1}^{oo} a P(a)

holds, and every term beyond the occupancy mean decreases monotonically —
this is the paper's alternate series, summed until the terms are
negligible.
"""

from __future__ import annotations

import math

from repro.errors import ModelError

#: Relative tail-term threshold for truncating the stable series.
_TAIL_RTOL = 1e-12

#: Below this fraction of u, the direct difference is considered at risk of
#: cancellation and the stable series is used instead.
_STABLE_SWITCH = 1e-6


def _occupancy_terms(u: float, sets: int):
    """Yield (a, P(a)) for a = 0, 1, ... until the support is exhausted.

    Uses the multiplicative recurrence of the generalized binomial,
    tracked in *log space*: for large u the head probability
    (1 - 1/S)**u underflows to exactly 0.0, and a linear-space recurrence
    would then zero the entire distribution even though the mass near the
    mean u/S is perfectly representable.  Individual terms whose log is
    below the double-precision floor still exponentiate to 0.0, which is
    correct for every summation use.
    """
    if sets == 1:
        # All u lines land in the single set: a point mass at u itself
        # (kept fractional so the direct and tail-series forms agree for
        # non-integer u).
        yield u, 1.0
        return
    log_p = u * math.log1p(-1.0 / sets)
    log_s1 = math.log(sets - 1)
    a = 0
    while True:
        yield a, math.exp(log_p) if log_p > -745.0 else 0.0
        if u - a <= 0:
            return
        log_p += math.log(u - a) - math.log(a + 1) - log_s1
        a += 1


def collisions_direct(u: float, sets: int, assoc: int) -> float:
    """Eq (4.8) computed literally: u - S * sum_{a<=A} a P(a).

    Clamped at zero: floating-point cancellation can otherwise yield tiny
    negative values.
    """
    _validate(u, sets, assoc)
    acc = 0.0
    for a, p in _occupancy_terms(u, sets):
        if a > assoc:
            break
        acc += a * p
    return max(0.0, u - sets * acc)


def collisions_stable(u: float, sets: int, assoc: int) -> float:
    """The tail series: Coll = S * sum_{a>A} a P(a).

    Exact for integer u (occupancy mean identity); for fractional u it
    agrees with the direct form to the accuracy of the generalized
    binomial truncation.  Terms are summed until they fall below a
    relative threshold of the accumulated sum.
    """
    _validate(u, sets, assoc)
    acc = 0.0
    for a, p in _occupancy_terms(u, sets):
        if a <= assoc:
            continue
        term = a * p
        acc += term
        if acc > 0 and term < _TAIL_RTOL * acc and a > u / sets:
            break
    return sets * acc


def collisions_auto(
    u: float, sets: int, assoc: int, method: str = "auto"
) -> float:
    """Dispatch between the direct and stable collision computations.

    ``method="auto"`` computes the direct difference and falls back to
    the stable series when the result is so small relative to u that
    cancellation dominates (the paper's strategy in
    ``TraceParms::computeMisses``).
    """
    if method == "direct":
        return collisions_direct(u, sets, assoc)
    if method == "stable":
        return collisions_stable(u, sets, assoc)
    if method != "auto":
        raise ModelError(f"unknown collision method {method!r}")
    direct = collisions_direct(u, sets, assoc)
    if u > 0 and direct < _STABLE_SWITCH * u:
        return collisions_stable(u, sets, assoc)
    return direct


def _validate(u: float, sets: int, assoc: int) -> None:
    if u < 0:
        raise ModelError(f"u must be non-negative, got {u}")
    if sets < 1:
        raise ModelError(f"sets must be >= 1, got {sets}")
    if assoc < 0:
        raise ModelError(f"assoc must be >= 0, got {assoc}")
