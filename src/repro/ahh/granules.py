"""Granule processing: measuring u(1), p1 and lav from an address stream.

The AHH model divides a trace into *granules* of a fixed number of
references.  Within each granule the unique word addresses are sorted;
maximal sequences of consecutive addresses are *runs*, and addresses with
no neighbour are *isolated* (Section 4.2).  Three basic parameters are
averaged over granules:

* ``u(1)`` — unique word addresses per granule;
* ``p1``  — fraction of unique addresses that are isolated;
* ``lav`` — average run length over runs (length >= 2).

The paper's TraceModeler (Section 5.2) accumulates addresses into a
``uniqueRefSet`` and processes it at each granule boundary; this module is
that machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, ModelError


@dataclass(frozen=True)
class GranuleStats:
    """Raw statistics of one granule."""

    unique: int
    isolated: int
    runs: int
    run_length_total: int

    @property
    def mean_run_length(self) -> float:
        """Average run length; 1.0 when the granule has no runs."""
        if self.runs == 0:
            return 1.0
        return self.run_length_total / self.runs


def granule_statistics(addresses: Sequence[int] | np.ndarray) -> GranuleStats:
    """Compute run statistics for the word addresses of one granule."""
    arr = np.asarray(addresses, dtype=np.int64)
    if arr.size == 0:
        return GranuleStats(unique=0, isolated=0, runs=0, run_length_total=0)
    unique = np.unique(arr)  # sorted
    if unique.size == 1:
        return GranuleStats(unique=1, isolated=1, runs=0, run_length_total=0)
    # Split the sorted unique addresses into maximal consecutive runs.
    gaps = np.flatnonzero(np.diff(unique) != 1)
    # Segment lengths between gap boundaries.
    boundaries = np.concatenate(([-1], gaps, [unique.size - 1]))
    lengths = np.diff(boundaries)
    isolated = int(np.count_nonzero(lengths == 1))
    run_lengths = lengths[lengths >= 2]
    return GranuleStats(
        unique=int(unique.size),
        isolated=isolated,
        runs=int(run_lengths.size),
        run_length_total=int(run_lengths.sum()),
    )


class GranuleAccumulator:
    """Streaming accumulator of granule statistics.

    Feed word addresses with :meth:`feed`; whenever the number of buffered
    references reaches the granule size, the granule is processed and the
    buffer cleared.  :meth:`finalize` returns the per-granule averages.

    A trailing partial granule is processed only if it holds at least half
    a granule of references — short tails would otherwise bias u(1) low.
    """

    def __init__(self, granule_size: int):
        if granule_size < 2:
            raise ConfigurationError(
                f"granule size must be >= 2, got {granule_size}"
            )
        self.granule_size = granule_size
        self._buffer: list[int] = []
        self._granules: list[GranuleStats] = []
        self.references = 0

    def feed(self, addresses: Iterable[int] | np.ndarray) -> None:
        """Append word addresses, processing full granules as they form."""
        if isinstance(addresses, np.ndarray):
            addresses = addresses.tolist()
        buf = self._buffer
        size = self.granule_size
        for addr in addresses:
            buf.append(addr)
            if len(buf) >= size:
                self._granules.append(granule_statistics(buf))
                self.references += len(buf)
                buf.clear()

    @property
    def complete_granules(self) -> int:
        return len(self._granules)

    def finalize(self) -> "AverageStats":
        """Average the accumulated granules into (u(1), p1, lav).

        Raises :class:`ModelError` if no granule was completed — the
        parameters would be meaningless.
        """
        granules = list(self._granules)
        if len(self._buffer) >= self.granule_size // 2:
            granules.append(granule_statistics(self._buffer))
        if not granules:
            raise ModelError(
                "no complete granule accumulated; trace shorter than half "
                f"a granule ({self.granule_size} references)"
            )
        u1 = float(np.mean([g.unique for g in granules]))
        # p1 is "the average of the ratios of isolated references to unique
        # references over all granules" (Section 4.2).
        ratios = [g.isolated / g.unique for g in granules if g.unique > 0]
        p1 = float(np.mean(ratios)) if ratios else 0.0
        lav = float(np.mean([g.mean_run_length for g in granules]))
        return AverageStats(u1=u1, p1=p1, lav=lav, granules=len(granules))


@dataclass(frozen=True)
class AverageStats:
    """Per-granule averages produced by :class:`GranuleAccumulator`."""

    u1: float
    p1: float
    lav: float
    granules: int
