"""The AHH analytic machinery: u(L), P(L,a), Coll(S,A,L), miss scaling.

Equations follow Section 4.2 of the paper, with one documented correction.
The report's Eq (4.5) as typeset,

    u(L) = u(1) (1 + p1 L - p2) / (1 + p1 - p2),

*increases* with line size L, contradicting both its meaning (unique cache
lines per granule must decrease as lines lengthen) and the original AHH
paper; moreover, substituting Eq (4.4)'s p2 makes p1 cancel entirely.  We
therefore use the physically derived form (``variant="derived"``, default):
each isolated address covers one line, and a run of length l words covers
(l-1)/L + 1 lines of L words at random alignment, giving

    u(L) = u(1) * [ p1 + (1 - p1) * ((lav - 1)/L + 1) / lav ].

This satisfies u(1) = u(1), decreases monotonically in L, and tends to the
cluster count u(1) (p1 + (1-p1)/lav) as L grows.  The literal typeset
formula is available as ``variant="paper-literal"`` for the ablation bench.

All line sizes in this module are in **words** (the AHH model works on
word addresses); callers convert byte line sizes with
``line_size // WORD_BYTES``.
"""

from __future__ import annotations

import numpy as np

from repro.ahh.stable import _occupancy_terms, collisions_auto
from repro.errors import ModelError


def transition_probability(lav: float, p1: float) -> float:
    """Eq (4.4): p2 = (lav - (1 + p1)) / (lav - 1).

    Reported for compatibility with the paper's parameter set; the derived
    u(L) uses (u1, p1, lav) directly.  ``lav == 1`` (no runs) maps to
    p2 = 0 by convention.
    """
    if lav < 1.0:
        raise ModelError(f"average run length must be >= 1, got {lav}")
    if lav == 1.0:
        return 0.0
    return (lav - (1.0 + p1)) / (lav - 1.0)


def unique_lines(
    u1: float,
    p1: float,
    lav: float,
    line_words: float,
    variant: str = "derived",
) -> float:
    """u(L): average unique cache lines per granule for lines of L words.

    ``line_words`` may be fractional — the dilation model evaluates
    u(L/d) for non-power-of-two effective line sizes directly through
    this formula (Section 4.3.2).
    """
    if u1 < 0:
        raise ModelError(f"u(1) must be non-negative, got {u1}")
    if not 0.0 <= p1 <= 1.0:
        raise ModelError(f"p1 must be in [0, 1], got {p1}")
    if lav < 1.0:
        raise ModelError(f"lav must be >= 1, got {lav}")
    if line_words < 1.0:
        raise ModelError(f"line size must be >= 1 word, got {line_words}")

    if variant == "derived":
        if lav == 1.0:
            # No runs: every unique address is isolated, one line each.
            return u1
        run_term = ((lav - 1.0) / line_words + 1.0) / lav
        return u1 * (p1 + (1.0 - p1) * run_term)
    if variant == "paper-literal":
        p2 = transition_probability(lav, p1)
        denom = 1.0 + p1 - p2
        if denom <= 0:
            raise ModelError(
                f"paper-literal u(L) undefined: 1 + p1 - p2 = {denom}"
            )
        return u1 * (1.0 + p1 * line_words - p2) / denom
    raise ModelError(f"unknown u(L) variant {variant!r}")


def unique_lines_array(
    u1: float,
    p1: float,
    lav: float,
    line_words,
    variant: str = "derived",
) -> np.ndarray:
    """u(L) evaluated over an array of line sizes (in words).

    The batched exploration path's counterpart of :func:`unique_lines`:
    the same arithmetic applied elementwise, so each element equals the
    scalar call bit for bit.  Only the default ``"derived"`` variant is
    supported (the paper-literal form exists for the ablation bench
    only, which is scalar).
    """
    if variant != "derived":
        raise ModelError(
            f"unique_lines_array supports only the derived variant, "
            f"got {variant!r}"
        )
    if u1 < 0:
        raise ModelError(f"u(1) must be non-negative, got {u1}")
    if not 0.0 <= p1 <= 1.0:
        raise ModelError(f"p1 must be in [0, 1], got {p1}")
    if lav < 1.0:
        raise ModelError(f"lav must be >= 1, got {lav}")
    words = np.asarray(line_words, dtype=np.float64)
    if (words < 1.0).any():
        raise ModelError("line sizes must be >= 1 word")
    if lav == 1.0:
        return np.full(words.shape, float(u1))
    run_term = ((lav - 1.0) / words + 1.0) / lav
    return u1 * (p1 + (1.0 - p1) * run_term)


def occupancy_pmf(u: float, sets: int, max_a: int) -> list[float]:
    """P(L,a) for a = 0..max_a: Eq (4.6), binomial occupancy of one set.

    P(a) = C(u, a) (1/S)^a (1 - 1/S)^(u-a), generalized to real u by the
    multiplicative recurrence P(a+1) = P(a) * (u - a) / ((a + 1) (S - 1)),
    truncated to zero once a exceeds u (the support of the occupancy).
    The recurrence runs in log space so the head term's underflow for
    large u cannot zero the whole distribution (see
    :func:`repro.ahh.stable._occupancy_terms`).

    For integer u this is exactly Binomial(u, 1/S).  For fractional u the
    positive-term truncation of the generalized binomial over-counts
    slightly (worst near u = 0.5, where the sum reaches ~1.06); the AHH
    model tolerates this because collisions are ratios of like-computed
    quantities (Eq 4.7/4.15).
    """
    if u < 0:
        raise ModelError(f"u must be non-negative, got {u}")
    if sets < 1:
        raise ModelError(f"sets must be >= 1, got {sets}")
    if sets == 1:
        # Degenerate single-set cache: all u lines land in the set.  Model
        # the occupancy as a point mass at floor(u) (clamped to max_a).
        pmf = [0.0] * (max_a + 1)
        pmf[min(int(u), max_a)] = 1.0
        return pmf
    pmf = [0.0] * (max_a + 1)
    for a, p in _occupancy_terms(u, sets):
        if a > max_a:
            break
        pmf[a] = p
    return pmf


def collisions(
    u_lines: float, sets: int, assoc: int, method: str = "auto"
) -> float:
    """Coll(S,A,L) of Eq (4.8) for a trace with u(L) = ``u_lines``.

    ``method`` selects the direct computation, the numerically stable
    tail series (Section 5.3), or automatic selection (default).
    """
    return collisions_auto(u_lines, sets, assoc, method=method)


def scale_misses(
    misses_c1: float, coll_c1: float, coll_c2: float
) -> float:
    """Eq (4.7): m(C2) = Coll(C2) / Coll(C1) * m(C1).

    Used both for cache-to-cache extrapolation and (with dilated
    collision counts, Eq 4.15) for dilated-trace estimation.  A zero
    reference collision count with nonzero target collisions means the
    model cannot scale (division by zero) and raises :class:`ModelError`.
    """
    if coll_c1 < 0 or coll_c2 < 0:
        raise ModelError("collision counts must be non-negative")
    if coll_c1 == 0.0:
        if coll_c2 == 0.0:
            return misses_c1
        raise ModelError(
            "reference configuration has zero modeled collisions; "
            "cannot extrapolate"
        )
    return misses_c1 * (coll_c2 / coll_c1)
