"""The AHH analytic cache model (Agarwal, Horowitz, Hennessy [11]).

The dilation model does not use AHH to *replace* simulation — the paper is
explicit that AHH alone is not accurate enough — but to interpolate and
extrapolate from reference-trace simulations to dilated-trace behaviour
(Section 4.2/4.3).  This package provides:

* :mod:`repro.ahh.granules` — single-pass extraction of the basic trace
  parameters u(1), p1, lav from granules of word addresses;
* :mod:`repro.ahh.params` — parameter containers with derived quantities
  (p2, u(L));
* :mod:`repro.ahh.model` — the analytic machinery: occupancy probabilities
  P(L,a), collisions Coll(S,A,L), and miss-ratio scaling (Eq 4.7);
* :mod:`repro.ahh.stable` — the numerically stable tail-series collision
  computation the paper describes in Section 5.3;
* :mod:`repro.ahh.batch` — the vectorized/memoized collision kernel the
  batched exploration layer queries over whole (config x dilation) grids;
* :mod:`repro.ahh.modeler` — the TraceModeler driver (ItraceModeler /
  UtraceModeler of Section 5.2) operating on range traces.
"""

from repro.ahh.batch import (
    clear_collisions_batch_cache,
    collisions_batch,
    collisions_batch_cache_size,
)
from repro.ahh.diagnostics import FitReport, u_of_l_fit
from repro.ahh.extended import (
    ExtendedItraceModeler,
    MissBreakdown,
    standalone_miss_estimate,
)
from repro.ahh.granules import GranuleAccumulator, granule_statistics
from repro.ahh.model import (
    collisions,
    occupancy_pmf,
    scale_misses,
    transition_probability,
    unique_lines,
    unique_lines_array,
)
from repro.ahh.modeler import (
    ItraceModeler,
    UtraceModeler,
    derive_trace_parameters,
)
from repro.ahh.params import ComponentParameters, TraceParameters
from repro.ahh.stable import collisions_direct, collisions_stable

__all__ = [
    "GranuleAccumulator",
    "granule_statistics",
    "ComponentParameters",
    "TraceParameters",
    "transition_probability",
    "unique_lines",
    "unique_lines_array",
    "occupancy_pmf",
    "collisions",
    "collisions_batch",
    "collisions_batch_cache_size",
    "clear_collisions_batch_cache",
    "collisions_direct",
    "collisions_stable",
    "scale_misses",
    "ItraceModeler",
    "UtraceModeler",
    "derive_trace_parameters",
    "FitReport",
    "u_of_l_fit",
    "ExtendedItraceModeler",
    "MissBreakdown",
    "standalone_miss_estimate",
]
