"""AHH fit diagnostics: how well does u(L) describe a real trace?

The dilation model leans on the analytic u(L) at line sizes that were
never simulated, so a user should be able to check the formula against
*measured* per-granule unique-line counts before trusting estimates on a
new workload.  :func:`u_of_l_fit` does exactly that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ahh.params import ComponentParameters
from repro.cache.config import WORD_BYTES
from repro.errors import ModelError
from repro.trace.ranges import RangeTrace


@dataclass(frozen=True)
class FitPoint:
    """Measured vs modeled unique lines at one line size."""

    line_bytes: int
    measured: float
    modeled: float

    @property
    def relative_error(self) -> float:
        if self.measured == 0:
            return 0.0 if self.modeled == 0 else float("inf")
        return abs(self.modeled - self.measured) / self.measured


@dataclass(frozen=True)
class FitReport:
    """u(L) fit quality across line sizes."""

    points: tuple[FitPoint, ...]

    @property
    def max_relative_error(self) -> float:
        return max(p.relative_error for p in self.points)

    @property
    def mean_relative_error(self) -> float:
        return sum(p.relative_error for p in self.points) / len(self.points)

    def render(self) -> str:
        """Fixed-width text table of the fit."""
        rows = [f"{'L(bytes)':>9}{'measured':>12}{'modeled':>12}{'rel.err':>9}"]
        for p in self.points:
            rows.append(
                f"{p.line_bytes:>9}{p.measured:>12.1f}"
                f"{p.modeled:>12.1f}{p.relative_error:>9.3f}"
            )
        return "\n".join(rows)


def measured_unique_lines_per_granule(
    trace: RangeTrace, granule_size: int, line_bytes: int
) -> float:
    """Average unique lines of ``line_bytes`` per ``granule_size``-word
    granule of the instruction component."""
    if line_bytes < WORD_BYTES or line_bytes % WORD_BYTES:
        raise ModelError(
            f"line size must be a multiple of {WORD_BYTES}, got {line_bytes}"
        )
    words = trace.instruction_component.word_addresses()
    if words.size < granule_size:
        raise ModelError("trace shorter than one granule")
    line_words = line_bytes // WORD_BYTES
    counts = []
    for start in range(0, words.size - granule_size + 1, granule_size):
        chunk = words[start : start + granule_size]
        counts.append(np.unique(chunk // line_words).size)
    return float(np.mean(counts))


def u_of_l_fit(
    trace: RangeTrace,
    params: ComponentParameters,
    line_sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
) -> FitReport:
    """Compare the analytic u(L) against per-granule measurement.

    ``params`` must have been derived from ``trace`` (same granule size)
    for the comparison to be meaningful; the granule size is taken from
    the parameters.
    """
    points = []
    for line_bytes in line_sizes:
        measured = measured_unique_lines_per_granule(
            trace, params.granule_size, line_bytes
        )
        modeled = params.unique_lines_bytes(float(line_bytes))
        points.append(
            FitPoint(
                line_bytes=line_bytes, measured=measured, modeled=modeled
            )
        )
    return FitReport(points=tuple(points))
