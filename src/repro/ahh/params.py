"""Trace-parameter containers (the TP of Table 1).

A :class:`ComponentParameters` holds the three basic AHH parameters of one
trace component (instruction-only, or the instruction/data components of a
unified trace).  A :class:`TraceParameters` bundles the nine values the
paper's ``getTraceParms`` delivers (Section 5.2): u(1), p1, lav for the
instruction trace plus the instruction and data components of the unified
trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ahh.model import (
    transition_probability,
    unique_lines,
    unique_lines_array,
)
from repro.cache.config import WORD_BYTES
from repro.errors import ModelError


@dataclass(frozen=True)
class ComponentParameters:
    """Basic AHH parameters of one trace component.

    ``granule_size`` records the granule length (references) the
    parameters were measured with, and ``granules`` how many granules
    contributed — both matter when judging parameter stability
    (Section 5.2 discusses granule sizing).
    """

    u1: float
    p1: float
    lav: float
    granule_size: int
    granules: int = 1

    def __post_init__(self) -> None:
        if self.u1 < 0:
            raise ModelError(f"u(1) must be non-negative, got {self.u1}")
        if not 0.0 <= self.p1 <= 1.0:
            raise ModelError(f"p1 must be in [0, 1], got {self.p1}")
        if self.lav < 1.0:
            raise ModelError(f"lav must be >= 1, got {self.lav}")

    @property
    def p2(self) -> float:
        """Eq (4.4) transition probability."""
        return transition_probability(self.lav, self.p1)

    def unique_lines_words(self, line_words: float) -> float:
        """u(L) for a line of ``line_words`` words (may be fractional)."""
        return unique_lines(self.u1, self.p1, self.lav, line_words)

    def unique_lines_bytes(self, line_bytes: float) -> float:
        """u(L) for a line of ``line_bytes`` bytes (may be fractional)."""
        line_words = line_bytes / WORD_BYTES
        return self.unique_lines_words(line_words)

    def unique_lines_words_array(self, line_words) -> np.ndarray:
        """u(L) over an array of line sizes in words (batched path)."""
        return unique_lines_array(self.u1, self.p1, self.lav, line_words)


@dataclass(frozen=True)
class TraceParameters:
    """The nine trace-model parameters for one (application, reference).

    * ``icache`` — parameters of the instruction-only trace, measured with
      the (smaller) instruction granule;
    * ``unified_instr`` / ``unified_data`` — parameters of the instruction
      and data components of the unified trace, measured with the (larger)
      unified granule but shared granule boundaries (Section 4.3).
    """

    icache: ComponentParameters
    unified_instr: ComponentParameters
    unified_data: ComponentParameters

    def unified_unique_lines(
        self, line_bytes: float, dilation: float = 1.0
    ) -> float:
        """u(L, d) = uD(L) + uI(L/d) of Section 4.3.2.

        Dilating the instruction component by d is modeled as contracting
        its effective line size; the data component is undilated.
        """
        if dilation <= 0:
            raise ModelError(f"dilation must be positive, got {dilation}")
        u_data = self.unified_data.unique_lines_bytes(line_bytes)
        effective = line_bytes / dilation
        line_words = max(1.0, effective / WORD_BYTES)
        u_instr = self.unified_instr.unique_lines_words(line_words)
        return u_data + u_instr

    def unified_unique_lines_grid(self, line_bytes, dilations) -> np.ndarray:
        """u(L, d) over a (line size x dilation) grid (batched path).

        Elementwise identical to :meth:`unified_unique_lines`: the data
        component depends on the line size only, the instruction
        component on the dilation-contracted effective line size.
        """
        lines = np.asarray(line_bytes, dtype=np.float64)
        dils = np.asarray(dilations, dtype=np.float64)
        if (dils <= 0).any():
            raise ModelError("dilations must be positive")
        u_data = self.unified_data.unique_lines_words_array(
            lines / WORD_BYTES
        )
        effective = lines[:, None] / dils[None, :]
        line_words = np.maximum(1.0, effective / WORD_BYTES)
        u_instr = self.unified_instr.unique_lines_words_array(line_words)
        return u_data[:, None] + u_instr
