"""Extended AHH model: start-up and non-stationary miss components.

The paper deliberately keeps only the steady-state component: "We assume
that steady-state interference misses dominate and ignore the start-up
and nonstationary misses" (Section 4.2) — valid because its estimators
*scale simulated* misses rather than predict absolute ones.  The original
AHH model [11] has all three components:

* **start-up** — cold misses filling the working set of the first
  granule;
* **non-stationary** — lines newly entering the working set in later
  granules (program phase drift);
* **intrinsic interference** — the per-granule collision count the rest
  of this package models.

This module implements the full decomposition, enabling the standalone
(no-simulation) absolute miss prediction the paper argues is *not*
accurate enough — quantified by ``benchmarks/bench_ablation_standalone.py``,
which reproduces that argument with numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ahh.granules import granule_statistics
from repro.ahh.model import collisions
from repro.ahh.params import ComponentParameters
from repro.cache.config import WORD_BYTES, CacheConfig
from repro.errors import ConfigurationError, ModelError
from repro.trace.ranges import RangeTrace


@dataclass(frozen=True)
class ExtendedComponentParameters:
    """Basic AHH parameters plus working-set drift measurements."""

    base: ComponentParameters
    #: Unique words of the very first granule (start-up working set).
    first_granule_unique: float
    #: Average words per granule never seen in any earlier granule
    #: (excluding the first granule).
    new_words_per_granule: float
    #: Complete granules measured.
    granules: int

    def line_ratio(self, line_words: float) -> float:
        """u(L)/u(1): how unique word counts shrink into line counts."""
        return self.base.unique_lines_words(line_words) / self.base.u1


class ExtendedItraceModeler:
    """Measure extended AHH parameters from an instruction range trace."""

    def __init__(self, granule_size: int):
        if granule_size < 2:
            raise ConfigurationError(
                f"granule size must be >= 2, got {granule_size}"
            )
        self.granule_size = granule_size
        self._buffer: list[int] = []
        self._seen: set[int] = set()
        self._stats: list = []
        self._new_counts: list[int] = []

    def process_trace(self, trace: RangeTrace) -> None:
        """Feed a trace segment (instruction component only)."""
        instr = trace.instruction_component
        if not len(instr):
            return
        for word in instr.word_addresses().tolist():
            self._buffer.append(word)
            if len(self._buffer) >= self.granule_size:
                self._close()

    def _close(self) -> None:
        self._stats.append(granule_statistics(self._buffer))
        unique = set(self._buffer)
        self._new_counts.append(len(unique - self._seen))
        self._seen.update(unique)
        self._buffer.clear()

    def finalize(self) -> ExtendedComponentParameters:
        """Average the accumulated granules into extended parameters."""
        if len(self._buffer) >= self.granule_size // 2:
            self._close()
        if not self._stats:
            raise ModelError(
                "no complete granule; trace shorter than half a granule"
            )
        u1 = float(np.mean([g.unique for g in self._stats]))
        ratios = [g.isolated / g.unique for g in self._stats if g.unique]
        p1 = float(np.mean(ratios)) if ratios else 0.0
        lav = float(np.mean([g.mean_run_length for g in self._stats]))
        later = self._new_counts[1:]
        return ExtendedComponentParameters(
            base=ComponentParameters(
                u1=u1,
                p1=p1,
                lav=lav,
                granule_size=self.granule_size,
                granules=len(self._stats),
            ),
            first_granule_unique=float(self._new_counts[0]),
            new_words_per_granule=float(np.mean(later)) if later else 0.0,
            granules=len(self._stats),
        )


@dataclass(frozen=True)
class MissBreakdown:
    """The three AHH miss components for one cache configuration."""

    start_up: float
    non_stationary: float
    intrinsic: float

    @property
    def total(self) -> float:
        return self.start_up + self.non_stationary + self.intrinsic


def standalone_miss_estimate(
    params: ExtendedComponentParameters,
    config: CacheConfig,
    dilation: float = 1.0,
) -> MissBreakdown:
    """Absolute miss prediction with no simulation anchor.

    * start-up: the first granule's working set arrives cold, one miss
      per unique line;
    * non-stationary: each later granule brings ``new_words_per_granule``
      fresh words, each a compulsory line miss (scaled to lines);
    * intrinsic: every granule re-misses its colliding lines once
      (the AHH steady-state approximation).

    ``dilation`` contracts the effective line size (Lemma 1), exactly as
    the anchored estimator does.
    """
    if dilation <= 0:
        raise ModelError(f"dilation must be positive, got {dilation}")
    line_words = max(1.0, config.line_size / dilation / WORD_BYTES)
    ratio = params.line_ratio(line_words)
    start_up = params.first_granule_unique * ratio
    non_stationary = (
        max(0, params.granules - 1) * params.new_words_per_granule * ratio
    )
    u_lines = params.base.unique_lines_words(line_words)
    coll = collisions(u_lines, config.sets, config.assoc)
    intrinsic = params.granules * coll
    return MissBreakdown(
        start_up=start_up,
        non_stationary=non_stationary,
        intrinsic=intrinsic,
    )
