"""Batched collision computation: the array kernel behind exploration.

:func:`collisions_batch` evaluates Coll(S, A, L) of Eq (4.8) for whole
grids of ``(u, sets, assoc)`` triples at once.  It mirrors the scalar
kernels of :mod:`repro.ahh.stable` element for element — the same
log-space occupancy recurrence, the same direct / tail-series forms, and
the same ``method="auto"`` cancellation switch, applied elementwise — so
batched results track the scalar oracle to floating-point rounding of
the underlying ``log``/``exp`` library calls.

The module also memoizes every ``(u, S, A, method)`` triple it has
computed: a spacewalker evaluating many dilation intervals re-queries
identical collision series constantly (every unified-cache estimate
needs the undilated reference series, every icache interpolation shares
its bracket series across dilations), and the memo turns those repeats
into dictionary lookups.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ahh.stable import _STABLE_SWITCH, _TAIL_RTOL
from repro.errors import ModelError

#: Memoized collision values keyed by (u, sets, assoc, method).
_MEMO: dict[tuple[float, int, int, str], float] = {}

#: Safety valve: drop the memo wholesale if it ever grows this large.
_MEMO_LIMIT = 1 << 20

#: log-probability floor below which exp() underflows to exactly 0.0
#: (same constant as :func:`repro.ahh.stable._occupancy_terms`).
_LOG_FLOOR = -745.0


def clear_collisions_batch_cache() -> None:
    """Empty the (u, S, A) memo (used by benchmarks for cold timings)."""
    _MEMO.clear()


def collisions_batch_cache_size() -> int:
    """Number of memoized (u, S, A, method) triples."""
    return len(_MEMO)


def _single_set_grid(u: np.ndarray, assoc: np.ndarray) -> np.ndarray:
    """S == 1 degenerate caches: point mass at u, every method agrees."""
    return np.where(u > assoc, u, 0.0)


def _direct_grid(
    u: np.ndarray, sets: np.ndarray, assoc: np.ndarray
) -> np.ndarray:
    """Vectorized Eq (4.8): u - S * sum_{a<=A} a P(a), clamped at zero.

    Elementwise identical to :func:`repro.ahh.stable.collisions_direct`:
    the log-space recurrence advances one ``a`` per iteration across the
    whole grid, each element contributing terms while ``a`` is within
    both its associativity and the occupancy support.
    """
    n = u.shape[0]
    acc = np.zeros(n)
    log_p = u * np.log1p(-1.0 / sets)
    log_s1 = np.log(sets - 1.0)
    amax = int(assoc.max())
    for a in range(amax + 1):
        # Term a exists while the previous recurrence step had u - a > 0.
        exists = np.ones(n, dtype=bool) if a == 0 else (u > a - 1)
        if a > 0:
            contrib = exists & (assoc >= a)
            if contrib.any():
                p = np.where(log_p > _LOG_FLOOR, np.exp(log_p), 0.0)
                acc[contrib] += a * p[contrib]
        if a == amax:
            break
        upd = exists & (u > a)
        if not upd.any():
            break
        step = np.log(np.where(upd, u - a, 1.0)) - math.log(a + 1.0) - log_s1
        log_p = np.where(upd, log_p + step, log_p)
    return np.maximum(0.0, u - sets * acc)


def _stable_grid(
    u: np.ndarray, sets: np.ndarray, assoc: np.ndarray
) -> np.ndarray:
    """Vectorized tail series: Coll = S * sum_{a>A} a P(a).

    Elementwise identical to :func:`repro.ahh.stable.collisions_stable`:
    every element keeps accumulating tail terms until its own relative
    convergence criterion fires past the occupancy mean (or its support
    is exhausted); converged elements drop out of the active mask while
    the rest continue.
    """
    n = u.shape[0]
    acc = np.zeros(n)
    log_p = u * np.log1p(-1.0 / sets)
    log_s1 = np.log(sets - 1.0)
    mean = u / sets
    alive = np.ones(n, dtype=bool)
    a = 0
    while alive.any():
        tail = alive & (assoc < a)
        if tail.any():
            p = np.where(log_p > _LOG_FLOOR, np.exp(log_p), 0.0)
            term = a * p
            acc[tail] += term[tail]
            conv = tail & (acc > 0) & (term < _TAIL_RTOL * acc) & (a > mean)
        else:
            conv = np.zeros(n, dtype=bool)
        support_end = alive & (u - a <= 0.0)
        alive &= ~(conv | support_end)
        if not alive.any():
            break
        step = (
            np.log(np.where(alive, u - a, 1.0)) - math.log(a + 1.0) - log_s1
        )
        log_p = np.where(alive, log_p + step, log_p)
        a += 1
    return sets * acc


def _auto_grid(
    u: np.ndarray, sets: np.ndarray, assoc: np.ndarray
) -> np.ndarray:
    """Direct computation with the elementwise cancellation fallback."""
    out = _direct_grid(u, sets, assoc)
    redo = (u > 0) & (out < _STABLE_SWITCH * u)
    if redo.any():
        out[redo] = _stable_grid(u[redo], sets[redo], assoc[redo])
    return out


def _compute_grid(
    u: np.ndarray, sets: np.ndarray, assoc: np.ndarray, method: str
) -> np.ndarray:
    out = np.empty(u.shape[0])
    one = sets == 1
    if one.any():
        out[one] = _single_set_grid(u[one], assoc[one])
    many = ~one
    if many.any():
        um, sm, am = u[many], sets[many], assoc[many]
        if method == "direct":
            vals = _direct_grid(um, sm, am)
        elif method == "stable":
            vals = _stable_grid(um, sm, am)
        else:
            vals = _auto_grid(um, sm, am)
        out[many] = vals
    return out


def collisions_batch(
    u, sets, assoc, method: str = "auto"
) -> np.ndarray:
    """Coll(S, A, L) over a whole grid of (u, sets, assoc) triples.

    Parameters broadcast against each other like any numpy operation:
    ``collisions_batch(u_grid, sets_column, assoc_column)`` evaluates a
    full (config x dilation) grid in one call.  Returns an array of the
    broadcast shape.  Repeated triples are answered from the module memo.
    """
    if method not in ("auto", "direct", "stable"):
        raise ModelError(f"unknown collision method {method!r}")
    u_arr, sets_arr, assoc_arr = np.broadcast_arrays(
        np.asarray(u, dtype=np.float64),
        np.asarray(sets, dtype=np.int64),
        np.asarray(assoc, dtype=np.int64),
    )
    shape = u_arr.shape
    uf = np.ascontiguousarray(u_arr).ravel()
    sf = np.ascontiguousarray(sets_arr).ravel()
    af = np.ascontiguousarray(assoc_arr).ravel()
    if uf.size == 0:
        return np.zeros(shape)
    if not np.isfinite(uf).all() or (uf < 0).any():
        raise ModelError("u must be finite and non-negative")
    if (sf < 1).any():
        raise ModelError("sets must be >= 1")
    if (af < 0).any():
        raise ModelError("assoc must be >= 0")

    if len(_MEMO) > _MEMO_LIMIT:
        _MEMO.clear()

    out = np.empty(uf.shape)
    keys = list(zip(uf.tolist(), sf.tolist(), af.tolist()))
    missing: dict[tuple[float, int, int], int] = {}
    for i, (uk, sk, ak) in enumerate(keys):
        cached = _MEMO.get((uk, sk, ak, method))
        if cached is None:
            missing.setdefault((uk, sk, ak), i)
            out[i] = np.nan
        else:
            out[i] = cached
    if missing:
        triples = list(missing)
        mu = np.array([t[0] for t in triples])
        ms = np.array([t[1] for t in triples], dtype=np.int64)
        ma = np.array([t[2] for t in triples], dtype=np.int64)
        vals = _compute_grid(mu, ms, ma, method)
        for triple, val in zip(triples, vals.tolist()):
            _MEMO[(*triple, method)] = val
        for i, key in enumerate(keys):
            if np.isnan(out[i]):
                out[i] = _MEMO[(*key, method)]
    return out.reshape(shape)
