"""The dilation estimator: Eq 4.1, Lemma 1 + Eq 4.12, Eqs 4.13-4.15.

:class:`DilationEstimator` answers the paper's central question — the
misses of cache C on processor Pi's trace — from only (a) reference-trace
simulation results and (b) the nine AHH trace parameters:

* **data cache** (Eq 4.1): the reference misses, unchanged;
* **instruction cache** (Section 4.3.1): dilation by d is equivalent to
  contracting the line size to L/d (Lemma 1).  When L/d is a feasible
  power of two the reference simulation result is returned exactly;
  otherwise misses are interpolated between the two bracketing power-of-
  two line sizes, linearly in the AHH collision count (Eq 4.12);
* **unified cache** (Section 4.3.2): the mixed dilated-instruction /
  undilated-data trace cannot be reduced to a line-size change, so misses
  are extrapolated by the collision ratio Coll(TP,d)/Coll(TP,1)
  (Eqs 4.13-4.15) with u(L,d) = uD(L) + uI(L/d).
"""

from __future__ import annotations

from typing import Mapping

from repro.ahh.model import collisions, scale_misses
from repro.ahh.params import TraceParameters
from repro.cache.config import WORD_BYTES, CacheConfig
from repro.core.interpolate import interpolate_linear_in
from repro.errors import ModelError

#: Smallest feasible line size (one word).
_MIN_LINE = WORD_BYTES


class DilationEstimator:
    """Estimate dilated-trace cache misses from reference simulations.

    Parameters
    ----------
    params:
        The nine trace-model parameters of the reference trace
        (:func:`repro.ahh.modeler.derive_trace_parameters`).
    collision_method:
        Forwarded to :func:`repro.ahh.model.collisions`
        (``"auto"`` / ``"direct"`` / ``"stable"``).
    """

    def __init__(
        self, params: TraceParameters, collision_method: str = "auto"
    ):
        self.params = params
        self.collision_method = collision_method

    # ------------------------------------------------------------------
    # Data cache: Eq (4.1).
    # ------------------------------------------------------------------

    def estimate_dcache_misses(self, reference_misses: float) -> float:
        """M(DC, Pi) ~= M(DC, Pref): the identity estimator."""
        return float(reference_misses)

    # ------------------------------------------------------------------
    # Instruction cache: Lemma 1 + Eq (4.12).
    # ------------------------------------------------------------------

    def icache_collisions(self, config: CacheConfig, line_bytes: float) -> float:
        """Coll(S, A, L) for the instruction trace at a (possibly
        fractional) line size in bytes."""
        line_words = max(1.0, line_bytes / WORD_BYTES)
        u = self.params.icache.unique_lines_words(line_words)
        return collisions(
            u, config.sets, config.assoc, method=self.collision_method
        )

    def estimate_icache_misses(
        self,
        config: CacheConfig,
        dilation: float,
        reference_misses: Mapping[CacheConfig, float],
    ) -> float:
        """M(IC(S,A,L), Pref, d) from reference-trace simulations.

        ``reference_misses`` must contain the configurations with the
        bracketing power-of-two line sizes (same sets/associativity);
        :meth:`required_icache_configs` lists them.
        """
        if dilation <= 0:
            raise ModelError(f"dilation must be positive, got {dilation}")
        effective = max(float(_MIN_LINE), config.line_size / dilation)
        lower, upper = _bracket_line_sizes(effective)
        if lower == upper:
            # L/d is itself feasible: Lemma 1 applies exactly.
            return float(_lookup(reference_misses, _norm(config, lower)))
        m_lower = float(_lookup(reference_misses, _norm(config, lower)))
        m_upper = float(_lookup(reference_misses, _norm(config, upper)))
        coll_lower = self.icache_collisions(config, float(lower))
        coll_upper = self.icache_collisions(config, float(upper))
        coll_target = self.icache_collisions(config, effective)
        estimate = interpolate_linear_in(
            m_lower, coll_lower, m_upper, coll_upper, coll_target
        )
        return max(0.0, estimate)

    def required_icache_configs(
        self, config: CacheConfig, dilation: float
    ) -> list[CacheConfig]:
        """Reference configurations Lemma 1 + Eq (4.12) will look up."""
        effective = max(float(_MIN_LINE), config.line_size / dilation)
        lower, upper = _bracket_line_sizes(effective)
        configs = [_norm(config, lower)]
        if upper != lower:
            configs.append(_norm(config, upper))
        return configs

    # ------------------------------------------------------------------
    # Unified cache: Eqs (4.13)-(4.15).
    # ------------------------------------------------------------------

    def unified_collisions(
        self, config: CacheConfig, dilation: float
    ) -> float:
        """Coll(TPref,d, UC(S,A,L)) with u(L,d) = uD(L) + uI(L/d)."""
        u = self.params.unified_unique_lines(config.line_size, dilation)
        return collisions(
            u, config.sets, config.assoc, method=self.collision_method
        )

    def estimate_unified_misses(
        self,
        config: CacheConfig,
        dilation: float,
        reference_misses: float,
    ) -> float:
        """Eq (4.15): scale the simulated misses by the collision ratio."""
        if dilation <= 0:
            raise ModelError(f"dilation must be positive, got {dilation}")
        coll_ref = self.unified_collisions(config, 1.0)
        coll_dil = self.unified_collisions(config, dilation)
        return scale_misses(float(reference_misses), coll_ref, coll_dil)


def _bracket_line_sizes(effective: float) -> tuple[int, int]:
    """Power-of-two line sizes bracketing an effective line size.

    Returns (lower, upper); equal when ``effective`` is itself a feasible
    power of two.  The lower bound is clamped at one word.
    """
    if effective < _MIN_LINE:
        return _MIN_LINE, _MIN_LINE
    lower = _MIN_LINE
    while lower * 2 <= effective:
        lower *= 2
    if float(lower) == effective:
        return lower, lower
    return lower, lower * 2


def _norm(config: CacheConfig, line_size: int) -> CacheConfig:
    """Port-normalized lookup key: simulators are port-oblivious."""
    return CacheConfig(config.sets, config.assoc, line_size)


def _lookup(
    reference_misses: Mapping[CacheConfig, float], config: CacheConfig
) -> float:
    try:
        return reference_misses[config]
    except KeyError:
        raise ModelError(
            f"reference simulation results lack {config}; "
            "simulate the bracketing line sizes first "
            "(see DilationEstimator.required_icache_configs)"
        ) from None
