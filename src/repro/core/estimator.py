"""The dilation estimator: Eq 4.1, Lemma 1 + Eq 4.12, Eqs 4.13-4.15.

:class:`DilationEstimator` answers the paper's central question — the
misses of cache C on processor Pi's trace — from only (a) reference-trace
simulation results and (b) the nine AHH trace parameters:

* **data cache** (Eq 4.1): the reference misses, unchanged;
* **instruction cache** (Section 4.3.1): dilation by d is equivalent to
  contracting the line size to L/d (Lemma 1).  When L/d is a feasible
  power of two the reference simulation result is returned exactly;
  otherwise misses are interpolated between the two bracketing power-of-
  two line sizes, linearly in the AHH collision count (Eq 4.12);
* **unified cache** (Section 4.3.2): the mixed dilated-instruction /
  undilated-data trace cannot be reduced to a line-size change, so misses
  are extrapolated by the collision ratio Coll(TP,d)/Coll(TP,1)
  (Eqs 4.13-4.15) with u(L,d) = uD(L) + uI(L/d).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.ahh.batch import collisions_batch
from repro.ahh.model import collisions, scale_misses
from repro.ahh.params import TraceParameters
from repro.cache.config import WORD_BYTES, CacheConfig
from repro.core.interpolate import (
    interpolate_linear_in,
    interpolate_linear_in_array,
)
from repro.errors import ModelError

#: Smallest feasible line size (one word).
_MIN_LINE = WORD_BYTES

#: Relative tolerance when deciding that an effective line size L/d *is* a
#: power of two: float division can land a few ulps off (e.g. dilation
#: 2.0000000000000004 gives 32/d = 15.999999999999996), and exact equality
#: would misbracket such points into an interpolation between the wrong
#: line sizes instead of the exact Lemma 1 lookup.
_BRACKET_RTOL = 1e-9


class DilationEstimator:
    """Estimate dilated-trace cache misses from reference simulations.

    Parameters
    ----------
    params:
        The nine trace-model parameters of the reference trace
        (:func:`repro.ahh.modeler.derive_trace_parameters`).
    collision_method:
        Forwarded to :func:`repro.ahh.model.collisions`
        (``"auto"`` / ``"direct"`` / ``"stable"``).
    """

    def __init__(
        self, params: TraceParameters, collision_method: str = "auto"
    ):
        self.params = params
        self.collision_method = collision_method

    # ------------------------------------------------------------------
    # Data cache: Eq (4.1).
    # ------------------------------------------------------------------

    def estimate_dcache_misses(self, reference_misses: float) -> float:
        """M(DC, Pi) ~= M(DC, Pref): the identity estimator."""
        return float(reference_misses)

    # ------------------------------------------------------------------
    # Instruction cache: Lemma 1 + Eq (4.12).
    # ------------------------------------------------------------------

    def icache_collisions(self, config: CacheConfig, line_bytes: float) -> float:
        """Coll(S, A, L) for the instruction trace at a (possibly
        fractional) line size in bytes."""
        line_words = max(1.0, line_bytes / WORD_BYTES)
        u = self.params.icache.unique_lines_words(line_words)
        return collisions(
            u, config.sets, config.assoc, method=self.collision_method
        )

    def estimate_icache_misses(
        self,
        config: CacheConfig,
        dilation: float,
        reference_misses: Mapping[CacheConfig, float],
    ) -> float:
        """M(IC(S,A,L), Pref, d) from reference-trace simulations.

        ``reference_misses`` must contain the configurations with the
        bracketing power-of-two line sizes (same sets/associativity);
        :meth:`required_icache_configs` lists them.
        """
        if dilation <= 0:
            raise ModelError(f"dilation must be positive, got {dilation}")
        effective = max(float(_MIN_LINE), config.line_size / dilation)
        lower, upper = _bracket_line_sizes(effective)
        if lower == upper:
            # L/d is itself feasible: Lemma 1 applies exactly.
            return float(_lookup(reference_misses, _norm(config, lower)))
        m_lower = float(_lookup(reference_misses, _norm(config, lower)))
        m_upper = float(_lookup(reference_misses, _norm(config, upper)))
        coll_lower = self.icache_collisions(config, float(lower))
        coll_upper = self.icache_collisions(config, float(upper))
        coll_target = self.icache_collisions(config, effective)
        estimate = interpolate_linear_in(
            m_lower, coll_lower, m_upper, coll_upper, coll_target
        )
        return max(0.0, estimate)

    def required_icache_configs(
        self, config: CacheConfig, dilation: float
    ) -> list[CacheConfig]:
        """Reference configurations Lemma 1 + Eq (4.12) will look up."""
        effective = max(float(_MIN_LINE), config.line_size / dilation)
        lower, upper = _bracket_line_sizes(effective)
        configs = [_norm(config, lower)]
        if upper != lower:
            configs.append(_norm(config, upper))
        return configs

    # ------------------------------------------------------------------
    # Unified cache: Eqs (4.13)-(4.15).
    # ------------------------------------------------------------------

    def unified_collisions(
        self, config: CacheConfig, dilation: float
    ) -> float:
        """Coll(TPref,d, UC(S,A,L)) with u(L,d) = uD(L) + uI(L/d)."""
        u = self.params.unified_unique_lines(config.line_size, dilation)
        return collisions(
            u, config.sets, config.assoc, method=self.collision_method
        )

    def estimate_unified_misses(
        self,
        config: CacheConfig,
        dilation: float,
        reference_misses: float,
    ) -> float:
        """Eq (4.15): scale the simulated misses by the collision ratio."""
        if dilation <= 0:
            raise ModelError(f"dilation must be positive, got {dilation}")
        coll_ref = self.unified_collisions(config, 1.0)
        coll_dil = self.unified_collisions(config, dilation)
        return scale_misses(float(reference_misses), coll_ref, coll_dil)

    # ------------------------------------------------------------------
    # Batched grid evaluation (the vectorized exploration path).
    # ------------------------------------------------------------------

    def required_icache_configs_batch(
        self, configs: Sequence[CacheConfig], dilations: Sequence[float]
    ) -> list[CacheConfig]:
        """Union of reference configurations a (config x dilation) grid
        of icache estimates will look up, in deterministic (sorted)
        order.  Bracketing runs vectorized over the whole grid; only the
        unique (sets, assoc, line) combinations materialize as configs."""
        configs = list(configs)
        dils = np.asarray(list(dilations), dtype=np.float64).reshape(-1)
        if (dils <= 0).any():
            raise ModelError("dilations must be positive")
        if not configs or dils.size == 0:
            return []
        lines = np.array([c.line_size for c in configs], dtype=np.float64)
        sets = np.array([c.sets for c in configs], dtype=np.int64)
        assoc = np.array([c.assoc for c in configs], dtype=np.int64)
        effective = np.maximum(
            float(_MIN_LINE), lines[:, None] / dils[None, :]
        )
        lower, upper = _bracket_line_sizes_grid(effective)
        shape = effective.shape
        sa = np.stack(
            [
                np.broadcast_to(sets[:, None], shape).ravel(),
                np.broadcast_to(assoc[:, None], shape).ravel(),
            ],
            axis=1,
        )
        candidates = np.concatenate(
            [
                np.column_stack([sa, lower.ravel().astype(np.int64)]),
                np.column_stack([sa, upper.ravel().astype(np.int64)]),
            ]
        )
        unique = np.unique(candidates, axis=0)
        return [
            CacheConfig(int(s), int(a), int(line)) for s, a, line in unique
        ]

    def estimate_icache_misses_batch(
        self,
        configs: Sequence[CacheConfig],
        dilations,
        reference_misses: Mapping[CacheConfig, float],
    ) -> np.ndarray:
        """Lemma 1 + Eq (4.12) over the whole (config x dilation) grid.

        Returns an array of shape ``(len(configs), len(dilations))``
        whose every element matches the scalar
        :meth:`estimate_icache_misses` for the same (config, dilation)
        to floating-point rounding of the library ``log``/``exp`` calls.
        ``reference_misses`` must cover every configuration listed by
        :meth:`required_icache_configs_batch`.
        """
        configs = list(configs)
        dils = np.asarray(dilations, dtype=np.float64).reshape(-1)
        if (dils <= 0).any():
            raise ModelError("dilations must be positive")
        n, m = len(configs), dils.size
        if n == 0 or m == 0:
            return np.zeros((n, m))
        lines = np.array([c.line_size for c in configs], dtype=np.float64)
        sets = np.array([c.sets for c in configs], dtype=np.int64)
        assoc = np.array([c.assoc for c in configs], dtype=np.int64)

        effective = np.maximum(
            float(_MIN_LINE), lines[:, None] / dils[None, :]
        )
        lower, upper = _bracket_line_sizes_grid(effective)
        exact = lower == upper

        m_lower = self._gather_references(
            reference_misses, configs, np.arange(n)[:, None] * np.ones(m, dtype=int)[None, :], lower
        )
        out = np.where(exact, m_lower, 0.0)

        inexact = ~exact
        if inexact.any():
            ci, _ = np.nonzero(inexact)
            m_lo = m_lower[inexact]
            m_up = self._gather_references(
                reference_misses,
                configs,
                np.arange(n)[:, None] * np.ones(m, dtype=int)[None, :],
                upper,
                cells=inexact,
            )
            sets_v = sets[ci]
            assoc_v = assoc[ci]
            coll_lo = self._icache_collisions_array(
                lower[inexact], sets_v, assoc_v
            )
            coll_up = self._icache_collisions_array(
                upper[inexact], sets_v, assoc_v
            )
            coll_tgt = self._icache_collisions_array(
                effective[inexact], sets_v, assoc_v
            )
            estimate = interpolate_linear_in_array(
                m_lo, coll_lo, m_up, coll_up, coll_tgt
            )
            out[inexact] = np.maximum(0.0, estimate)
        return out

    def estimate_unified_misses_batch(
        self,
        configs: Sequence[CacheConfig],
        dilations,
        reference_misses,
    ) -> np.ndarray:
        """Eq (4.15) over the whole (config x dilation) grid.

        ``reference_misses`` holds one simulated miss count per config.
        Returns shape ``(len(configs), len(dilations))``; every element
        matches the scalar :meth:`estimate_unified_misses`.
        """
        configs = list(configs)
        dils = np.asarray(dilations, dtype=np.float64).reshape(-1)
        if (dils <= 0).any():
            raise ModelError("dilations must be positive")
        ref = np.asarray(reference_misses, dtype=np.float64).reshape(-1)
        if ref.size != len(configs):
            raise ModelError(
                "reference_misses must hold one value per configuration"
            )
        n, m = len(configs), dils.size
        if n == 0 or m == 0:
            return np.zeros((n, m))
        lines = np.array([c.line_size for c in configs], dtype=np.float64)
        sets = np.array([c.sets for c in configs], dtype=np.int64)
        assoc = np.array([c.assoc for c in configs], dtype=np.int64)

        u_ref = self.params.unified_unique_lines_grid(lines, [1.0])[:, 0]
        u_grid = self.params.unified_unique_lines_grid(lines, dils)
        coll_ref = collisions_batch(
            u_ref, sets, assoc, method=self.collision_method
        )
        coll_dil = collisions_batch(
            u_grid, sets[:, None], assoc[:, None], method=self.collision_method
        )
        if (coll_ref < 0).any() or (coll_dil < 0).any():
            raise ModelError("collision counts must be non-negative")
        zero_ref = coll_ref == 0.0
        if (zero_ref[:, None] & (coll_dil != 0.0)).any():
            raise ModelError(
                "reference configuration has zero modeled collisions; "
                "cannot extrapolate"
            )
        ratio = coll_dil / np.where(zero_ref, 1.0, coll_ref)[:, None]
        return np.where(zero_ref[:, None], ref[:, None], ref[:, None] * ratio)

    def _icache_collisions_array(
        self, line_bytes: np.ndarray, sets: np.ndarray, assoc: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`icache_collisions` over matching 1-D arrays."""
        line_words = np.maximum(1.0, line_bytes / WORD_BYTES)
        u = self.params.icache.unique_lines_words_array(line_words)
        return collisions_batch(u, sets, assoc, method=self.collision_method)

    @staticmethod
    def _gather_references(
        reference_misses: Mapping[CacheConfig, float],
        configs: Sequence[CacheConfig],
        config_index: np.ndarray,
        line_grid: np.ndarray,
        cells: np.ndarray | None = None,
    ) -> np.ndarray:
        """Look up reference misses for (config row, line size) cells.

        With ``cells`` (a boolean grid) only those cells are gathered and
        a flat array is returned; otherwise the full grid is gathered.
        """
        if cells is None:
            flat_idx = config_index.ravel()
            flat_lines = line_grid.ravel()
            shape = line_grid.shape
        else:
            flat_idx = config_index[cells]
            flat_lines = line_grid[cells]
            shape = None
        # Only the unique (config row, line size) pairs hit the mapping;
        # the grid mostly repeats a handful of bracket line sizes.
        pairs = np.column_stack(
            [flat_idx.astype(np.int64), flat_lines.astype(np.int64)]
        )
        unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
        unique_values = np.array(
            [
                float(
                    _lookup(reference_misses, _norm(configs[int(i)], int(l)))
                )
                for i, l in unique
            ]
        )
        values = unique_values[inverse]
        return values.reshape(shape) if shape is not None else values


def _bracket_line_sizes(effective: float) -> tuple[int, int]:
    """Power-of-two line sizes bracketing an effective line size.

    Returns (lower, upper); equal when ``effective`` is itself a feasible
    power of two (to within ``_BRACKET_RTOL``, so dilations that land a
    few ulps off a power of two still take the exact Lemma 1 path).  The
    lower bound is clamped at one word.
    """
    if effective < _MIN_LINE:
        return _MIN_LINE, _MIN_LINE
    lower = _MIN_LINE
    while lower * 2 <= effective:
        lower *= 2
    if math.isclose(lower, effective, rel_tol=_BRACKET_RTOL, abs_tol=0.0):
        return lower, lower
    upper = lower * 2
    if math.isclose(upper, effective, rel_tol=_BRACKET_RTOL, abs_tol=0.0):
        return upper, upper
    return lower, upper


def _bracket_line_sizes_grid(
    effective: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise :func:`_bracket_line_sizes` over a grid.

    Inputs are assumed already clamped to ``>= _MIN_LINE`` (the batch
    caller does this).  Returns float arrays holding exact powers of two.
    """
    lower = np.maximum(
        np.exp2(np.floor(np.log2(effective))), float(_MIN_LINE)
    )
    # math.isclose(p, e, rel_tol=r, abs_tol=0): |p - e| <= r * max(p, e)
    snap_lo = np.abs(lower - effective) <= _BRACKET_RTOL * np.maximum(
        lower, effective
    )
    upper = np.where(snap_lo, lower, lower * 2.0)
    snap_up = np.abs(upper - effective) <= _BRACKET_RTOL * np.maximum(
        upper, effective
    )
    lower = np.where(snap_up, upper, lower)
    return lower, upper


def _norm(config: CacheConfig, line_size: int) -> CacheConfig:
    """Port-normalized lookup key: simulators are port-oblivious."""
    return CacheConfig(config.sets, config.assoc, line_size)


def _lookup(
    reference_misses: Mapping[CacheConfig, float], config: CacheConfig
) -> float:
    try:
        return reference_misses[config]
    except KeyError:
        raise ModelError(
            f"reference simulation results lack {config}; "
            "simulate the bracketing line sizes first "
            "(see DilationEstimator.required_icache_configs)"
        ) from None
