"""Cache-port contention: the ports dimension of the design space.

The paper parameterizes every cache by its "number of ports" and builds
"Pareto sets ... that satisfy certain constraints with respect to data
cache ports, unified cache ports and dilation" (Section 5.3) — ports
bound how many memory operations a cycle can actually issue, regardless
of how many memory units the processor has.

:func:`port_stall_cycles` charges the structural stalls a port-limited
data cache adds to a compiled program: per block, memory operations
issue at ``min(memory units, ports)`` per cycle instead of the
scheduler's assumption of full memory-unit bandwidth.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.isa.operations import OpClass
from repro.trace.events import EventTrace
from repro.vliwcomp.compile import CompiledProgram


def block_port_stalls(
    n_memory_ops: int, memory_units: int, ports: int
) -> int:
    """Extra issue cycles one block needs when ports < memory units.

    The schedule assumed ceil(m / units) memory-issue cycles; a
    ``ports``-ported cache needs ceil(m / min(units, ports)).
    """
    if ports < 1:
        raise ConfigurationError(f"ports must be >= 1, got {ports}")
    if memory_units < 1:
        raise ConfigurationError(
            f"memory_units must be >= 1, got {memory_units}"
        )
    if n_memory_ops == 0:
        return 0
    effective = min(memory_units, ports)
    assumed = math.ceil(n_memory_ops / memory_units)
    needed = math.ceil(n_memory_ops / effective)
    return max(0, needed - assumed)


def port_stall_cycles(
    compiled: CompiledProgram,
    events: EventTrace,
    ports: int,
) -> int:
    """Total structural stall cycles from data-cache port contention.

    Weighted by dynamic visit counts, like
    :func:`repro.core.hierarchy_eval.processor_cycles`.  Zero whenever
    the cache has at least as many ports as the machine has memory
    units — the paper's inclusion of ports in the cost model is what
    makes under-porting a *trade-off* rather than a free lunch.
    """
    memory_units = compiled.mdes.processor.units[OpClass.MEMORY]
    frequencies = events.visit_frequencies()
    total = 0
    for index, count in enumerate(frequencies.tolist()):
        if not count:
            continue
        proc_name, block_id = events.blocks[index]
        cblock = compiled.block(proc_name, block_id)
        n_memory = sum(1 for op in cblock.operations if op.is_memory)
        total += count * block_port_stalls(n_memory, memory_units, ports)
    return total
