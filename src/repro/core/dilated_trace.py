"""Constructing the dilated reference trace (Section 4.1, step 2).

"A trace, dilated by d, is derived from Tref as follows.  The length of
each basic block in Tref is increased by a multiplicative factor d.
Additionally, the starting address of each basic block is adjusted to
ensure that the dilated basic blocks do not overlap in the dilated trace
... the start address of the basic block in the dilated trace is changed
from B + O to B + d*O.  The lengths and offsets of basic blocks are
rounded to the nearest word so that contiguous basic blocks in the
original trace remain contiguous but do not overlap."

Implemented as a *binary* transformation: dilating the reference binary's
block placements by d and replaying the same event trace through the
dilated binary yields exactly the dilated address trace, so the ordinary
:class:`~repro.trace.generator.TraceGenerator` needs no special cases.
"""

from __future__ import annotations

from repro.cache.config import WORD_BYTES
from repro.errors import ModelError
from repro.iformat.linker import Binary, BlockImage


def dilate_binary(binary: Binary, dilation: float) -> Binary:
    """Stretch every block of ``binary`` by ``dilation``.

    Offsets from the text base and block sizes are scaled by ``dilation``
    and rounded to the nearest word; a block's start is clamped to the
    previous block's end so rounding never makes dilated blocks overlap
    (contiguity is preserved up to word rounding, as in the paper).
    """
    if dilation <= 0:
        raise ModelError(f"dilation must be positive, got {dilation}")
    base = binary.base
    dilated = Binary(
        program_name=binary.program_name,
        processor_name=f"{binary.processor_name}*d={dilation:g}",
        base=base,
    )
    prev_end = base
    for image in sorted(binary.images, key=lambda im: im.start):
        offset = image.start - base
        start = base + _round_word(dilation * offset)
        start = max(start, prev_end)
        size = max(WORD_BYTES, _round_word(dilation * image.size))
        dilated.add(
            BlockImage(
                proc_name=image.proc_name,
                block_id=image.block_id,
                start=start,
                size=size,
            )
        )
        prev_end = start + size
    return dilated


def _round_word(value: float) -> int:
    """Round a byte count to the nearest whole word."""
    return int(round(value / WORD_BYTES)) * WORD_BYTES
