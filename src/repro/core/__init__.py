"""The dilation model (Section 4): the paper's primary contribution.

Given cache simulation results on a *reference* processor's trace and a
handful of AHH trace parameters, estimate the cache misses any other
processor in the design space would incur — without generating or
simulating that processor's trace.

* :mod:`repro.core.dilation` — measuring text and per-block dilation from
  two linked binaries (Table 3, Figure 5);
* :mod:`repro.core.dilated_trace` — constructing the dilated reference
  trace of Section 4.1 step 2 (every block stretched by d, starts moved
  from B + O to B + d*O);
* :mod:`repro.core.interpolate` — Lemma 2's linear-in-collisions
  interpolation (Eq 4.11/4.12);
* :mod:`repro.core.estimator` — the three estimators: data cache
  (Eq 4.1), instruction cache (Lemma 1 + Eq 4.12), unified cache
  (Eqs 4.13-4.15);
* :mod:`repro.core.hierarchy_eval` — combining processor cycles and cache
  stalls into system execution time (Section 3.2).
"""

from repro.core.dilated_trace import dilate_binary
from repro.core.dilation import (
    DilationInfo,
    cumulative_distribution,
    measure_dilation,
)
from repro.core.estimator import DilationEstimator
from repro.core.hierarchy_eval import MissPenalties, SystemEvaluation, evaluate_system
from repro.core.interpolate import interpolate_linear_in
from repro.core.ports import block_port_stalls, port_stall_cycles

__all__ = [
    "DilationInfo",
    "measure_dilation",
    "cumulative_distribution",
    "dilate_binary",
    "interpolate_linear_in",
    "DilationEstimator",
    "MissPenalties",
    "SystemEvaluation",
    "evaluate_system",
    "block_port_stalls",
    "port_stall_cycles",
]
