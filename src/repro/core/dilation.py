"""Measuring dilation between a reference and a target binary.

"Let the dilation of a basic block be the ratio of the size of a basic
block in Pi to that in Pref and text dilation d be the ratio of the
overall text size of the benchmark in Pi to that in Pref" (Section 4.1).

The model assumes uniform dilation (every block dilated by the text
dilation); :func:`measure_dilation` also returns the per-block ratios so
the validity of that assumption can be examined (Figure 5's static and
dynamic cumulative distributions, Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.iformat.linker import Binary


@dataclass(frozen=True)
class DilationInfo:
    """Dilation measurements of one (reference, target) binary pair."""

    #: Ratio of linked text sizes (the model's dilation coefficient d).
    text_dilation: float
    #: (procedure name, block id) keys, aligned with ``block_dilations``.
    block_keys: tuple[tuple[str, int], ...]
    #: Per-block size ratios target/reference.
    block_dilations: np.ndarray

    @property
    def mean_block_dilation(self) -> float:
        return float(np.mean(self.block_dilations))

    def static_distribution(self, thresholds: np.ndarray) -> np.ndarray:
        """Fraction of blocks with dilation <= each threshold (Figure 5)."""
        return cumulative_distribution(self.block_dilations, None, thresholds)

    def dynamic_distribution(
        self, weights: dict[tuple[str, int], int] | np.ndarray,
        thresholds: np.ndarray,
    ) -> np.ndarray:
        """Execution-weighted fraction of blocks with dilation <= threshold.

        ``weights`` is either an array aligned with ``block_keys`` or a
        mapping from block key to dynamic execution count.
        """
        if isinstance(weights, dict):
            weights = np.asarray(
                [weights.get(key, 0) for key in self.block_keys], dtype=float
            )
        return cumulative_distribution(
            self.block_dilations, weights, thresholds
        )


def measure_dilation(reference: Binary, target: Binary) -> DilationInfo:
    """Compare two binaries of the same program block by block."""
    if reference.program_name != target.program_name:
        raise ModelError(
            f"binaries are for different programs: "
            f"{reference.program_name!r} vs {target.program_name!r}"
        )
    if reference.text_size == 0:
        raise ModelError("reference binary has no text")
    keys: list[tuple[str, int]] = []
    ratios: list[float] = []
    for image in reference.images:
        tgt = target.block_image(image.proc_name, image.block_id)
        keys.append((image.proc_name, image.block_id))
        ratios.append(tgt.size / image.size)
    return DilationInfo(
        text_dilation=target.text_size / reference.text_size,
        block_keys=tuple(keys),
        block_dilations=np.asarray(ratios, dtype=float),
    )


def cumulative_distribution(
    values: np.ndarray,
    weights: np.ndarray | None,
    thresholds: np.ndarray,
) -> np.ndarray:
    """Weighted CDF of ``values`` evaluated at ``thresholds``.

    With unit weights this is the static distribution of Figure 5; with
    dynamic execution counts, the dynamic distribution.  An all-zero
    weight vector (no block ever executed) raises :class:`ModelError`.
    """
    values = np.asarray(values, dtype=float)
    if weights is None:
        weights = np.ones_like(values)
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise ModelError("weights sum to zero; distribution undefined")
    order = np.argsort(values)
    sorted_values = values[order]
    cum = np.cumsum(weights[order]) / total
    out = np.empty(len(thresholds), dtype=float)
    for i, threshold in enumerate(np.asarray(thresholds, dtype=float)):
        idx = np.searchsorted(sorted_values, threshold, side="right")
        out[i] = cum[idx - 1] if idx else 0.0
    return out
