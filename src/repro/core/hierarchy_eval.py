"""System performance: processor cycles plus cache stall cycles.

The hierarchical evaluation of Section 3.2: "The overall execution time
consists of the processor cycles and the stall cycles from each of the
caches.  We independently determine the processor cycles for a VLIW
processor and the stall cycles for each cache configuration."  As the
paper notes, ignoring overlap between execution and miss latency is a
deliberate accuracy/throughput trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.trace.events import EventTrace
from repro.vliwcomp.compile import CompiledProgram


@dataclass(frozen=True)
class MissPenalties:
    """Stall cycles charged per miss at each hierarchy level.

    L1 misses that hit in the unified cache cost ``l1_miss``; unified
    misses additionally cost ``l2_miss`` (main-memory latency).
    """

    l1_miss: int = 10
    l2_miss: int = 50

    def __post_init__(self) -> None:
        if self.l1_miss < 0 or self.l2_miss < 0:
            raise ConfigurationError("miss penalties must be non-negative")


@dataclass(frozen=True)
class SystemEvaluation:
    """Cycle breakdown of one (processor, memory hierarchy) design."""

    processor_cycles: int
    icache_stalls: float
    dcache_stalls: float
    unified_stalls: float

    @property
    def total_cycles(self) -> float:
        return (
            self.processor_cycles
            + self.icache_stalls
            + self.dcache_stalls
            + self.unified_stalls
        )

    @property
    def memory_stall_fraction(self) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return (total - self.processor_cycles) / total


def processor_cycles(compiled: CompiledProgram, events: EventTrace) -> int:
    """Issue cycles the processor spends: sum over visits of block cycles.

    This is the schedule-length-times-profile estimate the paper's
    processor evaluator uses (Section 3.2: "estimated using schedule
    lengths and profile statistics").
    """
    frequencies = events.visit_frequencies()
    total = 0
    for index, count in enumerate(frequencies.tolist()):
        if not count:
            continue
        proc_name, block_id = events.blocks[index]
        total += count * compiled.block(proc_name, block_id).issue_cycles
    return total


def evaluate_system(
    compiled: CompiledProgram,
    events: EventTrace,
    icache_misses: float,
    dcache_misses: float,
    unified_misses: float,
    penalties: MissPenalties = MissPenalties(),
) -> SystemEvaluation:
    """Combine subsystem evaluations into total execution cycles."""
    return SystemEvaluation(
        processor_cycles=processor_cycles(compiled, events),
        icache_stalls=icache_misses * penalties.l1_miss,
        dcache_stalls=dcache_misses * penalties.l1_miss,
        unified_stalls=unified_misses * penalties.l2_miss,
    )
