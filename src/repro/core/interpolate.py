"""Lemma 2: interpolation of a function linear in another (Eq 4.11).

"A linear interpolation is not suitable because the misses are a very
nonlinear function of line size" (Section 4.3.1): instead, misses are
treated as a *linear function of the AHH collision count* (Eq 4.7 makes
the steady-state miss component linear in Coll), and Eq (4.11) recovers
the line through two known (Coll, misses) points.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ModelError


def interpolate_linear_in(
    f1: float, g1: float, f2: float, g2: float, g: float
) -> float:
    """Evaluate f(x) at the point where g(x) = ``g``, per Eq (4.11).

    Given f linear in g and two samples (g1, f1), (g2, f2):

        f = (f1 - f2)/(g1 - g2) * g + (f2*g1 - f1*g2)/(g1 - g2)

    Degenerate case: when g1 == g2 the line is undetermined; if the f
    samples also agree we return that value, otherwise raise.
    """
    if math.isclose(g1, g2, rel_tol=1e-12, abs_tol=1e-12):
        if math.isclose(f1, f2, rel_tol=1e-9, abs_tol=1e-9):
            return f1
        raise ModelError(
            "interpolation abscissae coincide "
            f"(g1 = g2 = {g1}) but ordinates differ ({f1} vs {f2})"
        )
    slope = (f1 - f2) / (g1 - g2)
    intercept = (f2 * g1 - f1 * g2) / (g1 - g2)
    return slope * g + intercept


def interpolate_linear_in_array(f1, g1, f2, g2, g) -> np.ndarray:
    """Elementwise :func:`interpolate_linear_in` over arrays.

    The batched exploration path's counterpart: the same line-through-two-
    points arithmetic applied per element, with the same degenerate-case
    semantics (coinciding abscissae return the shared ordinate, or raise
    when the ordinates disagree).
    """
    f1 = np.asarray(f1, dtype=np.float64)
    g1 = np.asarray(g1, dtype=np.float64)
    f2 = np.asarray(f2, dtype=np.float64)
    g2 = np.asarray(g2, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64)
    # math.isclose(a, b, rel_tol=r, abs_tol=t): |a-b| <= max(r*max(|a|,|b|), t)
    g_close = np.abs(g1 - g2) <= np.maximum(
        1e-12 * np.maximum(np.abs(g1), np.abs(g2)), 1e-12
    )
    if g_close.any():
        f_close = np.abs(f1 - f2) <= np.maximum(
            1e-9 * np.maximum(np.abs(f1), np.abs(f2)), 1e-9
        )
        if (g_close & ~f_close).any():
            raise ModelError(
                "interpolation abscissae coincide but ordinates differ "
                "(batched query)"
            )
    denom = np.where(g_close, 1.0, g1 - g2)
    slope = (f1 - f2) / denom
    intercept = (f2 * g1 - f1 * g2) / denom
    return np.where(g_close, f1, slope * g + intercept)
