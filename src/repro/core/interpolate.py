"""Lemma 2: interpolation of a function linear in another (Eq 4.11).

"A linear interpolation is not suitable because the misses are a very
nonlinear function of line size" (Section 4.3.1): instead, misses are
treated as a *linear function of the AHH collision count* (Eq 4.7 makes
the steady-state miss component linear in Coll), and Eq (4.11) recovers
the line through two known (Coll, misses) points.
"""

from __future__ import annotations

import math

from repro.errors import ModelError


def interpolate_linear_in(
    f1: float, g1: float, f2: float, g2: float, g: float
) -> float:
    """Evaluate f(x) at the point where g(x) = ``g``, per Eq (4.11).

    Given f linear in g and two samples (g1, f1), (g2, f2):

        f = (f1 - f2)/(g1 - g2) * g + (f2*g1 - f1*g2)/(g1 - g2)

    Degenerate case: when g1 == g2 the line is undetermined; if the f
    samples also agree we return that value, otherwise raise.
    """
    if math.isclose(g1, g2, rel_tol=1e-12, abs_tol=1e-12):
        if math.isclose(f1, f2, rel_tol=1e-9, abs_tol=1e-9):
            return f1
        raise ModelError(
            "interpolation abscissae coincide "
            f"(g1 = g2 = {g1}) but ordinates differ ({f1} vs {f2})"
        )
    slope = (f1 - f2) / (g1 - g2)
    intercept = (f2 * g1 - f1 * g2) / (g1 - g2)
    return slope * g + intercept
