"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library-level failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class ProgramStructureError(ReproError):
    """A :class:`~repro.isa.program.Program` violates a structural invariant."""


class ScheduleError(ReproError):
    """The list scheduler could not produce a legal schedule."""


class EncodingError(ReproError):
    """The assembler could not encode an instruction with any template."""


class TraceError(ReproError):
    """An address or event trace is malformed or inconsistent."""


class ModelError(ReproError):
    """An analytic model was evaluated outside its domain of validity."""


class ExplorationError(ReproError):
    """The design-space exploration layer hit an unrecoverable condition."""


class RuntimeExecutionError(ReproError):
    """The fault-tolerant run-execution layer exhausted its recovery
    options (retries spent, pool unrecoverable with fallback disabled,
    or inconsistent job submissions)."""


class EvaluationCacheError(ReproError):
    """The persistent evaluation cache is corrupt or unusable."""


class ServiceError(ReproError):
    """The evaluation service (store, job queue or HTTP API) failed:
    a malformed job spec, an unusable database, a job that exhausted its
    attempts, or a client request the server rejected."""


class StaleLeaseError(ServiceError):
    """A worker acted on a job lease it no longer holds: the lease
    expired and the job was re-leased (or finished) elsewhere, so the
    worker's fencing token is stale.  The action is rejected; exactly
    one execution's effects survive."""
