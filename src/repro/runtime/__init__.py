"""Run-execution layer: fault-tolerant parallelism plus observability.

:mod:`repro.runtime.executor` wraps every process-pool call site in the
library (design-space sweeps, evaluator priming, pipeline priming) in a
single fault-tolerant executor — per-job timeouts, bounded retry with
backoff, serial in-process fallback when a worker pool breaks, and
submission-order-independent result folding.

:mod:`repro.runtime.journal` is the matching observability layer: a
structured JSON-lines run journal recording per-pass wall times, trace
lengths, retry/fallback events, worker utilization and evaluation-cache
hit rates, with a ``repro report``-compatible summary.
"""

from repro.runtime.executor import (
    ExecutorPolicy,
    FaultPlan,
    InjectedWorkerFault,
    Job,
    JobResult,
    run_jobs,
)
from repro.runtime.journal import (
    NullJournal,
    RunJournal,
    active_journal,
    resolve_journal,
    set_active_journal,
    use_journal,
)

__all__ = [
    "ExecutorPolicy",
    "FaultPlan",
    "InjectedWorkerFault",
    "Job",
    "JobResult",
    "NullJournal",
    "RunJournal",
    "active_journal",
    "resolve_journal",
    "run_jobs",
    "set_active_journal",
    "use_journal",
]
