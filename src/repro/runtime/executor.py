"""Fault-tolerant parallel job execution (the run-execution layer).

Every process-pool call site in the library routes through
:func:`run_jobs`, which adds what a bare ``ProcessPoolExecutor`` lacks:

* **bounded retry with backoff** — a worker raising mid-run costs one
  attempt, not the whole sweep;
* **per-job timeout** — a hung worker is detected, its pool replaced,
  and the job retried (running futures cannot be cancelled, so the pool
  is the unit of eviction);
* **graceful degradation** — if a worker process dies
  (``BrokenProcessPool``) or the pool cannot start at all, the remaining
  jobs run in-process serially with the same retry accounting, so runs
  finish with identical results instead of crashing;
* **submission-order-independent folding** — results are keyed by job,
  so callers fold them in any order and one failed job fails only its
  own key;
* **lazy argument materialization** — a job may carry an
  ``args_factory`` called only at submit time, and the parent's copy of
  the arguments is dropped right after submission.  Combined with the
  bounded in-flight window (``max_workers + 1`` submissions
  outstanding), parent-side residency of large arguments is a handful
  of jobs' worth, never the whole batch;
* **deterministic fault injection** (:class:`FaultPlan`) — tests and CI
  can crash, kill or hang specific attempts and assert the journal and
  the recovered results;
* **zero-copy argument shipping** (:class:`SharedSegmentManager`) —
  large read-only arrays (trace ``starts``/``sizes``) are materialized
  once into a ``multiprocessing.shared_memory`` segment and workers map
  them in place via a tiny picklable :class:`SharedArrayHandle`,
  instead of re-pickling megabytes per job.  Segments are refcounted in
  the parent, which owns the unlink: release runs in the caller's
  ``finally``, so killed workers, pool restarts and serial fallback all
  leave ``/dev/shm`` clean (an ``atexit`` sweep is the backstop).

Everything the executor does is recorded in the active
:class:`~repro.runtime.journal.RunJournal` (retries, timeouts,
fallbacks, per-job wall time, end-of-run worker utilization, shm
segment lifecycle).
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Hashable, Iterable, Mapping

import numpy as np

from repro.errors import RuntimeExecutionError
from repro.runtime.journal import RunJournal, resolve_journal

__all__ = [
    "ExecutorPolicy",
    "FaultPlan",
    "InjectedWorkerFault",
    "Job",
    "JobResult",
    "SharedArrayHandle",
    "SharedSegmentManager",
    "TRACE_SHIPPING_MODES",
    "run_jobs",
    "segment_manager",
    "shm_available",
]

#: Clock slack when deciding whether an in-flight job has timed out.
_TIMEOUT_SLACK = 1e-3

#: Valid values of :attr:`ExecutorPolicy.trace_shipping`.
TRACE_SHIPPING_MODES = ("auto", "shm", "pickle")


class InjectedWorkerFault(RuntimeError):
    """Raised (inside a worker) by deterministic fault injection."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for tests and CI robustness checks.

    Attempts numbered ``0 .. times-1`` of every job whose ``str(key)``
    contains ``match`` fail with the chosen ``kind``:

    * ``"raise"`` — the worker raises :class:`InjectedWorkerFault`;
    * ``"exit"``  — the worker process dies (``os._exit``), breaking the
      pool exactly like a real worker crash;
    * ``"hang"``  — the worker sleeps past any reasonable timeout.

    In-process (serial) execution degrades every kind to ``"raise"`` so
    injection can never kill or hang the parent.
    """

    kind: str = "raise"
    match: str = ""
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "exit", "hang"):
            raise RuntimeExecutionError(
                f"unknown fault kind {self.kind!r}; "
                "expected 'raise', 'exit' or 'hang'"
            )

    def fires(self, key: Hashable, attempt: int) -> bool:
        """Whether this plan faults the given attempt of the given job."""
        return attempt < self.times and self.match in str(key)


@dataclass(frozen=True)
class ExecutorPolicy:
    """Knobs of the fault-tolerant executor.

    ``retries`` counts *re*-attempts: a job may run ``retries + 1``
    times before it is declared failed.  ``timeout`` is per attempt, in
    seconds (None disables; unenforceable in serial fallback).
    ``backoff`` is the base of an exponential delay between attempts.

    ``trace_shipping`` selects how callers ship large read-only arrays
    to workers: ``"auto"`` prefers zero-copy shared memory when the
    platform supports it, ``"shm"`` requires it, ``"pickle"`` forces the
    legacy per-job pickling path.  The executor itself only validates
    and carries the knob; call sites (e.g.
    :func:`repro.cache.sweep.sweep_design_space`) resolve it.

    ``count_parallelism`` fans the per-line-size stack-distance
    *counting* of a multi-line-size batch out over this many workers
    (shm-backed streams, deterministic fold order); 1 keeps counting
    in-process.  Like ``trace_shipping`` it is carried here and
    resolved by the call sites
    (:class:`repro.cache.designspace.DesignSpaceSimulator`).
    """

    max_workers: int | None = None
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.05
    serial_fallback: bool = True
    fault: FaultPlan | None = None
    trace_shipping: str = "auto"
    count_parallelism: int = 1

    def __post_init__(self) -> None:
        if self.trace_shipping not in TRACE_SHIPPING_MODES:
            raise RuntimeExecutionError(
                f"unknown trace shipping mode {self.trace_shipping!r}; "
                f"expected one of {', '.join(TRACE_SHIPPING_MODES)}"
            )
        if self.count_parallelism < 1:
            raise RuntimeExecutionError(
                f"count_parallelism must be >= 1, got {self.count_parallelism}"
            )

    def fault_kind(self, key: Hashable, attempt: int) -> str | None:
        """The injected fault kind for this attempt, or None."""
        if self.fault is not None and self.fault.fires(key, attempt):
            return self.fault.kind
        return None

    def with_workers(self, max_workers: int | None) -> "ExecutorPolicy":
        """This policy, with ``max_workers`` filled in when unset."""
        if self.max_workers is not None or max_workers is None:
            return self
        return replace(self, max_workers=max_workers)


@dataclass(frozen=True)
class Job:
    """One unit of work: a picklable function plus its arguments.

    ``args_factory`` defers argument materialization to submit time (and
    re-materializes on retry); it runs in the parent, so it need not be
    picklable — only its return value crosses the process boundary.
    """

    key: Hashable
    fn: Callable[..., Any]
    args: tuple = ()
    args_factory: Callable[[], tuple] | None = None

    def materialize(self) -> tuple:
        """The job's argument tuple (built fresh when a factory is set)."""
        if self.args_factory is not None:
            return tuple(self.args_factory())
        return self.args


@dataclass
class JobResult:
    """Outcome of one job: a value or an error, plus accounting."""

    key: Hashable
    value: Any = None
    error: str | None = None
    attempts: int = 1
    where: str = "worker"
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the job produced a value."""
        return self.error is None


# -- zero-copy shared-memory shipping ----------------------------------


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership of it.

    Python 3.13 grew ``track=False`` for exactly this; on older runtimes
    an attach silently registers the segment with the resource tracker,
    which would unlink it when *this* process exits — yanking it out
    from under the owning parent.  Unregister-after-attach is the usual
    workaround, but the tracker's registry is a set shared across forked
    workers, so the extra unregister steals the creator's registration
    and the creator's own unlink then trips a tracker KeyError.  Instead
    the register call is suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


_ATTACH_LOCK = threading.Lock()


_SHM_PROBE: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed once, cached)."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            _SHM_PROBE = True
        except Exception:  # noqa: BLE001 - any failure means unavailable
            _SHM_PROBE = False
    return _SHM_PROBE


@dataclass(frozen=True)
class SharedArrayHandle:
    """Tiny picklable reference to numpy arrays living in one segment.

    ``fields`` holds ``(name, dtype_str, shape, offset)`` per array.
    Workers call :meth:`open` and index the attachment by field name;
    the views are read-only (the segment is shared by many workers) and
    valid only inside the ``with`` block.
    """

    name: str
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]
    nbytes: int

    def open(self) -> "_AttachedArrays":
        """Context manager mapping the segment's arrays (zero-copy)."""
        return _AttachedArrays(self)


class _AttachedArrays:
    """One process's attachment to a :class:`SharedArrayHandle`."""

    def __init__(self, handle: SharedArrayHandle):
        self._handle = handle
        self._segment: shared_memory.SharedMemory | None = None
        self._arrays: dict[str, np.ndarray] = {}

    def __enter__(self) -> "_AttachedArrays":
        self._segment = _attach_segment(self._handle.name)
        for field, dtype, shape, offset in self._handle.fields:
            view = np.ndarray(
                shape,
                dtype=np.dtype(dtype),
                buffer=self._segment.buf,
                offset=offset,
            )
            view.flags.writeable = False
            self._arrays[field] = view
        return self

    def __getitem__(self, field: str) -> np.ndarray:
        return self._arrays[field]

    def __exit__(self, *exc: Any) -> None:
        # Views into the buffer must be gone before close(): exporting a
        # live memoryview makes BufferError ("cannot close exported
        # pointers exist").
        self._arrays.clear()
        segment, self._segment = self._segment, None
        if segment is not None:
            segment.close()


def _align(offset: int) -> int:
    return (offset + 63) & ~63


class SharedSegmentManager:
    """Parent-side registry of refcounted shared-memory segments.

    ``acquire(key, arrays)`` materializes the arrays into one segment
    (or bumps the refcount of the existing segment for ``key``) and
    returns a :class:`SharedArrayHandle`; ``release(key)`` drops a
    reference and unlinks on the last one.  Callers pair the two in
    ``try/finally``, so every exit path — worker kills, pool restarts,
    serial fallback, exceptions — unlinks in the parent.  An ``atexit``
    sweep backstops anything still held when the process ends.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # key -> [segment, handle, refcount]
        self._segments: dict[Hashable, list[Any]] = {}

    def acquire(
        self,
        key: Hashable,
        arrays: Mapping[str, np.ndarray],
        journal: RunJournal | None = None,
    ) -> SharedArrayHandle:
        """A handle for ``arrays`` under ``key``, creating or reusing."""
        journal = resolve_journal(journal)
        with self._lock:
            entry = self._segments.get(key)
            if entry is not None:
                entry[2] += 1
                journal.record(
                    "shm_segment",
                    action="reuse",
                    key=str(key),
                    segment=entry[1].name,
                    bytes=entry[1].nbytes,
                    refs=entry[2],
                )
                return entry[1]
            fields = []
            offset = 0
            for field, array in arrays.items():
                array = np.ascontiguousarray(array)
                offset = _align(offset)
                fields.append(
                    (field, array.dtype.str, tuple(array.shape), offset)
                )
                offset += array.nbytes
            segment = shared_memory.SharedMemory(
                create=True, size=max(offset, 1)
            )
            for (field, dtype, shape, off), array in zip(
                fields, arrays.values()
            ):
                view = np.ndarray(
                    shape,
                    dtype=np.dtype(dtype),
                    buffer=segment.buf,
                    offset=off,
                )
                view[...] = array
                del view
            handle = SharedArrayHandle(
                name=segment.name, fields=tuple(fields), nbytes=offset
            )
            self._segments[key] = [segment, handle, 1]
            journal.record(
                "shm_segment",
                action="create",
                key=str(key),
                segment=handle.name,
                bytes=handle.nbytes,
                refs=1,
            )
            return handle

    def release(
        self, key: Hashable, journal: RunJournal | None = None
    ) -> None:
        """Drop one reference; the last one unlinks the segment."""
        journal = resolve_journal(journal)
        with self._lock:
            entry = self._segments.get(key)
            if entry is None:
                return
            entry[2] -= 1
            if entry[2] > 0:
                return
            del self._segments[key]
            segment, handle = entry[0], entry[1]
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        journal.record(
            "shm_segment",
            action="unlink",
            key=str(key),
            segment=handle.name,
            bytes=handle.nbytes,
        )

    def active(self) -> dict[Hashable, str]:
        """Currently held segments, ``{key: segment name}`` (for tests)."""
        with self._lock:
            return {key: entry[1].name for key, entry in self._segments.items()}

    def shutdown(self) -> None:
        """Unlink every held segment (atexit backstop)."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
        for segment, _, _ in entries:
            try:
                segment.close()
                segment.unlink()
            except Exception:  # noqa: BLE001 - best effort at exit
                pass


_MANAGER = SharedSegmentManager()
atexit.register(_MANAGER.shutdown)


def segment_manager() -> SharedSegmentManager:
    """The process-wide segment manager (one per parent process)."""
    return _MANAGER


def _invoke(fault_kind: str | None, fn: Callable[..., Any], *args: Any) -> Any:
    """Worker-side wrapper: apply an injected fault, then run the job."""
    if fault_kind == "raise":
        raise InjectedWorkerFault("injected worker fault")
    if fault_kind == "exit":
        os._exit(13)
    if fault_kind == "hang":  # pragma: no cover - killed by the parent
        time.sleep(3600)
    return fn(*args)


def run_jobs(
    jobs: Iterable[Job],
    policy: ExecutorPolicy | None = None,
    journal: RunJournal | None = None,
) -> dict[Hashable, JobResult]:
    """Run every job, fault-tolerantly; returns ``{job.key: JobResult}``.

    With ``policy.max_workers`` > 1 and more than one job the jobs run
    in worker processes; otherwise in-process.  Every job's key appears
    in the result exactly once — failed jobs carry ``error`` instead of
    ``value`` — so folding is independent of completion order.
    """
    jobs = list(jobs)
    policy = policy if policy is not None else ExecutorPolicy()
    journal = resolve_journal(journal)
    if not jobs:
        return {}
    keys = [job.key for job in jobs]
    if len(set(keys)) != len(keys):
        raise RuntimeExecutionError("job keys must be unique")
    workers = policy.max_workers
    if workers is None or workers <= 1 or len(jobs) == 1:
        return _run_serial(
            deque((job, 0) for job in jobs), policy, journal, where="serial"
        )
    return _ParallelRun(jobs, policy, journal).run()


def _run_serial(
    items: "deque[tuple[Job, int]]",
    policy: ExecutorPolicy,
    journal: RunJournal,
    where: str,
) -> dict[Hashable, JobResult]:
    """In-process execution with the same retry/fault accounting."""
    results: dict[Hashable, JobResult] = {}
    for job, first_attempt in items:
        attempt = first_attempt
        start = time.perf_counter()
        while True:
            try:
                # In-process, every injected fault kind becomes a raise:
                # killing or hanging the parent defeats the fallback.
                kind = policy.fault_kind(job.key, attempt)
                if kind is not None:
                    raise InjectedWorkerFault(
                        f"injected {kind} fault (in-process)"
                    )
                value = job.fn(*job.materialize())
            except Exception as exc:  # noqa: BLE001 - jobs may raise anything
                if attempt >= policy.retries:
                    wall = time.perf_counter() - start
                    results[job.key] = JobResult(
                        job.key,
                        error=repr(exc),
                        attempts=attempt + 1,
                        where=where,
                        wall_s=wall,
                    )
                    journal.record(
                        "job_failed",
                        key=str(job.key),
                        where=where,
                        attempts=attempt + 1,
                        error=repr(exc),
                    )
                    break
                delay = policy.backoff * (2 ** attempt)
                journal.record(
                    "retry",
                    key=str(job.key),
                    attempt=attempt + 1,
                    where=where,
                    error=repr(exc),
                    backoff_s=round(delay, 6),
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
            else:
                wall = time.perf_counter() - start
                results[job.key] = JobResult(
                    job.key,
                    value=value,
                    attempts=attempt + 1,
                    where=where,
                    wall_s=wall,
                )
                journal.record(
                    "job",
                    key=str(job.key),
                    where=where,
                    attempts=attempt + 1,
                    wall_s=round(wall, 6),
                )
                break
    return results


class _ParallelRun:
    """State of one parallel :func:`run_jobs` invocation."""

    def __init__(
        self, jobs: list[Job], policy: ExecutorPolicy, journal: RunJournal
    ):
        self.policy = policy
        self.journal = journal
        self.queue: deque[tuple[Job, int]] = deque((job, 0) for job in jobs)
        self.results: dict[Hashable, JobResult] = {}
        self.workers = min(policy.max_workers or 1, len(jobs))
        self.pool: ProcessPoolExecutor | None = None
        # future -> (job, attempt, submit time)
        self.in_flight: dict[Any, tuple[Job, int, float]] = {}
        self.busy_s = 0.0
        self.t0 = time.perf_counter()

    # -- pool lifecycle -------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor | None:
        try:
            return ProcessPoolExecutor(max_workers=self.workers)
        except Exception as exc:  # noqa: BLE001 - any start failure degrades
            self.journal.record("pool_start_failed", error=repr(exc))
            return None

    def _abandon_pool(self, terminate: bool) -> None:
        pool, self.pool = self.pool, None
        if pool is None:
            return
        if terminate:
            # A hung worker cannot be cancelled through the public API;
            # killing its process is the only eviction mechanism (SIGKILL,
            # so a blocking shutdown below is guaranteed to return).
            processes = getattr(pool, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.kill()
                except Exception:  # noqa: BLE001 - already-dead processes
                    pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken pools may refuse
            pass

    # -- main loop ------------------------------------------------------

    def run(self) -> dict[Hashable, JobResult]:
        self.pool = self._new_pool()
        if self.pool is None:
            return self._degrade("pool_start_failed")
        while self.queue or self.in_flight:
            self._top_up()
            if self.pool is None:
                return self._degrade("broken_pool")
            if self.in_flight:
                self._drain()
                if self.pool is None:
                    return self._degrade("broken_pool")
        self._record_utilization()
        self._abandon_pool(terminate=False)
        return self.results

    def _top_up(self) -> None:
        """Submit jobs up to the bounded in-flight window.

        Arguments are materialized here, per submission, and the local
        reference dropped immediately — the window (not the batch size)
        bounds how many jobs' arguments the parent holds at once.
        """
        while self.queue and len(self.in_flight) < self.workers + 1:
            job, attempt = self.queue.popleft()
            kind = self.policy.fault_kind(job.key, attempt)
            args = job.materialize()
            try:
                future = self.pool.submit(_invoke, kind, job.fn, *args)
            except (BrokenProcessPool, RuntimeError):
                self.queue.appendleft((job, attempt))
                self._abandon_pool(terminate=False)
                return
            finally:
                del args
            self.in_flight[future] = (job, attempt, time.perf_counter())

    def _drain(self) -> None:
        """Wait for at least one completion (or a timeout) and fold it."""
        wait_timeout = None
        if self.policy.timeout is not None:
            earliest = min(t for _, _, t in self.in_flight.values())
            wait_timeout = max(
                0.0, earliest + self.policy.timeout - time.perf_counter()
            )
        done, _ = wait(
            set(self.in_flight),
            timeout=wait_timeout,
            return_when=FIRST_COMPLETED,
        )
        now = time.perf_counter()
        if not done:
            self._handle_timeouts(now)
            return
        for future in done:
            job, attempt, submitted = self.in_flight.pop(future)
            wall = now - submitted
            try:
                value = future.result()
            except BrokenProcessPool:
                # A worker died; the pool (and every sibling future) is
                # unusable.  Requeue and let the caller degrade.
                self.queue.appendleft((job, attempt))
                self._abandon_pool(terminate=False)
                return
            except Exception as exc:  # noqa: BLE001 - worker exceptions
                self.busy_s += wall
                self._failed_attempt(job, attempt, repr(exc))
                continue
            self.busy_s += wall
            self.results[job.key] = JobResult(
                job.key,
                value=value,
                attempts=attempt + 1,
                where="worker",
                wall_s=wall,
            )
            self.journal.record(
                "job",
                key=str(job.key),
                where="worker",
                attempts=attempt + 1,
                wall_s=round(wall, 6),
            )

    def _failed_attempt(self, job: Job, attempt: int, error: str) -> None:
        if attempt >= self.policy.retries:
            self.results[job.key] = JobResult(
                job.key,
                error=error,
                attempts=attempt + 1,
                where="worker",
            )
            self.journal.record(
                "job_failed",
                key=str(job.key),
                where="worker",
                attempts=attempt + 1,
                error=error,
            )
            return
        delay = self.policy.backoff * (2 ** attempt)
        self.journal.record(
            "retry",
            key=str(job.key),
            attempt=attempt + 1,
            where="worker",
            error=error,
            backoff_s=round(delay, 6),
        )
        if delay > 0:
            time.sleep(delay)
        self.queue.append((job, attempt + 1))

    def _handle_timeouts(self, now: float) -> None:
        assert self.policy.timeout is not None
        expired = [
            future
            for future, (_, _, submitted) in self.in_flight.items()
            if now - submitted >= self.policy.timeout - _TIMEOUT_SLACK
        ]
        if not expired:
            return
        for future in expired:
            job, attempt, _ = self.in_flight.pop(future)
            self.busy_s += self.policy.timeout
            self.journal.record(
                "timeout",
                key=str(job.key),
                attempt=attempt + 1,
                timeout_s=self.policy.timeout,
            )
            self._failed_attempt(
                job, attempt, f"timed out after {self.policy.timeout}s"
            )
        # The expired jobs' workers are still running (possibly hung):
        # replace the whole pool and requeue the innocent in-flight jobs
        # at their current attempt.
        requeued = list(self.in_flight.values())
        self.in_flight.clear()
        for job, attempt, _ in requeued:
            self.queue.append((job, attempt))
        self._abandon_pool(terminate=True)
        self.journal.record(
            "pool_restart", reason="timeout", requeued=len(requeued)
        )
        self.pool = self._new_pool()

    # -- degradation and accounting ------------------------------------

    def _degrade(self, reason: str) -> dict[Hashable, JobResult]:
        for job, attempt, _ in self.in_flight.values():
            self.queue.append((job, attempt))
        self.in_flight.clear()
        self._abandon_pool(terminate=False)
        remaining = len(self.queue)
        self.journal.record("fallback", reason=reason, remaining=remaining)
        if not self.policy.serial_fallback:
            self._record_utilization()
            raise RuntimeExecutionError(
                f"worker pool failed ({reason}) with {remaining} job(s) "
                "remaining and serial fallback disabled"
            )
        self.results.update(
            _run_serial(
                self.queue, self.policy, self.journal, where="serial-fallback"
            )
        )
        self._record_utilization()
        return self.results

    def _record_utilization(self) -> None:
        wall = time.perf_counter() - self.t0
        capacity = wall * self.workers
        self.journal.record(
            "worker_util",
            workers=self.workers,
            busy_s=round(self.busy_s, 6),
            wall_s=round(wall, 6),
            utilization=round(
                min(1.0, self.busy_s / capacity) if capacity > 0 else 0.0, 4
            ),
        )
