"""Structured run journal: the observability half of the runtime layer.

A :class:`RunJournal` is an append-only event log.  Every event is one
JSON object carrying an ``event`` type tag, a monotonically increasing
``seq`` number and a wall-clock ``ts``; with a ``path`` the events are
also appended to disk as JSON lines, flushed per event, so a killed run
still leaves a readable journal behind.

Event vocabulary used by the library (all optional — the journal accepts
any event type):

``pass``
    One single-pass cache simulation: ``role``, ``line_size``,
    ``trace_ranges``, ``wall_s``, ``where`` (``"serial"``/``"worker"``).
``stackdist``
    One stack-distance kernel invocation (one stack family inside a
    batch consume): ``line_size``, ``nsets``, ``refs``, ``path``
    (``"scan"``/``"scan+expand"``/``"scan+expand+dominance"``/...),
    ``window``, ``residues``, ``wall_s``.  Only recorded in-process
    (serial passes); worker-side events do not cross the pool.
``job`` / ``job_failed``
    One executor work unit finishing: ``key``, ``attempts``, ``wall_s``,
    ``where``; failures carry ``error``.
``retry`` / ``timeout``
    A failed or expired attempt that will be retried: ``key``,
    ``attempt``, ``error``/``timeout_s``, ``backoff_s``.
``fallback`` / ``pool_start_failed`` / ``pool_restart``
    Pool-level degradation events (``reason``, ``remaining``).
``checkpoint``
    Sweep checkpointing: ``action`` (``"hit"``/``"miss"``/``"store"``),
    ``key``.
``designspace``
    One whole-design-space tower consume (one shared sort serving a
    ladder of line sizes): ``line_sizes``, ``refs``, ``mode``
    (``"links"``/``"streams"``, prefixed ``"fused-"`` when the tower's
    counting ran as one fused dispatch, or ``"parallel"`` when the
    per-size counting fanned out over workers), ``sorts``, ``splits``,
    ``wall_s``.
``stackdist_fused``
    One fused stack-distance dispatch (every family of a tower counted
    by one kernel pass, :func:`repro.cache.stackdist.stack_distances_fused`):
    ``line_sizes``, ``problems``, ``refs``, ``sorted_refs``,
    ``dominance_refs``, ``window``, ``residues``, ``by_path``, per-tier
    ``sort_s``/``scan_s``/``expand_s``/``dominance_s``, ``wall_s``.
``shm_segment``
    Shared-memory segment lifecycle in the parent: ``action``
    (``"create"``/``"reuse"``/``"unlink"``), ``key``, ``segment``,
    ``bytes``, ``refs``.
``shm_attach`` / ``trace_shipping``
    Per-job shipping accounting, recorded parent-side at submit:
    ``shm_attach`` carries ``key``, ``bytes_shipped`` (the pickled
    handle) and ``bytes_mapped`` (the segment the worker maps);
    ``trace_shipping`` carries the resolved ``mode`` and ``jobs``.
``cache``
    An :class:`~repro.explore.evalcache.EvaluationCache` snapshot:
    ``hits``, ``misses``, ``hit_rate``, ``entries``.
``worker_util``
    End-of-run pool accounting: ``workers``, ``busy_s``, ``wall_s``,
    ``utilization``.
``lease``
    Job-lease lifecycle in the evaluation service: ``action``
    (``"grant"``/``"renew"``/``"expired"``), ``id`` (the job),
    ``owner``, ``token`` (the fencing token), ``expires``.
``worker``
    Fleet-worker lifecycle: ``action`` (``"register"``/``"start"``/
    ``"claimed"``/``"completed"``/``"failed"``/``"stop"``/
    ``"reaped"``), ``id``, plus action-specific fields.
``fence_rejected``
    A stale fencing token was refused: ``id`` (the job), ``token``.
    The presence of these events is *correct* behaviour under lease
    expiry — the absence of double execution is what they prove.

The module also keeps a process-wide *active* journal so deep layers
(sweeps, evaluators, executors) can record events without every caller
threading a journal object through; ``repro --journal PATH`` installs
one for the duration of a CLI command.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = [
    "RunJournal",
    "NullJournal",
    "active_journal",
    "resolve_journal",
    "set_active_journal",
    "use_journal",
]


class RunJournal:
    """Append-only structured event log (JSON lines)."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.events: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def record(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one event; returns the recorded entry."""
        entry: dict[str, Any] = {"event": event, **fields}
        with self._lock:
            entry["seq"] = len(self.events)
            entry["ts"] = round(time.time(), 6)
            self.events.append(entry)
            if self._handle is not None:
                json.dump(entry, self._handle, default=str)
                self._handle.write("\n")
                self._handle.flush()
        return entry

    @contextmanager
    def timed(self, event: str, **fields: Any) -> Iterator[dict[str, Any]]:
        """Record ``event`` with a measured ``wall_s`` when the block exits.

        Yields a mutable dict; keys added inside the block land in the
        recorded event.
        """
        extra: dict[str, Any] = {}
        start = time.perf_counter()
        try:
            yield extra
        finally:
            wall = time.perf_counter() - start
            self.record(event, **fields, **extra, wall_s=round(wall, 6))

    def observe_cache(self, cache: Any, label: str = "evalcache") -> None:
        """Snapshot an ``EvaluationCache``-style object's hit/miss stats."""
        stats = cache.stats() if hasattr(cache, "stats") else {
            "hits": getattr(cache, "hits", 0),
            "misses": getattr(cache, "misses", 0),
        }
        self.record("cache", label=label, **stats)

    def close(self) -> None:
        """Close the on-disk handle (in-memory events stay readable)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Reading back.
    # ------------------------------------------------------------------

    def select(self, event: str) -> list[dict[str, Any]]:
        """All events of one type, in order."""
        return [e for e in self.events if e.get("event") == event]

    @classmethod
    def load(cls, path: str | Path) -> "RunJournal":
        """Parse a JSON-lines journal back into memory (read-only)."""
        journal = cls()
        text = Path(path).read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"journal {path} line {lineno} is not valid JSON: {exc}"
                ) from exc
            journal.events.append(entry)
        return journal

    # ------------------------------------------------------------------
    # Summaries.
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Aggregate counts and timings across the recorded events."""
        passes = self.select("pass")
        kernels = self.select("stackdist")
        jobs = self.select("job")
        failed = self.select("job_failed")
        retries = self.select("retry")
        timeouts = self.select("timeout")
        fallbacks = self.select("fallback")
        checkpoints = self.select("checkpoint")
        caches = self.select("cache")
        utils = self.select("worker_util")
        summary: dict[str, Any] = {
            "events": len(self.events),
            "passes": {
                "count": len(passes),
                "wall_s": round(
                    sum(e.get("wall_s", 0.0) for e in passes), 6
                ),
                "trace_ranges": sum(
                    int(e.get("trace_ranges", 0)) for e in passes
                ),
                "by_where": _count_by(passes, "where"),
            },
            "stackdist": {
                "count": len(kernels),
                "wall_s": round(
                    sum(e.get("wall_s", 0.0) for e in kernels), 6
                ),
                "refs": sum(int(e.get("refs", 0)) for e in kernels),
                "by_path": _count_by(kernels, "path"),
                "residues": sum(int(e.get("residues", 0)) for e in kernels),
                "tiers": _tier_counts(_count_by(kernels, "path")),
            },
            "jobs": {
                "completed": len(jobs),
                "failed": len(failed),
                "retries": len(retries),
                "timeouts": len(timeouts),
                "wall_s": round(sum(e.get("wall_s", 0.0) for e in jobs), 6),
            },
            "fallbacks": _count_by(fallbacks, "reason"),
            "checkpoints": _count_by(checkpoints, "action"),
        }
        towers = self.select("designspace")
        if towers:
            summary["designspace"] = {
                "towers": len(towers),
                "line_sizes": sum(
                    len(e.get("line_sizes", ())) for e in towers
                ),
                "sorts": sum(int(e.get("sorts", 0)) for e in towers),
                "splits": sum(int(e.get("splits", 0)) for e in towers),
                "wall_s": round(
                    sum(e.get("wall_s", 0.0) for e in towers), 6
                ),
                "by_mode": _count_by(towers, "mode"),
            }
        fused = self.select("stackdist_fused")
        if fused:
            merged_paths: dict[str, int] = {}
            for e in fused:
                for name, n in e.get("by_path", {}).items():
                    merged_paths[name] = merged_paths.get(name, 0) + int(n)
            summary["stackdist_fused"] = {
                "dispatches": len(fused),
                "problems": sum(int(e.get("problems", 0)) for e in fused),
                "refs": sum(int(e.get("refs", 0)) for e in fused),
                "sorted_refs": sum(
                    int(e.get("sorted_refs", 0)) for e in fused
                ),
                "dominance_refs": sum(
                    int(e.get("dominance_refs", 0)) for e in fused
                ),
                "residues": sum(int(e.get("residues", 0)) for e in fused),
                "by_path": merged_paths,
                "tiers": _tier_counts(merged_paths),
                "sort_s": round(
                    sum(e.get("sort_s", 0.0) for e in fused), 6
                ),
                "scan_s": round(
                    sum(e.get("scan_s", 0.0) for e in fused), 6
                ),
                "expand_s": round(
                    sum(e.get("expand_s", 0.0) for e in fused), 6
                ),
                "dominance_s": round(
                    sum(e.get("dominance_s", 0.0) for e in fused), 6
                ),
                "wall_s": round(
                    sum(e.get("wall_s", 0.0) for e in fused), 6
                ),
            }
        attaches = self.select("shm_attach")
        segments = self.select("shm_segment")
        if attaches or segments:
            shipped = sum(int(e.get("bytes_shipped", 0)) for e in attaches)
            mapped = sum(int(e.get("bytes_mapped", 0)) for e in attaches)
            summary["trace_shipping"] = {
                "shm_jobs": len(attaches),
                "bytes_shipped": shipped,
                "bytes_mapped": mapped,
                "bytes_saved": max(0, mapped - shipped),
                "segments": _count_by(segments, "action"),
            }
        if caches:
            summary["caches"] = {
                e.get("label", "evalcache"): {
                    k: e[k]
                    for k in ("hits", "misses", "hit_rate", "entries")
                    if k in e
                }
                for e in caches  # later snapshots of a label win
            }
        if utils:
            last = utils[-1]
            summary["worker_util"] = {
                k: last[k]
                for k in ("workers", "busy_s", "wall_s", "utilization")
                if k in last
            }
        leases = self.select("lease")
        fleet = self.select("worker")
        fences = self.select("fence_rejected")
        if leases or fleet or fences:
            summary["fleet"] = {
                "leases": _count_by(leases, "action"),
                "workers": _count_by(fleet, "action"),
                "fence_rejections": len(fences),
            }
        shippings = self.select("trace_shipping")
        chunked = [e for e in shippings if e.get("mode") == "chunkpath"]
        chunk_passes = [e for e in passes if "chunks" in e]
        if chunked or chunk_passes:
            summary["streaming"] = {
                "chunked_passes": len(chunk_passes),
                "chunks": sum(int(e.get("chunks", 0)) for e in chunk_passes),
                "resumed_passes": sum(
                    1 for e in chunk_passes if e.get("resumed_at_chunk")
                ),
                "chunkpath_jobs": sum(
                    int(e.get("jobs", 0)) for e in chunked
                ),
            }
        sampled = self.select("sampled_pass")
        if sampled:
            summary["sampling"] = {
                "passes": len(sampled),
                "intervals": sum(int(e.get("intervals", 0)) for e in sampled),
                "sampled_ranges": sum(
                    int(e.get("sampled_ranges", 0)) for e in sampled
                ),
                "trace_ranges": sum(
                    int(e.get("trace_ranges", 0)) for e in sampled
                ),
            }
        evictions = self.select("linestream_evict")
        rss = self.select("rss")
        if evictions or rss:
            summary["memory"] = {
                "linestream_evictions": sum(
                    int(e.get("entries", 0)) for e in evictions
                ),
                "linestream_evicted_bytes": sum(
                    int(e.get("bytes", 0)) for e in evictions
                ),
            }
            if rss:
                last = rss[-1]
                summary["memory"]["max_rss_bytes"] = int(
                    last.get("max_rss_bytes", 0)
                )
                if "budget_bytes" in last:
                    summary["memory"]["rss_budget_bytes"] = int(
                        last["budget_bytes"]
                    )
        return summary

    def summary_text(self, title: str = "Run journal summary") -> str:
        """Human-readable summary block (``repro report`` compatible)."""
        s = self.summary()
        lines = [title, "=" * len(title)]
        lines.append(f"events: {s['events']}")
        p = s["passes"]
        where = ", ".join(
            f"{k}={v}" for k, v in sorted(p["by_where"].items())
        ) or "none"
        lines.append(
            f"simulation passes: {p['count']} "
            f"({p['trace_ranges']} trace ranges, {p['wall_s']:.3f} s; "
            f"{where})"
        )
        k = s["stackdist"]
        if k["count"]:
            tiers = ", ".join(
                f"{name}={n}" for name, n in k["tiers"].items()
            )
            lines.append(
                f"stack-distance kernel: {k['count']} families "
                f"({k['refs']} refs, {k['wall_s']:.3f} s; "
                f"tiers: {tiers}; residues={k['residues']})"
            )
        kf = s.get("stackdist_fused")
        if kf:
            tiers = ", ".join(
                f"{name}={n}" for name, n in kf["tiers"].items()
            )
            lines.append(
                f"fused stack-distance dispatches: {kf['dispatches']} "
                f"({kf['problems']} problems, {kf['refs']} refs, "
                f"{kf['wall_s']:.3f} s = sort {kf['sort_s']:.3f} + "
                f"scan {kf['scan_s']:.3f} + expand {kf['expand_s']:.3f} + "
                f"dominance {kf['dominance_s']:.3f}; "
                f"tiers: {tiers}; residues={kf['residues']})"
            )
        j = s["jobs"]
        lines.append(
            f"jobs: {j['completed']} completed, {j['failed']} failed, "
            f"{j['retries']} retries, {j['timeouts']} timeouts "
            f"({j['wall_s']:.3f} s busy)"
        )
        ds = s.get("designspace")
        if ds:
            lines.append(
                f"design-space towers: {ds['towers']} "
                f"({ds['line_sizes']} line sizes, {ds['sorts']} sorts + "
                f"{ds['splits']} splits, {ds['wall_s']:.3f} s)"
            )
        ship = s.get("trace_shipping")
        if ship:
            segments = ", ".join(
                f"{k}={v}" for k, v in sorted(ship["segments"].items())
            ) or "none"
            lines.append(
                f"trace shipping: {ship['shm_jobs']} shm jobs, "
                f"{ship['bytes_shipped']} B shipped for "
                f"{ship['bytes_mapped']} B mapped "
                f"({ship['bytes_saved']} B saved; segments: {segments})"
            )
        if s["fallbacks"]:
            reasons = ", ".join(
                f"{k} x{v}" for k, v in sorted(s["fallbacks"].items())
            )
            lines.append(f"fallbacks: {reasons}")
        if s["checkpoints"]:
            actions = ", ".join(
                f"{k}={v}" for k, v in sorted(s["checkpoints"].items())
            )
            lines.append(f"checkpoints: {actions}")
        for label, stats in s.get("caches", {}).items():
            rate = stats.get("hit_rate")
            rate_text = f"{rate:.1%}" if isinstance(rate, float) else "n/a"
            lines.append(
                f"{label}: hits={stats.get('hits', 0)} "
                f"misses={stats.get('misses', 0)} hit_rate={rate_text} "
                f"entries={stats.get('entries', 0)}"
            )
        util = s.get("worker_util")
        if util:
            lines.append(
                f"worker utilization: {util.get('utilization', 0.0):.1%} "
                f"({util.get('workers', 0)} workers, "
                f"{util.get('busy_s', 0.0):.3f} s busy / "
                f"{util.get('wall_s', 0.0):.3f} s wall)"
            )
        fleet = s.get("fleet")
        if fleet:
            leases = ", ".join(
                f"{k}={v}" for k, v in sorted(fleet["leases"].items())
            ) or "none"
            workers = ", ".join(
                f"{k}={v}" for k, v in sorted(fleet["workers"].items())
            ) or "none"
            lines.append(
                f"fleet: leases {leases}; workers {workers}; "
                f"{fleet['fence_rejections']} fence rejections"
            )
        stream = s.get("streaming")
        if stream:
            lines.append(
                f"streaming: {stream['chunked_passes']} chunked passes "
                f"({stream['chunks']} chunks, "
                f"{stream['resumed_passes']} resumed, "
                f"{stream['chunkpath_jobs']} path-shipped jobs)"
            )
        samp = s.get("sampling")
        if samp:
            frac = (
                samp["sampled_ranges"] / samp["trace_ranges"]
                if samp["trace_ranges"]
                else 1.0
            )
            lines.append(
                f"sampling: {samp['passes']} sampled passes "
                f"({samp['intervals']} intervals, "
                f"{samp['sampled_ranges']}/{samp['trace_ranges']} ranges "
                f"= {frac:.1%})"
            )
        mem = s.get("memory")
        if mem:
            text = (
                f"memory: {mem['linestream_evictions']} linestream "
                f"evictions ({mem['linestream_evicted_bytes']} B)"
            )
            if "max_rss_bytes" in mem:
                text += f", max RSS {mem['max_rss_bytes']} B"
                if "rss_budget_bytes" in mem:
                    text += f" of {mem['rss_budget_bytes']} B budget"
            lines.append(text)
        return "\n".join(lines)


class NullJournal(RunJournal):
    """A journal that drops everything (the default when none is active)."""

    def record(self, event: str, **fields: Any) -> dict[str, Any]:
        """Drop the event."""
        return {}

    @contextmanager
    def timed(self, event: str, **fields: Any) -> Iterator[dict[str, Any]]:
        """Run the block without recording anything."""
        yield {}

    def observe_cache(self, cache: Any, label: str = "evalcache") -> None:
        """Drop the snapshot."""


#: Shared sink for unjournaled runs.
NULL_JOURNAL = NullJournal()

_active: RunJournal | None = None
_active_lock = threading.Lock()


def active_journal() -> RunJournal:
    """The process-wide journal (a no-op sink when none is installed)."""
    return _active if _active is not None else NULL_JOURNAL


def set_active_journal(journal: RunJournal | None) -> RunJournal | None:
    """Install (or clear, with None) the active journal; returns the old."""
    global _active
    with _active_lock:
        previous = _active
        _active = journal
    return previous


@contextmanager
def use_journal(journal: RunJournal | None) -> Iterator[RunJournal]:
    """Scope the active journal to a block."""
    previous = set_active_journal(journal)
    try:
        yield journal if journal is not None else NULL_JOURNAL
    finally:
        set_active_journal(previous)


def resolve_journal(journal: RunJournal | None) -> RunJournal:
    """An explicit journal if given, else the active one."""
    return journal if journal is not None else active_journal()


def _count_by(events: list[dict[str, Any]], field: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in events:
        key = str(event.get(field, "?"))
        counts[key] = counts.get(key, 0) + 1
    return counts


def _tier_counts(by_path: dict[str, int]) -> dict[str, int]:
    """Cumulative kernel-tier usage from per-problem path labels.

    Every problem enters the scan tier; those labeled ``scan+expand``
    or ``dominance`` escalated into the expansion; ``dominance`` alone
    reached the fallback recount.
    """
    total = sum(by_path.values())
    dominance = by_path.get("dominance", 0)
    expand = dominance + sum(
        n for name, n in by_path.items() if "expand" in name
    )
    return {"scan": total, "expand": expand, "dominance": dominance}
