"""Standalone pull-loop worker for the evaluation service fleet.

``repro work --server URL`` runs one :class:`FleetWorker`: an OS
process (on any host that can reach the server) that

1. registers itself with capability tags (``POST /workers``),
2. leases jobs over HTTP (``POST /claim``) with jittered exponential
   backoff while the queue is empty,
3. executes each job through the existing fault-tolerant runtime
   (:func:`repro.service.jobs.execute_job` — per-pass timeouts,
   retries, pool fallback all apply), reading and writing the shared
   content-addressed store *through the server* via
   :class:`RemoteStore`, so fleet-wide de-duplication and sweep
   checkpointing behave exactly as for in-process workers,
4. renews its lease from a heartbeat thread at a third of the lease
   period, and
5. reports the outcome through the fenced ``complete``/``fail``
   endpoints — if the lease was lost mid-run (the worker stalled, the
   job was re-leased and finished elsewhere) the stale fencing token
   is rejected with 409 and exactly one execution's results survive.

The worker is crash-oblivious by design: SIGKILL it at any point and
the server's reaper requeues its job at lease expiry; whatever group
checkpoints it had already uploaded spare the successor that work.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
from typing import Any, Iterable, Mapping

from repro.errors import ServiceError, StaleLeaseError
from repro.runtime.journal import RunJournal, resolve_journal, use_journal
from repro.service.client import ServiceClient
from repro.service.jobs import execute_job
from repro.service.queue import JobRecord

#: Idle backoff bounds for an empty queue, seconds.
IDLE_BACKOFF_MIN = 0.05
IDLE_BACKOFF_MAX = 2.0


class RemoteStore:
    """:class:`~repro.service.store.ResultStore`-shaped adapter that
    reads and writes through the service HTTP API.

    Implements the surface job execution touches — ``get`` /
    ``put`` / ``put_many`` / ``contains`` / ``_fetch`` / ``count`` /
    ``stats`` — so :func:`execute_job` and
    :class:`~repro.service.store.StoreEvaluationCache` run unchanged on
    a worker with no filesystem access to the sqlite database.  Hit and
    miss counters describe this worker's lookup traffic.
    """

    def __init__(self, client: ServiceClient, namespace: str = "metrics"):
        self.client = client
        self.namespace = namespace
        self.path = client.base_url
        self.hits = 0
        self.misses = 0

    def _ns(self, namespace: str | None) -> str:
        return namespace if namespace is not None else self.namespace

    def _fetch(self, key: str, namespace: str | None) -> dict[str, str] | None:
        doc = self.client.result(key, namespace=self._ns(namespace))
        if not doc.get("found"):
            return None
        # Same row shape StoreEvaluationCache expects from sqlite.
        return {"value": json.dumps(doc.get("value"))}

    def get(self, key: str, namespace: str | None = None) -> Any:
        doc = self.client.result(key, namespace=self._ns(namespace))
        if not doc.get("found"):
            self.misses += 1
            return None
        self.hits += 1
        return doc.get("value")

    def contains(self, key: str, namespace: str | None = None) -> bool:
        return bool(
            self.client.result(key, namespace=self._ns(namespace)).get(
                "found"
            )
        )

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def put(self, key: str, value: Any, namespace: str | None = None) -> None:
        self.put_many({key: value}, namespace=namespace)

    def put_many(
        self, items: Mapping[str, Any], namespace: str | None = None
    ) -> None:
        if not items:
            return
        self.client.put_results(items, namespace=self._ns(namespace))

    def items(
        self,
        prefix: str = "",
        namespace: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        return self.client.results(
            prefix=prefix, namespace=self._ns(namespace), limit=limit
        )

    def count(self, namespace: str | None = None) -> int:
        return len(self.items(namespace=namespace))

    def __len__(self) -> int:
        return self.count()

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "backend": "remote",
            "server": self.client.base_url,
        }

    def record_run(
        self, run: Mapping[str, Any], rows: Any
    ) -> None:
        """Ship a recorded run to the server's durable run tables.

        Makes fleet-executed jobs show up in ``GET /runs`` and the
        dashboard exactly like locally executed ones.
        """
        self.client.record_run(run, list(rows))


def default_worker_id() -> str:
    """A stable-ish identity for this worker process."""
    return f"{socket.gethostname()}:{os.getpid()}"


class FleetWorker:
    """One pull-loop worker process against one service base URL."""

    def __init__(
        self,
        server_url: str,
        tags: Iterable[str] = (),
        lease: float | None = None,
        worker_id: str | None = None,
        max_jobs: int | None = None,
        idle_backoff_max: float = IDLE_BACKOFF_MAX,
        journal: RunJournal | None = None,
        rng: random.Random | None = None,
    ):
        self.client = ServiceClient(server_url)
        self.tags = [str(t) for t in tags]
        self.lease = lease
        self.worker_id = worker_id or default_worker_id()
        self.max_jobs = max_jobs
        self.idle_backoff_max = idle_backoff_max
        self.journal = resolve_journal(journal)
        self.jobs_done = 0
        self.jobs_failed = 0
        self.fence_rejections = 0
        self._rng = rng or random.Random()
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the pull loop to exit after the current job."""
        self._stop.set()

    # ------------------------------------------------------------------
    # The pull loop.
    # ------------------------------------------------------------------

    def run(self) -> int:
        """Register, pull and execute until stopped; returns jobs run."""
        # Kernel/checkpoint internals journal through the *active*
        # journal; install this worker's journal for the pull loop so
        # its runs carry kernel_s / cache columns.
        with use_journal(self.journal):
            return self._run()

    def _run(self) -> int:
        registration = self.client.register_worker(
            worker_id=self.worker_id,
            tags=self.tags,
            meta={"pid": os.getpid(), "host": socket.gethostname()},
        )
        self.worker_id = registration["id"]
        if self.lease is None:
            self.lease = float(registration["lease"])
        self.journal.record(
            "worker",
            action="start",
            id=self.worker_id,
            server=self.client.base_url,
            tags=self.tags,
            lease=self.lease,
        )
        backoff = IDLE_BACKOFF_MIN
        executed = 0
        while not self._stop.is_set():
            if self.max_jobs is not None and executed >= self.max_jobs:
                break
            try:
                claimed = self.client.claim(
                    self.worker_id, tags=self.tags, lease=self.lease
                )
            except ServiceError as exc:
                # Server unreachable or refusing: back off and retry.
                self.journal.record(
                    "worker", action="claim_error", error=str(exc)
                )
                self._sleep(backoff)
                backoff = min(backoff * 2.0, self.idle_backoff_max)
                continue
            if claimed is None:
                self._sleep(backoff * self._rng.uniform(0.5, 1.0))
                backoff = min(backoff * 2.0, self.idle_backoff_max)
                continue
            backoff = IDLE_BACKOFF_MIN
            job, token = claimed
            self._execute(job, token)
            executed += 1
        self.journal.record(
            "worker",
            action="stop",
            id=self.worker_id,
            done=self.jobs_done,
            failed=self.jobs_failed,
            fenced=self.fence_rejections,
        )
        return executed

    def _sleep(self, seconds: float) -> None:
        self._stop.wait(timeout=max(seconds, 0.0))

    # ------------------------------------------------------------------
    # One job.
    # ------------------------------------------------------------------

    def _execute(self, job: JobRecord, token: int) -> None:
        self.journal.record(
            "worker",
            action="claimed",
            id=self.worker_id,
            job=job.id,
            token=token,
            kind=job.spec.get("kind"),
        )
        stop_hb = threading.Event()
        lost = threading.Event()
        heartbeater = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.id, token, stop_hb, lost),
            name=f"heartbeat-{job.id}",
            daemon=True,
        )
        heartbeater.start()
        store = RemoteStore(self.client)
        error: str | None = None
        result: Any = None
        try:
            result = execute_job(
                job.spec, store, self.journal, run_id=job.id
            )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            error = repr(exc)
        finally:
            stop_hb.set()
            heartbeater.join(timeout=10.0)
        if lost.is_set():
            # The lease is gone; don't even try to report — the fence
            # would reject it and the rightful execution's outcome
            # (or the reaper's requeue) stands.
            self.fence_rejections += 1
            self.journal.record(
                "fence_rejected", id=job.id, token=token, where="worker"
            )
            return
        try:
            if error is None:
                self.client.complete(
                    job.id, result, token=token, worker=self.worker_id
                )
                self.jobs_done += 1
                self.journal.record(
                    "worker", action="completed", job=job.id, token=token
                )
            else:
                state = self.client.fail(
                    job.id, error, token=token, worker=self.worker_id
                )
                self.jobs_failed += 1
                self.journal.record(
                    "worker",
                    action="failed",
                    job=job.id,
                    token=token,
                    state=state,
                    error=error,
                )
        except StaleLeaseError as exc:
            self.fence_rejections += 1
            self.journal.record(
                "fence_rejected",
                id=job.id,
                token=token,
                where="worker",
                detail=str(exc),
            )
        except ServiceError as exc:
            self.journal.record(
                "worker", action="report_error", job=job.id, error=str(exc)
            )

    def _heartbeat_loop(
        self,
        job_id: str,
        token: int,
        stop: threading.Event,
        lost: threading.Event,
    ) -> None:
        interval = max((self.lease or 1.0) / 3.0, 0.05)
        while not stop.wait(timeout=interval):
            try:
                self.client.heartbeat(
                    job_id, token, worker=self.worker_id, lease=self.lease
                )
            except StaleLeaseError:
                lost.set()
                return
            except ServiceError:
                # Transport blip: keep trying; the fence at complete()
                # is the correctness backstop.
                continue


def work(
    server_url: str,
    tags: Iterable[str] = (),
    lease: float | None = None,
    worker_id: str | None = None,
    max_jobs: int | None = None,
    journal_path: str | None = None,
) -> int:
    """Blocking entry point behind ``repro work``; returns jobs run."""
    journal = RunJournal(journal_path) if journal_path else RunJournal()
    worker = FleetWorker(
        server_url,
        tags=tags,
        lease=lease,
        worker_id=worker_id,
        max_jobs=max_jobs,
        journal=journal,
    )
    print(
        f"[repro work] {worker.worker_id} pulling from {server_url}"
        + (f" (tags: {', '.join(worker.tags)})" if worker.tags else ""),
        flush=True,
    )
    try:
        executed = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        executed = worker.jobs_done + worker.jobs_failed
        print("[repro work] interrupted")
    finally:
        journal.close()
    print(
        f"[repro work] exiting: {worker.jobs_done} done,"
        f" {worker.jobs_failed} failed,"
        f" {worker.fence_rejections} fenced",
        flush=True,
    )
    return executed
