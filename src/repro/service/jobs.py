"""Job specs and their execution (the service's unit of work).

A job spec is one JSON object with a ``kind``:

``sweep``
    Exact miss counts for a grid of cache configurations on one trace:
    ``{"kind": "sweep", "trace": <trace spec>, "configs": <configs>}``.
    Runs one single-pass simulation per distinct line size through
    :func:`repro.cache.sweep.sweep_design_space`, checkpointing group
    states into the shared store and serving per-config results that
    are already stored without simulating at all.

``estimate``
    Dilation-model miss estimates over a (config x dilation) grid for a
    named benchmark's reference trace: ``{"kind": "estimate",
    "benchmark": ..., "role": ..., "configs": ..., "dilations": [...]}``.
    Uses :meth:`repro.explore.evaluators.MemoryEvaluator.misses_batch`
    with priming checkpointed into the shared store.

``explore``
    A spacewalker Pareto walk for a named benchmark:
    ``{"kind": "explore", "benchmark": ...}``, optional ``space``
    overrides.  The resulting frontier is stored under the
    ``frontiers`` namespace and returned.

Trace specs (for ``sweep``):

* ``{"kind": "ranges", "starts": [...], "sizes": [...]}`` — explicit;
* ``{"kind": "synthetic", "seed": 1, "ranges": 512, "footprint": 65536,
  "max_size": 64}`` — a seeded random range trace, cheap to
  re-materialize anywhere (workers rebuild it from the spec);
* ``{"kind": "benchmark", "benchmark": "085.gcc", "role": "icache",
  "scale": 1.0, "visits": 60000}`` — a real workload's reference trace
  via the experiment pipeline;
* ``{"kind": "chunked", "path": "/data/trace.rct", "digest": "..."}`` —
  an on-disk chunked trace (see :mod:`repro.trace.chunkstore`), opened
  by path and fed to the engines chunk-at-a-time; workers receive the
  path, never the arrays.  ``digest`` (optional) pins the expected
  content.

Sweep specs may also carry ``"sample"``, an interval-sampling plan
(:meth:`repro.trace.sampling.SamplePlan.from_spec`: ``{"intervals": 16,
"interval_ranges": 4096, "warmup_ranges": 1024, "mode": "uniform"}``).
Sampled results are *estimates*: they are stored under sample-specific
keys (never mixed with exact results) and flagged ``"estimated": true``
with their extrapolation error.

Every spec is *content-addressed*: :func:`trace_key` is a digest of the
canonical spec JSON, so two clients submitting the same trace (however
phrased) share store entries.

All execution knobs (``max_workers``, ``job_timeout``, ``job_retries``,
``trace_shipping``, ``count_parallelism``)
route into :class:`repro.runtime.executor.ExecutorPolicy`, so service
jobs inherit the fault-tolerant runtime: per-pass timeouts, bounded
retries, fault injection and journal events all carry over.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.sweep import sampled_sweep_design_space, sweep_design_space
from repro.errors import ReproError, ServiceError
from repro.runtime.executor import ExecutorPolicy
from repro.runtime.journal import RunJournal, resolve_journal
from repro.service.store import ResultStore, StoreEvaluationCache
from repro.trace.chunkstore import ChunkedTrace
from repro.trace.sampling import SamplePlan

#: Job kinds the queue accepts.
JOB_KINDS = ("sweep", "estimate", "explore")

#: Trace kinds a sweep spec accepts.
TRACE_KINDS = ("ranges", "synthetic", "benchmark", "chunked")

#: Store namespaces used by job execution.
NS_METRICS = "metrics"
NS_EVALCACHE = "evalcache"
NS_FRONTIERS = "frontiers"


# ----------------------------------------------------------------------
# Content addressing.
# ----------------------------------------------------------------------


def canonical(spec: Any) -> str:
    """Canonical JSON of a spec (sorted keys, no whitespace)."""
    try:
        return json.dumps(spec, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"spec is not JSON-representable: {exc}") from exc


def trace_key(trace_spec: dict[str, Any]) -> str:
    """Content address of a trace spec (``spec=<16 hex>``)."""
    digest = hashlib.sha256(canonical(trace_spec).encode()).hexdigest()
    return f"spec={digest[:16]}"


def result_key(trace_id: str, config: CacheConfig) -> str:
    """Content address of one config's exact miss result on one trace."""
    return (
        f"misses:{trace_id}:S{config.sets}"
        f"A{config.assoc}L{config.line_size}"
    )


# ----------------------------------------------------------------------
# Spec parsing and validation.
# ----------------------------------------------------------------------


def _require(spec: dict, field: str, kind: str) -> Any:
    try:
        return spec[field]
    except (KeyError, TypeError):
        raise ServiceError(
            f"{kind} job spec is missing required field {field!r}"
        ) from None


def parse_configs(value: Any) -> list[CacheConfig]:
    """Configs from either an explicit list or a Cartesian grid.

    List form: ``[{"sets": 8, "assoc": 1, "line_size": 16}, ...]``.
    Grid form: ``{"sets": [8, 16], "assocs": [1, 2],
    "line_sizes": [16, 32]}`` (full cross product).
    """
    try:
        if isinstance(value, dict):
            configs = [
                CacheConfig(int(sets), int(assoc), int(line))
                for line in value["line_sizes"]
                for sets in value["sets"]
                for assoc in value["assocs"]
            ]
        else:
            configs = [
                CacheConfig(
                    int(item["sets"]),
                    int(item["assoc"]),
                    int(item["line_size"]),
                )
                for item in value
            ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed configs spec: {exc}") from exc
    except ReproError as exc:
        raise ServiceError(f"infeasible cache configuration: {exc}") from exc
    if not configs:
        raise ServiceError("configs spec is empty")
    return list(dict.fromkeys(configs))


def build_trace_arrays(trace_spec: dict[str, Any]) -> tuple[Any, Any]:
    """Materialize a trace spec into ``(starts, sizes)`` arrays.

    Module-level and driven purely by the (picklable) spec dict, so the
    executor can ship trace construction to worker processes instead of
    materializing in the service parent.
    """
    kind = trace_spec.get("kind")
    if kind == "ranges":
        starts = trace_spec.get("starts")
        sizes = trace_spec.get("sizes")
        if not starts or not sizes or len(starts) != len(sizes):
            raise ServiceError(
                "ranges trace needs equal-length non-empty starts/sizes"
            )
        return (
            np.asarray(starts, dtype=np.int64),
            np.asarray(sizes, dtype=np.int64),
        )
    if kind == "synthetic":
        n = int(trace_spec.get("ranges", 512))
        footprint = int(trace_spec.get("footprint", 65536))
        max_size = int(trace_spec.get("max_size", 64))
        seed = int(trace_spec.get("seed", 0))
        if n < 1 or footprint < 1 or max_size < 1:
            raise ServiceError(
                "synthetic trace needs positive ranges/footprint/max_size"
            )
        rng = np.random.default_rng(seed)
        starts = rng.integers(0, footprint, size=n, dtype=np.int64)
        sizes = rng.integers(1, max_size + 1, size=n, dtype=np.int64)
        return starts, sizes
    if kind == "benchmark":
        trace = _benchmark_trace(trace_spec)
        return trace.starts, trace.sizes
    if kind == "chunked":
        return _open_chunked(trace_spec).materialize()
    raise ServiceError(
        f"unknown trace kind {kind!r}; expected one of {TRACE_KINDS}"
    )


def _open_chunked(trace_spec: dict[str, Any]) -> ChunkedTrace:
    path = _require(trace_spec, "path", "chunked trace")
    try:
        ctrace = ChunkedTrace(path)
    except ReproError as exc:
        raise ServiceError(f"cannot open chunked trace: {exc}") from exc
    expected = trace_spec.get("digest")
    if expected and ctrace.digest != expected:
        ctrace.close()
        raise ServiceError(
            f"chunked trace at {path} has digest {ctrace.digest}, "
            f"spec pinned {expected}"
        )
    return ctrace


def sweep_trace(trace_spec: dict[str, Any]):
    """The trace argument a sweep should pass to the cache layer.

    Chunked specs open the on-disk store (the sweep streams it and ships
    only the path to workers); everything else becomes a picklable
    factory so workers materialize the arrays themselves.
    """
    if trace_spec.get("kind") == "chunked":
        return _open_chunked(trace_spec)
    return SpecTraceFactory(trace_spec)


def _benchmark_trace(trace_spec: dict[str, Any]):
    from repro.experiments.runner import RunnerSettings, get_pipeline

    benchmark = _require(trace_spec, "benchmark", "benchmark trace")
    role = trace_spec.get("role", "unified")
    settings = RunnerSettings(
        scale=float(trace_spec.get("scale", 1.0)),
        max_visits=int(trace_spec.get("visits", 60_000)),
    )
    try:
        pipeline = get_pipeline(benchmark, settings)
        return pipeline.reference_artifacts().trace(role)
    except ReproError as exc:
        raise ServiceError(f"cannot build benchmark trace: {exc}") from exc


class SpecTraceFactory:
    """Picklable zero-arg trace factory for :func:`sweep_design_space`."""

    def __init__(self, trace_spec: dict[str, Any]):
        self.trace_spec = trace_spec

    def __call__(self) -> tuple[Any, Any]:
        return build_trace_arrays(self.trace_spec)


def validate_spec(spec: Any) -> dict[str, Any]:
    """Check a job spec's shape up front (at submission time).

    Raises :class:`ServiceError` with an actionable message; returns the
    spec unchanged when acceptable.  Full validation of e.g. benchmark
    names happens at execution; this catches the malformed 90% before
    they occupy the queue.
    """
    if not isinstance(spec, dict):
        raise ServiceError(f"job spec must be a JSON object, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    requires = spec.get("requires")
    if requires is not None and (
        not isinstance(requires, list)
        or not all(isinstance(tag, str) for tag in requires)
    ):
        raise ServiceError(
            "'requires' must be a list of capability tag strings"
        )
    sample = spec.get("sample")
    if sample is not None:
        if not isinstance(sample, dict):
            raise ServiceError("'sample' must be a sampling plan object")
        try:
            SamplePlan.from_spec(sample)
        except ReproError as exc:
            raise ServiceError(f"bad sample plan: {exc}") from exc
    if kind == "sweep":
        trace_spec = _require(spec, "trace", kind)
        if not isinstance(trace_spec, dict) or "kind" not in trace_spec:
            raise ServiceError("sweep trace spec must be an object with a 'kind'")
        if trace_spec["kind"] not in TRACE_KINDS:
            raise ServiceError(
                f"unknown trace kind {trace_spec['kind']!r}"
            )
        if trace_spec["kind"] == "chunked":
            # Shape only: the file may live on the workers' filesystem,
            # not the submitter's.
            path = _require(trace_spec, "path", "chunked trace")
            if not isinstance(path, str) or not path:
                raise ServiceError("chunked trace 'path' must be a string")
        elif trace_spec["kind"] != "benchmark":
            build_trace_arrays(trace_spec)  # cheap: validates eagerly
        parse_configs(_require(spec, "configs", kind))
    elif kind == "estimate":
        _require(spec, "benchmark", kind)
        parse_configs(_require(spec, "configs", kind))
        dilations = spec.get("dilations", [1.0])
        if not dilations:
            raise ServiceError("estimate job needs at least one dilation")
        role = spec.get("role", "icache")
        if role not in ("icache", "dcache", "unified"):
            raise ServiceError(f"unknown role {role!r}")
    else:  # explore
        _require(spec, "benchmark", kind)
    return spec


def spec_policy(spec: dict[str, Any]) -> ExecutorPolicy:
    """The fault-tolerance policy a job spec asks for."""
    return ExecutorPolicy(
        max_workers=spec.get("max_workers"),
        timeout=spec.get("job_timeout"),
        retries=int(spec.get("job_retries", 2)),
        trace_shipping=str(spec.get("trace_shipping", "auto")),
        count_parallelism=int(spec.get("count_parallelism", 1)),
    )


# ----------------------------------------------------------------------
# Execution.
# ----------------------------------------------------------------------


def execute_job(
    spec: dict[str, Any],
    store: ResultStore,
    journal: RunJournal | None = None,
    run_id: str | None = None,
    record: bool = True,
) -> dict[str, Any]:
    """Run one validated job spec against the shared store.

    Returns the job's JSON result document.  All simulation work routes
    through the existing runtime (``sweep_design_space`` /
    ``MemoryEvaluator.prime`` / ``Spacewalker.walk`` →
    :func:`repro.runtime.executor.run_jobs`), so the spec's
    ``max_workers`` / ``job_timeout`` / ``job_retries`` knobs behave
    exactly as they do on the CLI.

    When ``record`` is true (the default) the execution is also
    persisted as a durable analytics run (``run_id`` defaults to a
    fresh id; the service passes the job id so runs and jobs share
    identity).  Recording is observational — it reads the result
    document and the journal window *after* execution, so results are
    bit-identical with and without it.  Failed executions are recorded
    as ``failed`` runs before the exception propagates.
    """
    from repro.analytics.runs import RunRecorder, supports_runs

    journal = resolve_journal(journal)
    validate_spec(spec)
    kind = spec["kind"]
    recorder = None
    if record and supports_runs(store):
        recorder = RunRecorder(
            store,
            kind=kind,
            spec=spec,
            journal=journal,
            run_id=run_id,
            benchmark=spec.get("benchmark"),
        )
    try:
        if kind == "sweep":
            result = _execute_sweep(spec, store, journal)
        elif kind == "estimate":
            result = _execute_estimate(spec, store, journal)
        else:
            result = _execute_explore(spec, store, journal)
    except Exception as exc:
        if recorder is not None:
            recorder.finish(state="failed", error=repr(exc))
        raise
    if recorder is not None:
        _record_result_rows(recorder, spec, result)
        recorder.finish()
    return result


def _record_result_rows(
    recorder: Any, spec: dict[str, Any], result: dict[str, Any]
) -> None:
    """Translate one job's result document into run rows."""
    kind = result.get("kind")
    if kind == "sweep":
        trace_spec = spec.get("trace") or {}
        benchmark = trace_spec.get("benchmark")
        role = trace_spec.get("role")
        for doc in result.get("results", ()):
            recorder.add_config_doc(doc, benchmark=benchmark, role=role)
    elif kind == "estimate":
        benchmark = result.get("benchmark")
        role = result.get("role")
        for doc in result.get("results", ()):
            misses = doc.get("misses") or {}
            for dilation, value in misses.items():
                recorder.add_row(
                    benchmark=benchmark,
                    role=role,
                    sets=doc.get("sets"),
                    assoc=doc.get("assoc"),
                    line_size=doc.get("line_size"),
                    misses=value,
                    estimated=bool(result.get("sampled")),
                    source="estimate",
                    dilation=dilation,
                )
    elif kind == "explore":
        benchmark = result.get("benchmark")
        for point in result.get("frontier", ()):
            recorder.add_frontier_point(point, benchmark=benchmark)


def _config_doc(config: CacheConfig, **extra: Any) -> dict[str, Any]:
    return {
        "sets": config.sets,
        "assoc": config.assoc,
        "line_size": config.line_size,
        **extra,
    }


def _execute_sweep(
    spec: dict[str, Any], store: ResultStore, journal: RunJournal
) -> dict[str, Any]:
    trace_spec = spec["trace"]
    configs = parse_configs(spec["configs"])
    tkey = trace_key(trace_spec)
    sample_spec = spec.get("sample")
    plan = SamplePlan.from_spec(sample_spec) if sample_spec else None
    if plan is not None:
        # Estimates live under sample-specific keys so they can never
        # shadow (or be shadowed by) exact results for the same trace.
        rkey_trace = f"{tkey}:sample={trace_key(plan.to_spec())[5:]}"
    else:
        rkey_trace = tkey

    # Result-level de-duplication: configs whose misses are already
    # stored (for this exact trace + sampling identity) are served
    # without any simulation.
    stored: dict[CacheConfig, Any] = {}
    missing: list[CacheConfig] = []
    for config in configs:
        value = store.get(result_key(rkey_trace, config), namespace=NS_METRICS)
        if (
            isinstance(value, dict)
            and "misses" in value
            and "accesses" in value
        ):
            stored[config] = value
        else:
            missing.append(config)

    simulated: dict[CacheConfig, Any] = {}
    if missing:
        trace = sweep_trace(trace_spec)
        try:
            fresh = {}
            if plan is not None:
                results = sampled_sweep_design_space(
                    missing, trace, plan, journal=journal
                )
                for config, miss in results.items():
                    doc = {
                        "accesses": miss.accesses,
                        "misses": miss.misses,
                        "estimated": True,
                        "error": miss.error,
                        "intervals": miss.intervals,
                        "sampled_ranges": miss.sampled_ranges,
                        "total_ranges": miss.total_ranges,
                    }
                    simulated[config] = doc
                    fresh[result_key(rkey_trace, config)] = doc
            else:
                # Group-level de-duplication: the sweep checkpoints each
                # line-size group's single-pass state into the shared
                # store, so even a *partially* overlapping grid reuses
                # whole passes.
                checkpoint = StoreEvaluationCache(
                    store, namespace=NS_EVALCACHE
                )
                results = sweep_design_space(
                    missing,
                    trace,
                    policy=spec_policy(spec),
                    journal=journal,
                    checkpoint=checkpoint,
                    trace_key=tkey,
                )
                for config, miss in results.items():
                    doc = {"accesses": miss.accesses, "misses": miss.misses}
                    simulated[config] = doc
                    fresh[result_key(rkey_trace, config)] = doc
            store.put_many(fresh, namespace=NS_METRICS)
        finally:
            if isinstance(trace, ChunkedTrace):
                trace.close()

    journal.record(
        "service_dedup",
        kind="sweep",
        trace_key=rkey_trace,
        from_store=len(stored),
        simulated=len(simulated),
    )
    journal.observe_cache(store, label="result-store")
    docs = []
    for config in configs:
        source = "store" if config in stored else "simulated"
        doc = stored.get(config) or simulated[config]
        docs.append(_config_doc(config, **doc, source=source))
    return {
        "kind": "sweep",
        "trace_key": rkey_trace,
        "total": len(configs),
        "from_store": len(stored),
        "simulated": len(simulated),
        "sampled": plan is not None,
        "results": docs,
    }


def _execute_estimate(
    spec: dict[str, Any], store: ResultStore, journal: RunJournal
) -> dict[str, Any]:
    from repro.experiments.runner import RunnerSettings, get_pipeline

    benchmark = spec["benchmark"]
    role = spec.get("role", "icache")
    configs = parse_configs(spec["configs"])
    dilations = [float(d) for d in spec.get("dilations", [1.0])]
    settings = RunnerSettings(
        scale=float(spec.get("scale", 1.0)),
        max_visits=int(spec.get("visits", 60_000)),
        max_workers=spec.get("max_workers"),
        job_timeout=spec.get("job_timeout"),
        job_retries=int(spec.get("job_retries", 2)),
        trace_shipping=str(spec.get("trace_shipping", "auto")),
        count_parallelism=int(spec.get("count_parallelism", 1)),
    )
    bench_id = (
        f"{benchmark}:scale={settings.scale:g}:visits={settings.max_visits}"
    )
    try:
        pipeline = get_pipeline(benchmark, settings)
        evaluator = pipeline.memory_evaluator()
    except ReproError as exc:
        raise ServiceError(f"cannot build evaluator: {exc}") from exc
    # Priming passes checkpoint into the shared store, de-duplicating
    # across jobs, processes and restarts.
    evaluator.attach_checkpoint(
        StoreEvaluationCache(store, namespace=NS_EVALCACHE),
        trace_keys={r: f"{bench_id}:{r}" for r in ("icache", "dcache", "unified")},
    )
    sample_spec = spec.get("sample")
    if sample_spec:
        evaluator.set_sample_plan(SamplePlan.from_spec(sample_spec))
    grid = evaluator.misses_batch(
        role, configs, dilations, max_workers=spec.get("max_workers")
    )
    journal.observe_cache(store, label="result-store")
    return {
        "kind": "estimate",
        "benchmark": benchmark,
        "role": role,
        "dilations": dilations,
        "sampled": bool(sample_spec),
        "results": [
            _config_doc(
                config,
                misses={
                    f"{dil:g}": float(grid[i, j])
                    for j, dil in enumerate(dilations)
                },
            )
            for i, config in enumerate(configs)
        ],
    }


def _cache_space(value: dict[str, Any]):
    from repro.explore.spec import CacheDesignSpace

    return CacheDesignSpace(
        sizes_kb=tuple(value["sizes_kb"]),
        assocs=tuple(value["assocs"]),
        line_sizes=tuple(value["line_sizes"]),
    )


def _system_space(overrides: dict[str, Any] | None):
    from repro.explore.spec import ProcessorDesignSpace, SystemDesignSpace

    if not overrides:
        return SystemDesignSpace()
    kwargs: dict[str, Any] = {}
    try:
        for role in ("icache", "dcache", "unified"):
            if role in overrides:
                kwargs[role] = _cache_space(overrides[role])
        if "processors" in overrides:
            procs = overrides["processors"]
            kwargs["processors"] = ProcessorDesignSpace(
                int_units=tuple(procs.get("int_units", (1, 2, 4))),
                float_units=tuple(procs.get("float_units", (1, 2))),
                memory_units=tuple(procs.get("memory_units", (1, 2))),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed space overrides: {exc}") from exc
    except ReproError as exc:
        raise ServiceError(f"infeasible design space: {exc}") from exc
    return SystemDesignSpace(**kwargs)


def _execute_explore(
    spec: dict[str, Any], store: ResultStore, journal: RunJournal
) -> dict[str, Any]:
    from repro.experiments.runner import RunnerSettings, get_pipeline
    from repro.explore.spacewalker import Spacewalker

    benchmark = spec["benchmark"]
    settings = RunnerSettings(
        scale=float(spec.get("scale", 1.0)),
        max_visits=int(spec.get("visits", 60_000)),
        max_workers=spec.get("max_workers"),
        job_timeout=spec.get("job_timeout"),
        job_retries=int(spec.get("job_retries", 2)),
        trace_shipping=str(spec.get("trace_shipping", "auto")),
        count_parallelism=int(spec.get("count_parallelism", 1)),
    )
    space = _system_space(spec.get("space"))
    try:
        pipeline = get_pipeline(benchmark, settings)
        evaluator = pipeline.memory_evaluator()
    except ReproError as exc:
        raise ServiceError(f"cannot build pipeline: {exc}") from exc
    bench_id = (
        f"{benchmark}:scale={settings.scale:g}:visits={settings.max_visits}"
    )
    evaluator.attach_checkpoint(
        StoreEvaluationCache(store, namespace=NS_EVALCACHE),
        trace_keys={r: f"{bench_id}:{r}" for r in ("icache", "dcache", "unified")},
    )
    sample_spec = spec.get("sample")
    if sample_spec:
        evaluator.set_sample_plan(SamplePlan.from_spec(sample_spec))
    pareto = Spacewalker(
        space,
        pipeline,
        max_workers=spec.get("max_workers"),
        policy=settings.executor_policy(),
        journal=journal,
    ).walk()
    frontier = [
        {
            "cost": point.cost,
            "cycles": point.time,
            "processor": point.design.processor,
            "icache": _config_doc(point.design.memory.icache),
            "dcache": _config_doc(point.design.memory.dcache),
            "unified": _config_doc(point.design.memory.unified),
        }
        for point in pareto.frontier()
    ]
    frontier_id = hashlib.sha256(
        canonical(
            {
                "benchmark": bench_id,
                "space": spec.get("space"),
                "sample": sample_spec or None,
            }
        ).encode()
    ).hexdigest()[:16]
    store.put(
        f"pareto:{bench_id}:space={frontier_id}",
        frontier,
        namespace=NS_FRONTIERS,
    )
    journal.observe_cache(store, label="result-store")
    return {
        "kind": "explore",
        "benchmark": benchmark,
        "frontier_key": f"pareto:{bench_id}:space={frontier_id}",
        "frontier": frontier,
    }
