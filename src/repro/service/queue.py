"""Persistent asynchronous job queue (same database as the store).

Jobs move ``queued → running → done | failed``.  A *failed attempt*
requeues the job until its bounded attempt budget is spent (mirroring
the executor's retry policy, but durable: the counter lives in sqlite,
so retries survive the worker process).  Claiming is one ``BEGIN
IMMEDIATE`` transaction, so any number of worker threads or processes
can pull from the same queue without double-claiming.

Kill-and-resume: a job claimed by a worker that died stays ``running``
in the database; :meth:`JobQueue.recover` (called on service startup)
requeues such orphans at their current attempt count.  Because sweep
jobs checkpoint per-group state into the shared store, a resumed job
re-simulates only the groups its predecessor had not finished.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError
from repro.service.store import ResultStore

#: Legal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class JobRecord:
    """One job's durable state, decoded from its sqlite row."""

    id: str
    spec: dict[str, Any]
    state: str
    attempts: int
    max_attempts: int
    result: Any = None
    error: str | None = None
    owner: str | None = None
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def finished_ok(self) -> bool:
        return self.state == "done"

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.state in ("done", "failed")

    def to_dict(self) -> dict[str, Any]:
        """JSON-representable form (the HTTP API's job document)."""
        return {
            "id": self.id,
            "spec": self.spec,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "result": self.result,
            "error": self.error,
            "owner": self.owner,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
        }


def _decode(row) -> JobRecord:
    return JobRecord(
        id=row["id"],
        spec=json.loads(row["spec"]),
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        result=json.loads(row["result"]) if row["result"] else None,
        error=row["error"],
        owner=row["owner"],
        submitted=row["submitted"],
        started=row["started"],
        finished=row["finished"],
    )


def default_owner() -> str:
    """This worker's identity, recorded on claim (host:pid:uuid-ish)."""
    return f"pid={os.getpid()}"


class JobQueue:
    """Durable FIFO job queue over the store's ``jobs`` table."""

    def __init__(self, store: ResultStore):
        self.store = store

    # ------------------------------------------------------------------
    # Submission and inspection.
    # ------------------------------------------------------------------

    def submit(
        self, spec: dict[str, Any], max_attempts: int = 3
    ) -> str:
        """Enqueue a job spec; returns the new job id."""
        if max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        job_id = uuid.uuid4().hex[:16]
        try:
            text = json.dumps(spec)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"job spec is not JSON-representable: {exc}") from exc
        with self.store.transaction() as conn:
            conn.execute(
                "INSERT INTO jobs (id, spec, state, attempts, max_attempts,"
                " submitted) VALUES (?, ?, 'queued', 0, ?, ?)",
                (job_id, text, max_attempts, time.time()),
            )
        return job_id

    def get(self, job_id: str) -> JobRecord:
        """The job's current durable state."""
        row = self.store.connection().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return _decode(row)

    def list(
        self, state: str | None = None, limit: int = 100
    ) -> list[JobRecord]:
        """Jobs newest-first, optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r}; expected one of {JOB_STATES}"
            )
        if state is None:
            rows = self.store.connection().execute(
                "SELECT * FROM jobs ORDER BY submitted DESC, id LIMIT ?",
                (limit,),
            ).fetchall()
        else:
            rows = self.store.connection().execute(
                "SELECT * FROM jobs WHERE state = ?"
                " ORDER BY submitted DESC, id LIMIT ?",
                (state, limit),
            ).fetchall()
        return [_decode(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Job counts per state (zero-filled)."""
        rows = self.store.connection().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # ------------------------------------------------------------------
    # Worker protocol.
    # ------------------------------------------------------------------

    def claim(self, owner: str | None = None) -> JobRecord | None:
        """Atomically claim the oldest queued job, or None when idle."""
        owner = owner or default_owner()
        with self.store.transaction() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued'"
                " ORDER BY submitted, id LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', attempts = attempts + 1,"
                " owner = ?, started = ? WHERE id = ?",
                (owner, time.time(), row["id"]),
            )
        return self.get(row["id"])

    def complete(self, job_id: str, result: Any) -> None:
        """Mark a running job done with its result document."""
        try:
            text = json.dumps(result)
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"job result is not JSON-representable: {exc}"
            ) from exc
        with self.store.transaction() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'done', result = ?, error = NULL,"
                " finished = ? WHERE id = ? AND state = 'running'",
                (text, time.time(), job_id),
            )
        if cur.rowcount != 1:
            raise ServiceError(
                f"job {job_id!r} is not running; cannot complete it"
            )

    def fail(self, job_id: str, error: str) -> str:
        """Record a failed attempt; returns the resulting state.

        Requeues while attempts remain (``"queued"``); otherwise the
        job is terminally ``"failed"`` with the error preserved.
        """
        with self.store.transaction() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE id = ? AND state = 'running'",
                (job_id,),
            ).fetchone()
            if row is None:
                raise ServiceError(
                    f"job {job_id!r} is not running; cannot fail it"
                )
            state = (
                "queued" if row["attempts"] < row["max_attempts"] else "failed"
            )
            conn.execute(
                "UPDATE jobs SET state = ?, error = ?, finished = ?"
                " WHERE id = ?",
                (
                    state,
                    error,
                    time.time() if state == "failed" else None,
                    job_id,
                ),
            )
        return state

    def recover(self, owner: str | None = None) -> int:
        """Requeue ``running`` jobs whose worker died (kill-and-resume).

        With ``owner`` given, only that owner's jobs are recovered;
        otherwise every running job is treated as orphaned (correct at
        service startup, before any worker of this process has claimed).
        Jobs whose attempt budget is already spent become ``failed``.
        Returns the number of jobs transitioned.
        """
        with self.store.transaction() as conn:
            if owner is None:
                rows = conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs"
                    " WHERE state = 'running'"
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs"
                    " WHERE state = 'running' AND owner = ?",
                    (owner,),
                ).fetchall()
            for row in rows:
                exhausted = row["attempts"] >= row["max_attempts"]
                conn.execute(
                    "UPDATE jobs SET state = ?, error = ?, finished = ?"
                    " WHERE id = ?",
                    (
                        "failed" if exhausted else "queued",
                        "worker died mid-run (recovered)"
                        if exhausted
                        else None,
                        time.time() if exhausted else None,
                        row["id"],
                    ),
                )
        return len(rows)
