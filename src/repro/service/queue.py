"""Persistent asynchronous job queue (same database as the store).

Jobs move ``queued → running → done | failed``.  A *failed attempt*
requeues the job until its bounded attempt budget is spent (mirroring
the executor's retry policy, but durable: the counter lives in sqlite,
so retries survive the worker process).  Claiming is one ``BEGIN
IMMEDIATE`` transaction, so any number of worker threads or processes
can pull from the same queue without double-claiming.

Leases and fencing
------------------

A claim is a *lease*, not ownership forever: the claiming transaction
stamps ``lease_expires = now + lease`` and the worker must renew via
:meth:`JobQueue.heartbeat` while it runs.  The durable attempt counter
doubles as a **fencing token** — every claim increments it, so the
token uniquely identifies one lease of one job.  ``complete()`` /
``fail()`` / ``heartbeat()`` verify the caller's token against the
row and raise :class:`~repro.errors.StaleLeaseError` on mismatch: a
worker that lost its lease (expired mid-run, job re-leased elsewhere)
cannot overwrite the rightful execution's outcome.

Kill-and-resume: a job claimed by a worker that died stays ``running``
until its lease expires; :meth:`JobQueue.recover` (called on service
startup *and* periodically by the service's reaper) requeues only
lease-expired jobs at their current attempt count — jobs under a live
lease held by another process are left alone, so any number of service
processes and remote workers can share one database without double
execution.  Because sweep jobs checkpoint per-group state into the
shared store, a resumed job re-simulates only the groups its
predecessor had not finished.

Workers themselves register in a ``workers`` table with capability
tags; a job spec may carry ``"requires": [...]`` and is only handed to
workers whose tags cover it.  Workers that stop checking in are reaped
by :meth:`JobQueue.reap_workers`.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import ServiceError, StaleLeaseError
from repro.service.store import ResultStore

#: Legal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")

#: Default lease duration granted to a claim, seconds.  Workers renew
#: at a fraction of this; the service reaper requeues jobs whose lease
#: has been expired for a while.
DEFAULT_LEASE = 30.0


@dataclass(frozen=True)
class JobRecord:
    """One job's durable state, decoded from its sqlite row."""

    id: str
    spec: dict[str, Any]
    state: str
    attempts: int
    max_attempts: int
    result: Any = None
    error: str | None = None
    owner: str | None = None
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    lease_expires: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def finished_ok(self) -> bool:
        return self.state == "done"

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.state in ("done", "failed")

    @property
    def token(self) -> int:
        """The fencing token of the *current* lease (the attempt count)."""
        return self.attempts

    def to_dict(self) -> dict[str, Any]:
        """JSON-representable form (the HTTP API's job document)."""
        return {
            "id": self.id,
            "spec": self.spec,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "result": self.result,
            "error": self.error,
            "owner": self.owner,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "lease_expires": self.lease_expires,
        }


def _decode(row) -> JobRecord:
    return JobRecord(
        id=row["id"],
        spec=json.loads(row["spec"]),
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        result=json.loads(row["result"]) if row["result"] else None,
        error=row["error"],
        owner=row["owner"],
        submitted=row["submitted"],
        started=row["started"],
        finished=row["finished"],
        lease_expires=row["lease_expires"],
    )


def default_owner() -> str:
    """This worker's identity, recorded on claim (host:pid:uuid-ish)."""
    return f"pid={os.getpid()}"


def job_requires(spec: dict[str, Any]) -> list[str]:
    """The capability tags a job spec demands (``[]`` = any worker)."""
    requires = spec.get("requires") or []
    return [str(tag) for tag in requires]


class JobQueue:
    """Durable FIFO job queue over the store's ``jobs`` table."""

    def __init__(self, store: ResultStore):
        self.store = store

    # ------------------------------------------------------------------
    # Submission and inspection.
    # ------------------------------------------------------------------

    def submit(
        self, spec: dict[str, Any], max_attempts: int = 3
    ) -> str:
        """Enqueue a job spec; returns the new job id."""
        if max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        job_id = uuid.uuid4().hex[:16]
        try:
            text = json.dumps(spec)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"job spec is not JSON-representable: {exc}") from exc
        with self.store.transaction() as conn:
            conn.execute(
                "INSERT INTO jobs (id, spec, state, attempts, max_attempts,"
                " submitted) VALUES (?, ?, 'queued', 0, ?, ?)",
                (job_id, text, max_attempts, time.time()),
            )
        return job_id

    def get(self, job_id: str) -> JobRecord:
        """The job's current durable state."""
        row = self.store.connection().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return _decode(row)

    def list(
        self, state: str | None = None, limit: int = 100
    ) -> list[JobRecord]:
        """Jobs newest-first, optionally filtered by state."""
        if state is not None and state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r}; expected one of {JOB_STATES}"
            )
        if state is None:
            rows = self.store.connection().execute(
                "SELECT * FROM jobs ORDER BY submitted DESC, id LIMIT ?",
                (limit,),
            ).fetchall()
        else:
            rows = self.store.connection().execute(
                "SELECT * FROM jobs WHERE state = ?"
                " ORDER BY submitted DESC, id LIMIT ?",
                (state, limit),
            ).fetchall()
        return [_decode(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Job counts per state (zero-filled)."""
        rows = self.store.connection().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # ------------------------------------------------------------------
    # Worker protocol.
    # ------------------------------------------------------------------

    def claim(
        self,
        owner: str | None = None,
        lease: float = DEFAULT_LEASE,
        tags: Iterable[str] | None = None,
    ) -> JobRecord | None:
        """Atomically lease the oldest claimable queued job, or None.

        The returned record's ``attempts`` is the lease's fencing
        token; pass it back to :meth:`heartbeat` / :meth:`complete` /
        :meth:`fail`.  With ``tags`` given, only jobs whose
        ``requires`` list is covered by the tags are considered.
        """
        if lease < 0:
            raise ServiceError(f"lease must be >= 0, got {lease}")
        owner = owner or default_owner()
        now = time.time()
        with self.store.transaction() as conn:
            if tags is None:
                row = conn.execute(
                    "SELECT * FROM jobs WHERE state = 'queued'"
                    " ORDER BY submitted, id LIMIT 1"
                ).fetchone()
            else:
                offered = set(tags)
                row = None
                for candidate in conn.execute(
                    "SELECT * FROM jobs WHERE state = 'queued'"
                    " ORDER BY submitted, id"
                ):
                    required = job_requires(json.loads(candidate["spec"]))
                    if set(required) <= offered:
                        row = candidate
                        break
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', attempts = attempts + 1,"
                " owner = ?, started = ?, lease_expires = ? WHERE id = ?",
                (owner, now, now + lease, row["id"]),
            )
        return self.get(row["id"])

    def heartbeat(
        self, job_id: str, token: int, lease: float = DEFAULT_LEASE
    ) -> float:
        """Renew a running job's lease; returns the new deadline.

        Raises :class:`StaleLeaseError` when the caller's fencing token
        no longer matches (the lease expired and the job was requeued,
        re-leased or finished elsewhere) — the worker should abandon
        the job.
        """
        deadline = time.time() + lease
        with self.store.transaction() as conn:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires = ?"
                " WHERE id = ? AND state = 'running' AND attempts = ?",
                (deadline, job_id, token),
            )
            if cur.rowcount != 1:
                self._raise_fence(conn, job_id, token, "heartbeat")
        return deadline

    def complete(
        self, job_id: str, result: Any, token: int | None = None
    ) -> None:
        """Mark a running job done with its result document.

        With ``token`` given the transition is fenced: a stale token
        (job re-leased or finished by another worker) raises
        :class:`StaleLeaseError` and the row is untouched.
        """
        try:
            text = json.dumps(result)
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"job result is not JSON-representable: {exc}"
            ) from exc
        with self.store.transaction() as conn:
            sql = (
                "UPDATE jobs SET state = 'done', result = ?, error = NULL,"
                " finished = ?, lease_expires = NULL"
                " WHERE id = ? AND state = 'running'"
            )
            args: list[Any] = [text, time.time(), job_id]
            if token is not None:
                sql += " AND attempts = ?"
                args.append(token)
            cur = conn.execute(sql, args)
            if cur.rowcount != 1:
                self._raise_fence(conn, job_id, token, "complete")

    def fail(
        self, job_id: str, error: str, token: int | None = None
    ) -> str:
        """Record a failed attempt; returns the resulting state.

        Requeues while attempts remain (``"queued"``); otherwise the
        job is terminally ``"failed"`` with the error preserved.  A
        requeued row drops its ``owner``/``started``/``lease_expires``
        (it belongs to nobody until the next claim).  Fenced like
        :meth:`complete` when ``token`` is given.
        """
        with self.store.transaction() as conn:
            sql = (
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE id = ? AND state = 'running'"
            )
            args: list[Any] = [job_id]
            if token is not None:
                sql += " AND attempts = ?"
                args.append(token)
            row = conn.execute(sql, args).fetchone()
            if row is None:
                self._raise_fence(conn, job_id, token, "fail")
            state = (
                "queued" if row["attempts"] < row["max_attempts"] else "failed"
            )
            if state == "queued":
                # A requeued row belongs to nobody until the next
                # claim: stale owner/started would misattribute it in
                # /jobs listings and to the reaper.
                conn.execute(
                    "UPDATE jobs SET state = 'queued', error = ?,"
                    " finished = NULL, owner = NULL, started = NULL,"
                    " lease_expires = NULL WHERE id = ?",
                    (error, job_id),
                )
            else:
                # Terminal failure keeps owner/started: accurate
                # history of which worker spent the last attempt.
                conn.execute(
                    "UPDATE jobs SET state = 'failed', error = ?,"
                    " finished = ?, lease_expires = NULL WHERE id = ?",
                    (error, time.time(), job_id),
                )
        return state

    def _raise_fence(
        self, conn, job_id: str, token: int | None, action: str
    ) -> None:
        """Diagnose why a fenced transition matched no row and raise."""
        row = conn.execute(
            "SELECT state, attempts FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        if token is not None and (
            row["state"] != "running" or row["attempts"] != token
        ):
            raise StaleLeaseError(
                f"stale fencing token for job {job_id!r}: cannot {action}"
                f" with token {token} (job is {row['state']} at attempt"
                f" {row['attempts']})"
            )
        raise ServiceError(
            f"job {job_id!r} is not running; cannot {action} it"
        )

    # ------------------------------------------------------------------
    # Lease reaping (kill-and-resume).
    # ------------------------------------------------------------------

    def recover(
        self, owner: str | None = None, grace: float = 0.0
    ) -> list[str]:
        """Requeue ``running`` jobs whose lease has expired.

        Safe to call from any process at any time: jobs under a live
        lease (a worker somewhere is executing and heartbeating) are
        never touched, so two service processes sharing one database
        do not steal each other's in-flight work.  Rows with no lease
        at all (claimed by a pre-lease build) are treated as expired.

        With ``owner`` given, that owner's running jobs are requeued
        *regardless* of lease — the caller is asserting it knows the
        owner is gone (e.g. its own crashed predecessor).  ``grace``
        widens the expiry test (a lease must be expired for at least
        that long), absorbing clock skew between hosts.

        Jobs whose attempt budget is already spent become ``failed``.
        Returns the transitioned job ids.
        """
        now = time.time()
        with self.store.transaction() as conn:
            if owner is None:
                rows = conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs"
                    " WHERE state = 'running' AND (lease_expires IS NULL"
                    " OR lease_expires < ?)",
                    (now - grace,),
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs"
                    " WHERE state = 'running' AND owner = ?",
                    (owner,),
                ).fetchall()
            for row in rows:
                if row["attempts"] >= row["max_attempts"]:
                    conn.execute(
                        "UPDATE jobs SET state = 'failed', error = ?,"
                        " finished = ?, lease_expires = NULL WHERE id = ?",
                        (
                            "lease expired; worker presumed dead"
                            " (recovered)",
                            time.time(),
                            row["id"],
                        ),
                    )
                else:
                    conn.execute(
                        "UPDATE jobs SET state = 'queued', error = NULL,"
                        " finished = NULL, owner = NULL, started = NULL,"
                        " lease_expires = NULL WHERE id = ?",
                        (row["id"],),
                    )
        return [row["id"] for row in rows]

    # ------------------------------------------------------------------
    # Worker registry.
    # ------------------------------------------------------------------

    def register_worker(
        self,
        worker_id: str | None = None,
        tags: Sequence[str] = (),
        meta: dict[str, Any] | None = None,
    ) -> str:
        """Register (or refresh) a worker; returns its id.

        ``tags`` are the worker's capability tags, matched against job
        specs' ``requires`` lists at claim time.
        """
        worker_id = worker_id or f"worker-{uuid.uuid4().hex[:12]}"
        now = time.time()
        with self.store.transaction() as conn:
            conn.execute(
                "INSERT INTO workers (id, tags, meta, registered, last_seen)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT (id) DO UPDATE SET tags = excluded.tags,"
                " meta = excluded.meta, last_seen = excluded.last_seen",
                (
                    worker_id,
                    json.dumps([str(t) for t in tags]),
                    json.dumps(meta or {}),
                    now,
                    now,
                ),
            )
        return worker_id

    def worker_seen(self, worker_id: str) -> None:
        """Refresh a worker's liveness stamp (claim/heartbeat traffic)."""
        with self.store.transaction() as conn:
            conn.execute(
                "UPDATE workers SET last_seen = ? WHERE id = ?",
                (time.time(), worker_id),
            )

    def workers(self) -> list[dict[str, Any]]:
        """Registered workers, most recently seen first."""
        rows = self.store.connection().execute(
            "SELECT * FROM workers ORDER BY last_seen DESC"
        ).fetchall()
        return [
            {
                "id": row["id"],
                "tags": json.loads(row["tags"]),
                "meta": json.loads(row["meta"]),
                "registered": row["registered"],
                "last_seen": row["last_seen"],
            }
            for row in rows
        ]

    def reap_workers(self, ttl: float) -> list[str]:
        """Drop workers not seen for ``ttl`` seconds; returns their ids.

        Their in-flight jobs are *not* touched here — lease expiry
        (:meth:`recover`) requeues those independently, so a worker
        that merely lost registry contact cannot be double-executed.
        """
        cutoff = time.time() - ttl
        with self.store.transaction() as conn:
            rows = conn.execute(
                "SELECT id FROM workers WHERE last_seen < ?", (cutoff,)
            ).fetchall()
            ids = [row["id"] for row in rows]
            if ids:
                conn.executemany(
                    "DELETE FROM workers WHERE id = ?",
                    [(wid,) for wid in ids],
                )
        return ids
