"""Stdlib-only HTTP front end for the evaluation service.

:class:`EvalService` owns the store, the job queue, the journal and a
pool of worker *threads* that claim queued jobs and execute them (each
job may itself fan out to worker *processes* through the fault-tolerant
executor, per its spec).  :func:`make_server` wraps a service in a
``ThreadingHTTPServer`` speaking a small JSON API:

==========================  ===========================================
``POST /jobs``              submit a job spec → ``{"id", "state"}``
``GET /jobs``               recent jobs (``?state=`` filter)
``GET /jobs/<id>``          one job's status, attempts and result
``GET /results``            query stored metrics (``?prefix=``,
                            ``?namespace=``, ``?limit=``)
``GET /metrics``            journal-derived counters, store stats and
                            queue depths
``GET /healthz``            liveness probe
==========================  ===========================================

Errors are JSON too: ``{"error": "..."}`` with a 4xx/5xx status.
``repro serve`` is the CLI entry point; tests and the CI smoke job run
:func:`make_server` on an ephemeral port in-process.
"""

from __future__ import annotations

import json
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import ServiceError
from repro.runtime.journal import RunJournal, resolve_journal, use_journal
from repro.service.jobs import execute_job, validate_spec
from repro.service.queue import JobQueue
from repro.service.store import ResultStore

#: Request body ceiling (1 MiB of JSON is a very large job spec).
MAX_BODY_BYTES = 1 << 20


class EvalService:
    """The long-lived service: store + queue + journal + job workers."""

    def __init__(
        self,
        db_path: str | Path,
        workers: int = 1,
        journal: RunJournal | None = None,
        poll_interval: float = 0.05,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.store = ResultStore(db_path)
        self.queue = JobQueue(self.store)
        self.journal = resolve_journal(journal)
        self.poll_interval = poll_interval
        self._workers = workers
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._wake = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "EvalService":
        """Recover orphaned jobs and start the worker threads."""
        recovered = self.queue.recover()
        if recovered:
            self.journal.record("service_recover", jobs=recovered)
        self._stop.clear()
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"eval-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self.journal.record(
            "service_start", workers=self._workers, db=str(self.store.path)
        )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the workers and join them."""
        self._stop.set()
        self._wake.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.journal.record("service_stop")

    def __enter__(self) -> "EvalService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Job intake and execution.
    # ------------------------------------------------------------------

    def submit(self, spec: dict[str, Any], max_attempts: int = 3) -> str:
        """Validate and enqueue a job; wakes an idle worker."""
        validate_spec(spec)
        job_id = self.queue.submit(spec, max_attempts=max_attempts)
        self.journal.record(
            "service_job", id=job_id, state="queued", kind=spec.get("kind")
        )
        self._wake.set()
        return job_id

    def _worker_loop(self) -> None:
        owner = f"thread={threading.current_thread().name}"
        while not self._stop.is_set():
            job = self.queue.claim(owner)
            if job is None:
                self._wake.wait(timeout=self.poll_interval)
                self._wake.clear()
                continue
            self.journal.record(
                "service_job",
                id=job.id,
                state="running",
                attempt=job.attempts,
                kind=job.spec.get("kind"),
            )
            try:
                result = execute_job(job.spec, self.store, self.journal)
            except Exception as exc:  # noqa: BLE001 - job code may raise anything
                state = self.queue.fail(job.id, repr(exc))
                self.journal.record(
                    "service_job",
                    id=job.id,
                    state=state,
                    attempt=job.attempts,
                    error=repr(exc),
                )
            else:
                self.queue.complete(job.id, result)
                self.journal.record(
                    "service_job",
                    id=job.id,
                    state="done",
                    attempt=job.attempts,
                )

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until no jobs are queued or running (True on success)."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            counts = self.queue.counts()
            if counts["queued"] == 0 and counts["running"] == 0:
                return True
            time.sleep(self.poll_interval)
        return False

    # ------------------------------------------------------------------
    # Introspection (the /metrics document).
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Journal counters, store stats and queue depths, one document."""
        return {
            "jobs": self.queue.counts(),
            "store": self.store.stats(),
            "journal": self.journal.summary(),
        }


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the owning server's EvalService."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route access logs into the journal instead of stderr."""
        self.server.service.journal.record(
            "http", client=self.client_address[0], line=format % args
        )

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body is empty; expected JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            url = urlparse(self.path)
            query = {k: v[-1] for k, v in parse_qs(url.query).items()}
            service = self.server.service
            parts = [p for p in url.path.split("/") if p]
            if url.path == "/healthz":
                self._send_json({"ok": True})
            elif url.path == "/metrics":
                self._send_json(service.metrics())
            elif parts == ["jobs"]:
                records = service.queue.list(
                    state=query.get("state"),
                    limit=int(query.get("limit", 100)),
                )
                self._send_json({"jobs": [r.to_dict() for r in records]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(service.queue.get(parts[1]).to_dict())
            elif parts == ["results"]:
                limit = query.get("limit")
                items = service.store.items(
                    prefix=query.get("prefix", ""),
                    namespace=query.get("namespace", "metrics"),
                    limit=int(limit) if limit is not None else None,
                )
                self._send_json({"count": len(items), "items": items})
            else:
                self._send_error(f"no such resource: {url.path}", 404)
        except ServiceError as exc:
            self._send_error(str(exc), 400 if "unknown job id" not in str(exc) else 404)
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            traceback.print_exc()
            self._send_error(f"internal error: {exc!r}", 500)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            url = urlparse(self.path)
            if url.path != "/jobs":
                self._send_error(f"no such resource: {url.path}", 404)
                return
            payload = self._read_json()
            if (
                isinstance(payload, dict)
                and "spec" in payload
                and "kind" not in payload
            ):
                spec = payload["spec"]
                max_attempts = int(payload.get("max_attempts", 3))
            else:
                spec = payload
                max_attempts = 3
            job_id = self.server.service.submit(
                spec, max_attempts=max_attempts
            )
            self._send_json({"id": job_id, "state": "queued"}, status=201)
        except ServiceError as exc:
            self._send_error(str(exc), 400)
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            traceback.print_exc()
            self._send_error(f"internal error: {exc!r}", 500)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    service: EvalService


def make_server(
    service: EvalService, host: str = "127.0.0.1", port: int = 0
) -> _Server:
    """An HTTP server bound to ``host:port`` (0 = ephemeral) serving
    ``service``; call ``serve_forever()`` (or run it in a thread)."""
    server = _Server((host, port), _Handler)
    server.service = service
    return server


def serve(
    db_path: str | Path,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 1,
    journal_path: str | Path | None = None,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    journal = RunJournal(journal_path) if journal_path else RunJournal()
    with use_journal(journal):
        service = EvalService(db_path, workers=workers, journal=journal)
        server = make_server(service, host, port)
        with service:
            address = f"http://{server.server_address[0]}:{server.server_address[1]}"
            print(f"[repro serve] listening on {address} (db: {db_path})")
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                print("[repro serve] shutting down")
            finally:
                server.server_close()
