"""Stdlib-only HTTP front end for the evaluation service.

:class:`EvalService` owns the store, the job queue, the journal and a
pool of worker *threads* that claim queued jobs and execute them (each
job may itself fan out to worker *processes* through the fault-tolerant
executor, per its spec).  With ``workers=0`` the service runs in pure
**broker mode**: it executes nothing itself and all work is pulled by
remote worker processes (``repro work``) over the HTTP fleet protocol.

:func:`make_server` wraps a service in a ``ThreadingHTTPServer``
speaking a small JSON API:

===============================  ======================================
``POST /jobs``                   submit a job spec → ``{"id", "state"}``
``GET /jobs``                    recent jobs (``?state=`` filter)
``GET /jobs/<id>``               one job's status, attempts and result
``POST /workers``                register a worker (capability tags)
``GET /workers``                 the live worker registry
``POST /claim``                  lease the oldest claimable job
``POST /jobs/<id>/heartbeat``    renew a lease (fenced by token)
``POST /jobs/<id>/complete``     finish a job (fenced by token)
``POST /jobs/<id>/fail``         fail an attempt (fenced by token)
``GET /result``                  one stored value (``?key=&namespace=``)
``POST /results``                upload stored values (worker results)
``GET /results``                 query stored metrics (``?prefix=``,
                                 ``?namespace=``, ``?limit=``)
``GET /metrics``                 journal counters, store stats, queue
                                 depths and worker registry size
``GET /metrics/history``         the reaper-sampled time-series ring
``GET /runs``                    recorded runs (``?kind=``, ``?limit=``)
``GET /runs/<id>``               one run + its rows
``GET /runs/<id>/table.csv``     the run's canonical CSV table
``POST /runs``                   record a run (fleet workers)
``GET /compare``                 diff two runs (``?a=&b=``)
``GET /dashboard``               zero-dependency HTML dashboard
``GET /healthz``                 liveness probe
===============================  ======================================

Stale fencing tokens answer **409**; other errors are JSON too:
``{"error": "..."}`` with a 4xx/5xx status.  ``repro serve`` is the CLI
entry point; tests and the CI smoke/fleet jobs run :func:`make_server`
on an ephemeral port in-process.
"""

from __future__ import annotations

import json
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.analytics.compare import compare_runs
from repro.analytics.dashboard import render_dashboard
from repro.analytics.metrics import MetricsRing
from repro.analytics.runs import get_run, get_run_rows, list_runs, record_run
from repro.analytics.table import run_table_csv
from repro.errors import ServiceError, StaleLeaseError
from repro.runtime.journal import (
    NullJournal,
    RunJournal,
    active_journal,
    resolve_journal,
    set_active_journal,
    use_journal,
)
from repro.service.jobs import execute_job, validate_spec
from repro.service.queue import DEFAULT_LEASE, JobQueue
from repro.service.store import ResultStore

#: Request body ceiling (8 MiB: result uploads carry whole sweep grids).
MAX_BODY_BYTES = 8 << 20

#: Longest lease a client may request over HTTP (a runaway value would
#: park a job un-reapable for that long after a worker death).
MAX_LEASE = 15 * 60.0


class EvalService:
    """The long-lived service: store + queue + journal + job workers.

    ``lease`` is the lease duration for local worker threads and the
    default offered to remote claims; ``reap_interval`` is how often
    the reaper thread renews local leases and requeues expired ones
    (default: ``lease / 3``); ``worker_ttl`` is how long a registered
    remote worker may go silent before it is dropped from the registry
    (default: ``4 * lease``).
    """

    def __init__(
        self,
        db_path: str | Path,
        workers: int = 1,
        journal: RunJournal | None = None,
        poll_interval: float = 0.05,
        lease: float = DEFAULT_LEASE,
        reap_interval: float | None = None,
        worker_ttl: float | None = None,
    ):
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        if lease <= 0:
            raise ServiceError(f"lease must be > 0, got {lease}")
        self.store = ResultStore(db_path)
        self.queue = JobQueue(self.store)
        # The service always owns a *recording* journal: run recording
        # derives per-row wall/kernel/cache columns from the event
        # window around each job, which a NullJournal (the resolve
        # default when nothing is active) would silently leave empty.
        resolved = resolve_journal(journal)
        if isinstance(resolved, NullJournal):
            resolved = RunJournal()
        self.journal = resolved
        self._installed_active_journal = False
        self.poll_interval = poll_interval
        self.lease = lease
        self.reap_interval = (
            reap_interval if reap_interval is not None else lease / 3.0
        )
        self.worker_ttl = (
            worker_ttl if worker_ttl is not None else 4.0 * lease
        )
        self._workers = workers
        # Reaper-sampled metrics time series behind /metrics/history
        # and the dashboard sparklines.
        self.metrics_ring = MetricsRing()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        # Condition + version counter: submit() bumps the version and
        # notifies everyone, idle workers re-check the version before
        # waiting, so no wakeup is ever swallowed by another worker.
        self._cond = threading.Condition()
        self._queue_version = 0
        # Jobs being executed by *this* process's threads, job id →
        # fencing token; the reaper renews their leases.
        self._active: dict[str, int] = {}
        self._active_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "EvalService":
        """Reap expired leases and start the worker + reaper threads."""
        # Simulation internals (stack-distance kernels, evaluator
        # checkpoints) journal through the process-wide *active*
        # journal; install ours for the service's lifetime when the
        # embedding process has none, so run recording sees their
        # events.  ``repro serve`` installs the same journal anyway.
        if isinstance(active_journal(), NullJournal):
            set_active_journal(self.journal)
            self._installed_active_journal = True
        recovered = self.queue.recover()
        for job_id in recovered:
            self.journal.record(
                "lease", action="expired", id=job_id, where="startup"
            )
        if recovered:
            self.journal.record("service_recover", jobs=len(recovered))
        self._stop.clear()
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"eval-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        reaper = threading.Thread(
            target=self._reaper_loop, name="eval-reaper", daemon=True
        )
        reaper.start()
        self._threads.append(reaper)
        self.journal.record(
            "service_start", workers=self._workers, db=str(self.store.path)
        )
        self._sample_metrics()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the workers and join them."""
        if self._installed_active_journal:
            set_active_journal(None)
            self._installed_active_journal = False
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.journal.record("service_stop")

    def __enter__(self) -> "EvalService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Job intake and execution.
    # ------------------------------------------------------------------

    def submit(self, spec: dict[str, Any], max_attempts: int = 3) -> str:
        """Validate and enqueue a job; wakes every idle worker."""
        validate_spec(spec)
        job_id = self.queue.submit(spec, max_attempts=max_attempts)
        self.journal.record(
            "service_job", id=job_id, state="queued", kind=spec.get("kind")
        )
        self._notify_queued()
        return job_id

    def _notify_queued(self) -> None:
        with self._cond:
            self._queue_version += 1
            self._cond.notify_all()

    def _worker_loop(self) -> None:
        owner = f"thread={threading.current_thread().name}"
        while not self._stop.is_set():
            with self._cond:
                version = self._queue_version
            job = self.queue.claim(owner, lease=self.lease)
            if job is None:
                with self._cond:
                    # Only wait if nothing was submitted since the
                    # failed claim: a missed notify cannot strand a
                    # queued job with an idle worker.
                    if (
                        self._queue_version == version
                        and not self._stop.is_set()
                    ):
                        self._cond.wait(timeout=self.poll_interval)
                continue
            token = job.token
            with self._active_lock:
                self._active[job.id] = token
            self.journal.record(
                "lease",
                action="grant",
                id=job.id,
                owner=owner,
                token=token,
                expires=job.lease_expires,
            )
            self.journal.record(
                "service_job",
                id=job.id,
                state="running",
                attempt=job.attempts,
                kind=job.spec.get("kind"),
            )
            try:
                result = execute_job(
                    job.spec, self.store, self.journal, run_id=job.id
                )
            except Exception as exc:  # noqa: BLE001 - job code may raise anything
                self._finish(job, token, error=repr(exc))
            else:
                self._finish(job, token, result=result)

    def _finish(
        self,
        job,
        token: int,
        result: Any = None,
        error: str | None = None,
    ) -> None:
        """Report one local execution's outcome through the fence."""
        try:
            if error is None:
                self.queue.complete(job.id, result, token=token)
                self.journal.record(
                    "service_job",
                    id=job.id,
                    state="done",
                    attempt=job.attempts,
                )
            else:
                state = self.queue.fail(job.id, error, token=token)
                self.journal.record(
                    "service_job",
                    id=job.id,
                    state=state,
                    attempt=job.attempts,
                    error=error,
                )
                if state == "queued":
                    self._notify_queued()
        except StaleLeaseError as exc:
            # The lease expired mid-run and the job moved on without
            # us; the other execution's outcome stands.
            self.journal.record(
                "fence_rejected", id=job.id, token=token, detail=str(exc)
            )
        finally:
            with self._active_lock:
                self._active.pop(job.id, None)

    def _reaper_loop(self) -> None:
        """Renew local leases; requeue expired ones; drop dead workers."""
        while not self._stop.wait(self.reap_interval):
            with self._active_lock:
                active = dict(self._active)
            for job_id, token in active.items():
                try:
                    expires = self.queue.heartbeat(
                        job_id, token, lease=self.lease
                    )
                    self.journal.record(
                        "lease",
                        action="renew",
                        id=job_id,
                        token=token,
                        expires=expires,
                    )
                except ServiceError:
                    # Lost or finished; the executing thread's fenced
                    # complete()/fail() settles it.
                    pass
            try:
                reaped = self.queue.recover()
            except ServiceError:
                continue
            for job_id in reaped:
                self.journal.record(
                    "lease", action="expired", id=job_id, where="reaper"
                )
            if reaped:
                self._notify_queued()
            dead = self.queue.reap_workers(self.worker_ttl)
            for worker_id in dead:
                self.journal.record("worker", action="reaped", id=worker_id)
            self._sample_metrics()

    def _sample_metrics(self) -> None:
        """Drop one compact sample into the metrics ring.

        Deliberately cheap (queue counts + store stats, no journal
        summary) and failure-proof: a locked database must never kill
        the reaper thread.
        """
        try:
            counts = self.queue.counts()
            stats = self.store.stats()
            self.metrics_ring.sample(
                {
                    **counts,
                    "workers": len(self.queue.workers()),
                    "entries": stats.get("entries", 0),
                    "db_bytes": stats.get("db_bytes", 0),
                    "hit_rate": stats.get("hit_rate", 0.0),
                }
            )
        except Exception:  # noqa: BLE001 - sampling is best-effort
            pass

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until no jobs are queued or running (True on success)."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            counts = self.queue.counts()
            if counts["queued"] == 0 and counts["running"] == 0:
                return True
            # Bounded below poll_interval: drain is a progress check,
            # not a claim loop, and must stay responsive even when the
            # workers' idle poll is configured long.
            time.sleep(min(self.poll_interval, 0.05))
        return False

    # ------------------------------------------------------------------
    # Introspection (the /metrics document).
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Journal counters, store stats and queue depths, one document."""
        return {
            "jobs": self.queue.counts(),
            "workers": len(self.queue.workers()),
            "store": self.store.stats(),
            "journal": self.journal.summary(),
        }


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the owning server's EvalService."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route access logs into the journal instead of stderr."""
        self.server.service.journal.record(
            "http", client=self.client_address[0], line=format % args
        )

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _send_body(
        self, body: str, content_type: str, status: int = 200
    ) -> None:
        raw = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError("request body is empty; expected JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            url = urlparse(self.path)
            query = {k: v[-1] for k, v in parse_qs(url.query).items()}
            service = self.server.service
            parts = [p for p in url.path.split("/") if p]
            if url.path == "/healthz":
                self._send_json({"ok": True})
            elif url.path == "/metrics":
                self._send_json(service.metrics())
            elif parts == ["jobs"]:
                records = service.queue.list(
                    state=query.get("state"),
                    limit=int(query.get("limit", 100)),
                )
                self._send_json({"jobs": [r.to_dict() for r in records]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(service.queue.get(parts[1]).to_dict())
            elif parts == ["workers"]:
                self._send_json({"workers": service.queue.workers()})
            elif parts == ["result"]:
                key = query.get("key")
                if not key:
                    raise ServiceError("GET /result needs a ?key=")
                namespace = query.get("namespace", "metrics")
                found = service.store.contains(key, namespace=namespace)
                value = (
                    service.store.get(key, namespace=namespace)
                    if found
                    else None
                )
                self._send_json({"found": found, "value": value})
            elif parts == ["results"]:
                limit = query.get("limit")
                items = service.store.items(
                    prefix=query.get("prefix", ""),
                    namespace=query.get("namespace", "metrics"),
                    limit=int(limit) if limit is not None else None,
                )
                self._send_json({"count": len(items), "items": items})
            elif parts == ["metrics", "history"]:
                self._send_json(
                    {
                        "capacity": service.metrics_ring.capacity,
                        "total": service.metrics_ring.total,
                        "samples": service.metrics_ring.samples(),
                    }
                )
            elif parts == ["runs"]:
                runs = list_runs(
                    service.store,
                    kind=query.get("kind"),
                    state=query.get("state"),
                    limit=int(query.get("limit", 50)),
                )
                self._send_json({"count": len(runs), "runs": runs})
            elif len(parts) == 2 and parts[0] == "runs":
                run = get_run(service.store, parts[1])
                rows = get_run_rows(service.store, parts[1])
                self._send_json({"run": run, "rows": rows})
            elif (
                len(parts) == 3
                and parts[0] == "runs"
                and parts[2] == "table.csv"
            ):
                csv_text = run_table_csv(service.store, parts[1])
                self._send_body(csv_text, "text/csv; charset=utf-8")
            elif parts == ["compare"]:
                a, b = query.get("a"), query.get("b")
                if not a or not b:
                    raise ServiceError("GET /compare needs ?a= and ?b=")
                self._send_json(compare_runs(service.store, a, b))
            elif parts == ["dashboard"]:
                page = render_dashboard(
                    list_runs(service.store, limit=50),
                    service.metrics_ring.samples(),
                    service.store.stats(),
                    service.queue.counts(),
                    workers=len(service.queue.workers()),
                    db_path=str(service.store.path),
                    interval=max(service.lease / 3.0, 0.05),
                )
                self._send_body(page, "text/html; charset=utf-8")
            else:
                self._send_error(f"no such resource: {url.path}", 404)
        except ServiceError as exc:
            message = str(exc)
            missing = "unknown job id" in message or "unknown run id" in message
            self._send_error(message, 404 if missing else 400)
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            traceback.print_exc()
            self._send_error(f"internal error: {exc!r}", 500)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            if parts == ["jobs"]:
                self._post_job()
            elif parts == ["workers"]:
                self._post_worker()
            elif parts == ["claim"]:
                self._post_claim()
            elif parts == ["results"]:
                self._post_results()
            elif parts == ["runs"]:
                self._post_run()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] in (
                "heartbeat",
                "complete",
                "fail",
            ):
                self._post_job_transition(parts[1], parts[2])
            else:
                self._send_error(f"no such resource: {url.path}", 404)
        except StaleLeaseError as exc:
            parts = [p for p in urlparse(self.path).path.split("/") if p]
            self.server.service.journal.record(
                "fence_rejected",
                id=parts[1] if len(parts) == 3 else None,
                where="http",
                detail=str(exc),
            )
            self._send_error(str(exc), 409)
        except ServiceError as exc:
            message = str(exc)
            missing = "unknown job id" in message or "unknown run id" in message
            self._send_error(message, 404 if missing else 400)
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            traceback.print_exc()
            self._send_error(f"internal error: {exc!r}", 500)

    # -- POST bodies ----------------------------------------------------

    def _post_job(self) -> None:
        payload = self._read_json()
        if (
            isinstance(payload, dict)
            and "spec" in payload
            and "kind" not in payload
        ):
            spec = payload["spec"]
            max_attempts = int(payload.get("max_attempts", 3))
        else:
            spec = payload
            max_attempts = 3
        job_id = self.server.service.submit(spec, max_attempts=max_attempts)
        self._send_json({"id": job_id, "state": "queued"}, status=201)

    def _post_run(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or "run" not in payload:
            raise ServiceError(
                "POST /runs expects {'run': {...}, 'rows': [...]}"
            )
        run = payload["run"]
        rows = payload.get("rows") or []
        record_run(self.server.service.store, run, rows)
        self._send_json(
            {"id": run.get("id"), "rows": len(rows)}, status=201
        )

    def _post_worker(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict):
            raise ServiceError("worker registration must be a JSON object")
        service = self.server.service
        worker_id = service.queue.register_worker(
            worker_id=payload.get("id"),
            tags=payload.get("tags") or (),
            meta=payload.get("meta"),
        )
        service.journal.record(
            "worker",
            action="register",
            id=worker_id,
            tags=payload.get("tags") or [],
        )
        self._send_json(
            {"id": worker_id, "lease": service.lease}, status=201
        )

    def _post_claim(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict):
            raise ServiceError("claim request must be a JSON object")
        service = self.server.service
        worker = payload.get("worker")
        if not worker:
            raise ServiceError("claim request needs a 'worker' id")
        lease = _clamped_lease(payload.get("lease"), service.lease)
        tags = payload.get("tags")
        service.queue.worker_seen(worker)
        job = service.queue.claim(
            owner=worker,
            lease=lease,
            tags=tags if tags is not None else None,
        )
        if job is None:
            self._send_json({"job": None})
            return
        service.journal.record(
            "lease",
            action="grant",
            id=job.id,
            owner=worker,
            token=job.token,
            expires=job.lease_expires,
        )
        service.journal.record(
            "service_job",
            id=job.id,
            state="running",
            attempt=job.attempts,
            kind=job.spec.get("kind"),
            owner=worker,
        )
        self._send_json(
            {"job": job.to_dict(), "token": job.token, "lease": lease}
        )

    def _post_results(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or not isinstance(
            payload.get("items"), dict
        ):
            raise ServiceError(
                "result upload must be {'namespace': ..., 'items': {...}}"
            )
        service = self.server.service
        namespace = str(payload.get("namespace", "metrics"))
        items = payload["items"]
        service.store.put_many(items, namespace=namespace)
        self._send_json({"stored": len(items), "namespace": namespace})

    def _post_job_transition(self, job_id: str, action: str) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict):
            raise ServiceError(f"{action} request must be a JSON object")
        service = self.server.service
        token = payload.get("token")
        if token is None:
            raise ServiceError(f"{action} request needs a fencing 'token'")
        token = int(token)
        worker = payload.get("worker")
        if worker:
            service.queue.worker_seen(worker)
        if action == "heartbeat":
            lease = _clamped_lease(payload.get("lease"), service.lease)
            expires = service.queue.heartbeat(job_id, token, lease=lease)
            service.journal.record(
                "lease",
                action="renew",
                id=job_id,
                owner=worker,
                token=token,
                expires=expires,
            )
            self._send_json({"ok": True, "lease_expires": expires})
        elif action == "complete":
            service.queue.complete(job_id, payload.get("result"), token=token)
            service.journal.record(
                "service_job",
                id=job_id,
                state="done",
                attempt=token,
                owner=worker,
            )
            self._send_json({"id": job_id, "state": "done"})
        else:  # fail
            error = str(payload.get("error") or "worker reported failure")
            state = service.queue.fail(job_id, error, token=token)
            service.journal.record(
                "service_job",
                id=job_id,
                state=state,
                attempt=token,
                error=error,
                owner=worker,
            )
            if state == "queued":
                service._notify_queued()
            self._send_json({"id": job_id, "state": state})


def _clamped_lease(value: Any, default: float) -> float:
    """A client-requested lease bounded to (0, MAX_LEASE]."""
    if value is None:
        return default
    lease = float(value)
    if lease <= 0:
        raise ServiceError(f"lease must be > 0, got {lease}")
    return min(lease, MAX_LEASE)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    service: EvalService


def make_server(
    service: EvalService, host: str = "127.0.0.1", port: int = 0
) -> _Server:
    """An HTTP server bound to ``host:port`` (0 = ephemeral) serving
    ``service``; call ``serve_forever()`` (or run it in a thread)."""
    server = _Server((host, port), _Handler)
    server.service = service
    return server


def serve(
    db_path: str | Path,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 1,
    journal_path: str | Path | None = None,
    lease: float = DEFAULT_LEASE,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    journal = RunJournal(journal_path) if journal_path else RunJournal()
    with use_journal(journal):
        service = EvalService(
            db_path, workers=workers, journal=journal, lease=lease
        )
        server = make_server(service, host, port)
        with service:
            address = f"http://{server.server_address[0]}:{server.server_address[1]}"
            print(
                f"[repro serve] listening on {address} (db: {db_path},"
                f" local workers: {workers})",
                flush=True,
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                print("[repro serve] shutting down")
            finally:
                server.server_close()
