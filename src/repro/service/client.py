"""Thin stdlib HTTP client for the evaluation service.

Speaks the JSON API of :mod:`repro.service.server`; used by ``repro
submit`` and by tests/CI.  Only ``urllib.request`` — no new
dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any
from urllib.parse import urlencode

from repro.errors import ServiceError
from repro.service.queue import JobRecord


class ServiceClient:
    """Client for one evaluation-service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Any | None = None
    ) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 - body may not be JSON
                detail = ""
            raise ServiceError(
                f"{method} {path} failed: HTTP {exc.code}"
                + (f" ({detail})" if detail else "")
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach evaluation service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    # ------------------------------------------------------------------
    # API surface.
    # ------------------------------------------------------------------

    def health(self) -> bool:
        """True when the server answers its liveness probe."""
        return bool(self._request("GET", "/healthz").get("ok"))

    def submit(self, spec: dict[str, Any], max_attempts: int = 3) -> str:
        """Submit a job spec; returns the job id."""
        doc = self._request(
            "POST", "/jobs", {"spec": spec, "max_attempts": max_attempts}
        )
        return doc["id"]

    def job(self, job_id: str) -> JobRecord:
        """One job's current state."""
        return _record(self._request("GET", f"/jobs/{job_id}"))

    def jobs(
        self, state: str | None = None, limit: int = 100
    ) -> list[JobRecord]:
        """Recent jobs, newest first."""
        query = {"limit": str(limit)}
        if state is not None:
            query["state"] = state
        doc = self._request("GET", f"/jobs?{urlencode(query)}")
        return [_record(item) for item in doc["jobs"]]

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> JobRecord:
        """Poll until the job is terminal; returns the ``done`` record.

        Raises :class:`ServiceError` when the job fails or the timeout
        expires (the error message carries the job's stored error).
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.state == "done":
                return record
            if record.state == "failed":
                raise ServiceError(
                    f"job {job_id} failed after {record.attempts} "
                    f"attempt(s): {record.error}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record.state} after {timeout}s"
                )
            time.sleep(poll)

    def results(
        self,
        prefix: str = "",
        namespace: str = "metrics",
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Stored metrics whose key starts with ``prefix``."""
        query = {"prefix": prefix, "namespace": namespace}
        if limit is not None:
            query["limit"] = str(limit)
        return self._request("GET", f"/results?{urlencode(query)}")["items"]

    def metrics(self) -> dict[str, Any]:
        """The server's /metrics document (journal + store + queue)."""
        return self._request("GET", "/metrics")


def _record(doc: dict[str, Any]) -> JobRecord:
    return JobRecord(
        id=doc["id"],
        spec=doc.get("spec") or {},
        state=doc["state"],
        attempts=doc.get("attempts", 0),
        max_attempts=doc.get("max_attempts", 0),
        result=doc.get("result"),
        error=doc.get("error"),
        owner=doc.get("owner"),
        submitted=doc.get("submitted") or 0.0,
        started=doc.get("started"),
        finished=doc.get("finished"),
    )
