"""Thin stdlib HTTP client for the evaluation service.

Speaks the JSON API of :mod:`repro.service.server` — both the
submit/wait surface (``repro submit``, tests, CI) and the worker-fleet
protocol (register / claim / heartbeat / complete / fail / result
upload) used by :mod:`repro.service.worker`.  Only ``urllib.request``
— no new dependencies.

A **409** from a fenced transition surfaces as
:class:`~repro.errors.StaleLeaseError` so workers can distinguish
"my lease was lost, abandon the job" from transport failures.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Iterable, Mapping
from urllib.parse import urlencode

from repro.errors import ServiceError, StaleLeaseError
from repro.service.queue import JobRecord


class ServiceClient:
    """Client for one evaluation-service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Any | None = None
    ) -> Any:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 - body may not be JSON
                detail = ""
            message = f"{method} {path} failed: HTTP {exc.code}" + (
                f" ({detail})" if detail else ""
            )
            if exc.code == 409:
                raise StaleLeaseError(message) from exc
            raise ServiceError(message) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach evaluation service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    def _request_text(self, path: str) -> str:
        """GET a non-JSON resource (CSV table, dashboard HTML)."""
        url = self.base_url + path
        request = urllib.request.Request(url, method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode()
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:  # noqa: BLE001 - body may not be JSON
                detail = ""
            raise ServiceError(
                f"GET {path} failed: HTTP {exc.code}"
                + (f" ({detail})" if detail else "")
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach evaluation service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    # ------------------------------------------------------------------
    # API surface.
    # ------------------------------------------------------------------

    def health(self) -> bool:
        """True when the server answers its liveness probe."""
        return bool(self._request("GET", "/healthz").get("ok"))

    def submit(self, spec: dict[str, Any], max_attempts: int = 3) -> str:
        """Submit a job spec; returns the job id."""
        doc = self._request(
            "POST", "/jobs", {"spec": spec, "max_attempts": max_attempts}
        )
        return doc["id"]

    def job(self, job_id: str) -> JobRecord:
        """One job's current state."""
        return _record(self._request("GET", f"/jobs/{job_id}"))

    def jobs(
        self, state: str | None = None, limit: int = 100
    ) -> list[JobRecord]:
        """Recent jobs, newest first."""
        query = {"limit": str(limit)}
        if state is not None:
            query["state"] = state
        doc = self._request("GET", f"/jobs?{urlencode(query)}")
        return [_record(item) for item in doc["jobs"]]

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll: float = 0.1,
        poll_max: float = 2.0,
    ) -> JobRecord:
        """Poll until the job is terminal; returns the ``done`` record.

        The poll interval starts at ``poll`` and doubles (with jitter)
        up to ``poll_max``, so many waiting clients do not hammer the
        server in lockstep at a fixed rate.  Raises
        :class:`ServiceError` when the job fails or the timeout expires
        (the error message carries the job's stored error).
        """
        deadline = time.monotonic() + timeout
        interval = max(poll, 1e-3)
        while True:
            record = self.job(job_id)
            if record.state == "done":
                return record
            if record.state == "failed":
                raise ServiceError(
                    f"job {job_id} failed after {record.attempts} "
                    f"attempt(s): {record.error}"
                )
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record.state} after {timeout}s"
                )
            # Jittered bounded exponential backoff, trimmed to the
            # remaining budget so the final poll lands near the deadline.
            sleep = min(
                interval * random.uniform(0.5, 1.0), deadline - now
            )
            time.sleep(max(sleep, 0.0))
            interval = min(interval * 2.0, poll_max)

    def results(
        self,
        prefix: str = "",
        namespace: str = "metrics",
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Stored metrics whose key starts with ``prefix``."""
        query = {"prefix": prefix, "namespace": namespace}
        if limit is not None:
            query["limit"] = str(limit)
        return self._request("GET", f"/results?{urlencode(query)}")["items"]

    def runs(
        self,
        kind: str | None = None,
        state: str | None = None,
        limit: int = 50,
    ) -> list[dict[str, Any]]:
        """Recorded runs, newest first."""
        query: dict[str, Any] = {"limit": limit}
        if kind:
            query["kind"] = kind
        if state:
            query["state"] = state
        return self._request("GET", f"/runs?{urlencode(query)}")["runs"]

    def run(self, run_id: str) -> dict[str, Any]:
        """One recorded run with its rows: {'run': ..., 'rows': [...]}."""
        return self._request("GET", f"/runs/{run_id}")

    def run_table_csv(self, run_id: str) -> str:
        """The run's canonical CSV table as text."""
        return self._request_text(f"/runs/{run_id}/table.csv")

    def compare(self, a: str, b: str) -> dict[str, Any]:
        """Diff two runs' rows and Pareto frontiers."""
        return self._request(
            "GET", f"/compare?{urlencode({'a': a, 'b': b})}"
        )

    def record_run(
        self,
        run: Mapping[str, Any],
        rows: Iterable[Mapping[str, Any]],
    ) -> None:
        """Upload a recorded run (fleet workers' RemoteStore sink)."""
        self._request(
            "POST", "/runs", {"run": dict(run), "rows": list(rows)}
        )

    def metrics_history(self) -> dict[str, Any]:
        """The reaper-sampled metrics ring (GET /metrics/history)."""
        return self._request("GET", "/metrics/history")

    def dashboard(self) -> str:
        """The dashboard page HTML (GET /dashboard)."""
        return self._request_text("/dashboard")

    def metrics(self) -> dict[str, Any]:
        """The server's /metrics document (journal + store + queue)."""
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    # Worker-fleet protocol.
    # ------------------------------------------------------------------

    def register_worker(
        self,
        worker_id: str | None = None,
        tags: Iterable[str] = (),
        meta: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Register this process as a worker; returns ``{"id","lease"}``."""
        return self._request(
            "POST",
            "/workers",
            {"id": worker_id, "tags": list(tags), "meta": meta or {}},
        )

    def workers(self) -> list[dict[str, Any]]:
        """The server's live worker registry."""
        return self._request("GET", "/workers")["workers"]

    def claim(
        self,
        worker: str,
        tags: Iterable[str] | None = None,
        lease: float | None = None,
    ) -> tuple[JobRecord, int] | None:
        """Lease the oldest claimable job: ``(record, fencing token)``,
        or None when the queue has nothing for this worker."""
        payload: dict[str, Any] = {"worker": worker}
        if tags is not None:
            payload["tags"] = list(tags)
        if lease is not None:
            payload["lease"] = lease
        doc = self._request("POST", "/claim", payload)
        if doc.get("job") is None:
            return None
        return _record(doc["job"]), int(doc["token"])

    def heartbeat(
        self,
        job_id: str,
        token: int,
        worker: str | None = None,
        lease: float | None = None,
    ) -> float:
        """Renew a lease; returns the new deadline.  Raises
        :class:`StaleLeaseError` when the lease was lost."""
        payload: dict[str, Any] = {"token": token, "worker": worker}
        if lease is not None:
            payload["lease"] = lease
        doc = self._request("POST", f"/jobs/{job_id}/heartbeat", payload)
        return float(doc["lease_expires"])

    def complete(
        self,
        job_id: str,
        result: Any,
        token: int,
        worker: str | None = None,
    ) -> None:
        """Finish a leased job (fenced).  Raises
        :class:`StaleLeaseError` when another execution won."""
        self._request(
            "POST",
            f"/jobs/{job_id}/complete",
            {"token": token, "result": result, "worker": worker},
        )

    def fail(
        self,
        job_id: str,
        error: str,
        token: int,
        worker: str | None = None,
    ) -> str:
        """Report a failed attempt (fenced); returns the job's state."""
        doc = self._request(
            "POST",
            f"/jobs/{job_id}/fail",
            {"token": token, "error": error, "worker": worker},
        )
        return doc["state"]

    def result(
        self, key: str, namespace: str = "metrics"
    ) -> dict[str, Any]:
        """One stored value: ``{"found": bool, "value": ...}``."""
        query = urlencode({"key": key, "namespace": namespace})
        return self._request("GET", f"/result?{query}")

    def put_results(
        self, items: Mapping[str, Any], namespace: str = "metrics"
    ) -> int:
        """Upload values into the shared store; returns count stored."""
        doc = self._request(
            "POST",
            "/results",
            {"namespace": namespace, "items": dict(items)},
        )
        return int(doc["stored"])


def _record(doc: dict[str, Any]) -> JobRecord:
    return JobRecord(
        id=doc["id"],
        spec=doc.get("spec") or {},
        state=doc["state"],
        attempts=doc.get("attempts", 0),
        max_attempts=doc.get("max_attempts", 0),
        result=doc.get("result"),
        error=doc.get("error"),
        owner=doc.get("owner"),
        submitted=doc.get("submitted") or 0.0,
        started=doc.get("started"),
        finished=doc.get("finished"),
    )
