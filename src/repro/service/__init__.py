"""Evaluation service: the shareable half of Section 5.1's architecture.

The paper puts a *persistent disk-based database* (the EvaluationCache)
between the exploration layers and the expensive Evaluators.  This
package turns that database into a long-lived, multi-process service:

* :mod:`repro.service.store` — a durable, content-addressed result store
  backed by sqlite (WAL mode), safe for concurrent writers across
  processes, with namespaces, GC and an adapter speaking the
  :class:`~repro.explore.evalcache.EvaluationCache` API;
* :mod:`repro.service.queue` — a persistent job queue (queued → running
  → done/failed) with **lease-based claiming**: every claim carries a
  lease deadline and a fencing token, workers renew via heartbeat, and
  expired leases are reaped back onto the queue — so any number of
  service processes and remote workers share one database without
  double execution;
* :mod:`repro.service.jobs` — job specs (sweep / estimate / explore) and
  their execution through the existing fault-tolerant runtime;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only JSON HTTP API (``repro serve``) and its Python client
  (``repro submit``), including the worker-fleet protocol
  (register / claim / heartbeat / complete / fail / result upload);
* :mod:`repro.service.worker` — the standalone pull-loop worker process
  (``repro work``) that executes jobs against a remote server, reading
  and writing the shared store over HTTP.

Everything is standard library + numpy; there is no new dependency.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import execute_job, validate_spec
from repro.service.queue import DEFAULT_LEASE, JobQueue, JobRecord
from repro.service.server import EvalService, make_server, serve
from repro.service.store import (
    ResultStore,
    StoreEvaluationCache,
    open_evaluation_cache,
)
from repro.service.worker import FleetWorker, RemoteStore, work

__all__ = [
    "DEFAULT_LEASE",
    "EvalService",
    "FleetWorker",
    "JobQueue",
    "JobRecord",
    "RemoteStore",
    "ResultStore",
    "ServiceClient",
    "StoreEvaluationCache",
    "execute_job",
    "make_server",
    "open_evaluation_cache",
    "serve",
    "validate_spec",
    "work",
]
