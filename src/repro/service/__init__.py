"""Evaluation service: the shareable half of Section 5.1's architecture.

The paper puts a *persistent disk-based database* (the EvaluationCache)
between the exploration layers and the expensive Evaluators.  This
package turns that database into a long-lived, multi-process service:

* :mod:`repro.service.store` — a durable, content-addressed result store
  backed by sqlite (WAL mode), safe for concurrent writers across
  processes, with namespaces, GC and an adapter speaking the
  :class:`~repro.explore.evalcache.EvaluationCache` API;
* :mod:`repro.service.queue` — a persistent job queue (queued → running
  → done/failed, bounded retries, kill-and-resume recovery) stored in
  the same database;
* :mod:`repro.service.jobs` — job specs (sweep / estimate / explore) and
  their execution through the existing fault-tolerant runtime;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only JSON HTTP API (``repro serve``) and its Python client
  (``repro submit``).

Everything is standard library + numpy; there is no new dependency.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import execute_job, validate_spec
from repro.service.queue import JobQueue, JobRecord
from repro.service.server import EvalService, make_server, serve
from repro.service.store import (
    ResultStore,
    StoreEvaluationCache,
    open_evaluation_cache,
)

__all__ = [
    "EvalService",
    "JobQueue",
    "JobRecord",
    "ResultStore",
    "ServiceClient",
    "StoreEvaluationCache",
    "execute_job",
    "make_server",
    "open_evaluation_cache",
    "serve",
    "validate_spec",
]
